"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e . --no-build-isolation``
works on offline machines whose environment lacks the ``wheel`` package (the
legacy editable path does not build a wheel).  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
