#!/usr/bin/env python
"""CI smoke for the service layer: boot ``repro serve``, drive it, kill it.

End to end over a real subprocess — the one surface the in-process tests
cannot cover: argument parsing, the stdout readiness line, signal-driven
shutdown, and resource hygiene.  The script

1. snapshots ``/dev/shm`` (the arena publishes ``psm_*`` segments there),
2. spawns ``python -m repro serve`` in its own process group and waits for
   the ``serving PRAGUE sessions on http://...`` readiness line,
3. drives several genuinely concurrent scripted sessions over HTTP and
   checks ``/healthz`` bookkeeping,
4. exercises the telemetry plane: the ``X-Prague-Request`` round trip,
   the ``/obs`` SLO section, the per-session ``/v1/sessions/<id>/obs``
   view, and ``repro top --server URL --once`` rendering a live frame
   from a second subprocess,
5. sends SIGTERM and asserts a clean exit: status 0, the ``server
   stopped`` farewell, no surviving process group, and no orphaned
   shared-memory segments.

Exit status 0 means all of that held.  Stdlib only.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.service import ServiceClient  # noqa: E402

READY = re.compile(r"serving PRAGUE sessions on http://([^:]+):(\d+)")
NUM_USERS = 6
BOOT_TIMEOUT_S = 120.0
EXIT_TIMEOUT_S = 30.0


def shm_segments():
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.iterdir() if p.name.startswith("psm_")}


def wait_ready(proc):
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                "server exited before becoming ready:\n" + "".join(lines)
            )
        lines.append(line)
        match = READY.search(line)
        if match:
            return match.group(1), int(match.group(2)), lines
    raise SystemExit("server never printed the readiness line")


def drive(host, port):
    barrier = threading.Barrier(NUM_USERS)
    errors = []

    def user(tag):
        try:
            with ServiceClient(host, port, timeout=30.0) as client:
                barrier.wait(timeout=30.0)
                sid = client.create_session(sigma=2)
                client.add_node(sid, "a", "C")
                client.add_node(sid, "b", "C")
                step = client.add_edge(sid, "a", "b")
                assert step["num_edges"] == 1, step
                run = client.run(sid)["run"]
                assert isinstance(run["exact"], list), run
                undone = client.undo(sid)
                assert undone["num_edges"] == 0, undone
                client.close_session(sid)
        except Exception as exc:  # noqa: BLE001 - collected for the report
            errors.append(f"user {tag}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=user, args=(i,)) for i in range(NUM_USERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    if errors:
        raise SystemExit("concurrent sessions failed:\n" + "\n".join(errors))

    with ServiceClient(host, port, timeout=30.0) as client:
        health = client.health()
        assert health["status"] == "ok", health
        assert health["created"] >= NUM_USERS, health
        assert health["active"] == 0, health
    print(f"drove {NUM_USERS} concurrent sessions: ok")


def telemetry(host, port):
    """The request-scoped telemetry plane, over the same live subprocess."""
    with ServiceClient(host, port, timeout=30.0) as client:
        # the X-Prague-Request round trip: honored and echoed verbatim
        client.request("GET", "/healthz", request_id="smoke-req-001")
        assert client.last_request_id == "smoke-req-001", (
            f"request id not echoed: {client.last_request_id!r}"
        )
        # ... and minted when the client sends none
        client.health()
        assert client.last_request_id, "server must mint an id"

        # /obs carries the SLO section with sampled request_errors
        data = client.obs()
        assert "slo" in data, sorted(data)
        errors = data["slo"].get("request_errors")
        assert errors and errors["samples"] >= 1, data["slo"]
        assert errors["attainment"] is not None, errors

        # the per-session observability view responds with the ledger
        sid = client.create_session(sigma=2)
        client.add_node(sid, "a", "C")
        client.add_node(sid, "b", "C")
        client.add_edge(sid, "a", "b")
        session_obs = client.session_obs(sid)
        assert session_obs["session"] == sid, session_obs
        assert session_obs["actions"] == 3, session_obs
        assert session_obs["action_latency"]["count"] == 3, session_obs
        client.close_session(sid)
    print("telemetry plane: request-id echo, /obs slo, session obs: ok")

    # the remote console renders one frame against the live server
    frame = subprocess.run(
        [sys.executable, "-m", "repro", "top",
         "--server", f"http://{host}:{port}", "--once"],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        capture_output=True,
        text=True,
        timeout=60.0,
    )
    if frame.returncode != 0:
        raise SystemExit(
            f"repro top --server exited {frame.returncode}:\n{frame.stderr}"
        )
    for needle in ("repro top — pid", "SLOs (rolling window):",
                   "request_errors"):
        if needle not in frame.stdout:
            raise SystemExit(
                f"repro top --server frame missing {needle!r}:\n"
                f"{frame.stdout}"
            )
    print("repro top --server --once rendered a live frame: ok")


def main():
    before = shm_segments()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--synthetic", "30", "--port", "0", "--sigma", "2",
         "--max-edges", "4"],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
    )
    try:
        host, port, lines = wait_ready(proc)
        print("".join(lines).rstrip())
        drive(host, port)
        telemetry(host, port)

        os.killpg(proc.pid, signal.SIGTERM)
        output, _ = proc.communicate(timeout=EXIT_TIMEOUT_S)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.communicate()

    if proc.returncode != 0:
        raise SystemExit(
            f"server exited with status {proc.returncode}:\n{output}"
        )
    if "server stopped" not in output:
        raise SystemExit(f"no clean-shutdown farewell in output:\n{output}")
    # Pool workers and the multiprocessing resource tracker exit a beat
    # after the main process; give the group a grace window before calling
    # any survivor a leak.
    deadline = time.monotonic() + 10.0
    while True:
        try:
            os.killpg(proc.pid, 0)
        except ProcessLookupError:
            break  # the whole group is gone — no leaked workers
        if time.monotonic() > deadline:
            os.killpg(proc.pid, signal.SIGKILL)
            raise SystemExit("server process group survived SIGTERM")
        time.sleep(0.2)

    leaked = shm_segments() - before
    if leaked:
        raise SystemExit(
            "orphaned shared-memory segments: " + ", ".join(sorted(leaked))
        )
    print("clean shutdown: exit 0, process group gone, no shm leaks")


if __name__ == "__main__":
    main()
