"""Observability default-posture overhead — the ``repro.obs`` acceptance benchmark.

Not a paper figure: this guards the observability layer's core promise that
its *default posture* — tracing off, latency histograms and flight recorder
on — stays invisible.  :mod:`repro.bench.obs_overhead` measures the per-call
cost of each primitive in a tight loop (spans/counters disabled, histogram
``observe`` and recorder ``record`` enabled, as they ship), counts how many
obs calls a real fuzzed session fires, and bounds the per-session overhead
as ``volume × per-call cost`` against the session wall time.

The assertion is ``overhead_bound_pct < 5`` — the tentpole acceptance
criterion — plus a sanity floor that every per-call cost stays in the
sub-microsecond regime.  The traced/untraced A/B is recorded for scale but
not asserted (tracing on is opt-in and allowed to cost more).

The same ceiling applies to the *export-on* posture
(``overhead_bound_export_pct``): with ``REPRO_OBS_EXPORT`` streaming, the
session's actually-emitted events pay the JSONL-write price and the
raw-string-cached ``sync_env`` must stay cheap.  Only the default-posture
per-call costs face the 2 µs no-op ceiling — an emitting ``record`` does
real I/O and is bounded through the session-level percentage instead.

And the same ceiling applies to the *service* posture
(``overhead_bound_service_pct``): the request-scoped telemetry — recorder
calls priced inside an active request scope, plus one access-log event, two
SLO samples and one request-ring entry per HTTP request — must not push a
served session past 5 % either.  Scoped ``record`` and an SLO sample face
the no-op per-call ceiling; a request-ring insert (dict churn against a full
ring) gets the ``sync_env`` ceiling.

Finally the *sampler-on* posture (``overhead_sampler_pct``): a direct
best-of-N A/B of the same session with the statistical profiler running at
its recommended 50 Hz versus off.  A background thread waking 50 times a
second has no per-call-site volume to price, so this one is measured
head-to-head and clamped at zero — and must also stay under the 5 % ceiling.
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.obs_overhead import OVERHEAD_CEILING_PCT, run_obs_overhead

#: A disabled obs call that costs ≥ 2 µs would no longer be "an attribute
#: load and a branch" — catch gross regressions in the no-op path itself.
NOOP_CALL_CEILING_NS = 2000.0
#: ``sync_env`` is not a no-op site: it re-reads four environment knobs
#: (trace, recorder, recorder size, export target) once per GUI action, and
#: ``os.environ`` probes alone cost ~1 µs on slow runners.  It gets its own
#: ceiling; at ~10 calls per session its share of the bound is negligible.
SYNC_CALL_CEILING_NS = 5000.0


@pytest.mark.benchmark(group="obs_overhead")
def test_obs_overhead(benchmark):
    data = run_obs_overhead()

    per_call = data["noop_per_call_ns"]
    volume = data["volume_per_session"]
    rows = [
        ["span() disabled", f"{per_call['span']:.0f} ns",
         str(volume["spans"])],
        ["count() disabled", f"{per_call['count']:.0f} ns",
         str(volume["counter_increments"])],
        ["sync_env()", f"{per_call['sync_env']:.0f} ns",
         str(volume["env_syncs"])],
        ["observe() enabled", f"{per_call['observe']:.0f} ns",
         str(volume["histogram_observations"])],
        ["record() enabled", f"{per_call['record']:.0f} ns",
         str(volume["recorder_calls"])],
        ["record() exporting",
         f"{data['noop_per_call_export_ns']['record']:.0f} ns",
         str(data["volume_per_session"]["exported_events"])],
        ["sync_env() exporting",
         f"{data['noop_per_call_export_ns']['sync_env']:.0f} ns",
         str(volume["env_syncs"])],
        ["record() in req scope",
         f"{data['noop_per_call_service_ns']['record_scoped']:.0f} ns",
         str(volume["recorder_calls"])],
        ["SLO sample",
         f"{data['noop_per_call_service_ns']['slo_record']:.0f} ns",
         str(2 * volume["service_requests"])],
        ["request-ring insert",
         f"{data['noop_per_call_service_ns']['request_log']:.0f} ns",
         str(volume["service_requests"])],
        ["bound per session",
         f"{1e6 * data['noop_per_session_s']:.1f} µs",
         f"{data['overhead_bound_pct']:.2f}% of "
         f"{1e3 * data['untraced_session_s']:.2f} ms"],
        ["bound, service posture",
         f"{1e6 * data['noop_per_session_service_s']:.1f} µs",
         f"{data['overhead_bound_service_pct']:.2f}% of "
         f"{1e3 * data['untraced_session_s']:.2f} ms"],
        ["bound, export on",
         f"{1e6 * data['noop_per_session_export_s']:.1f} µs",
         f"{data['overhead_bound_export_pct']:.2f}% of "
         f"{1e3 * data['untraced_session_s']:.2f} ms"],
        ["traced / untraced", f"{data['traced_over_untraced']:.2f}x", "-"],
        [f"sampler on ({data['sampler_hz']:.0f} Hz)",
         f"{1e3 * data['sampler_on_session_s']:.2f} ms",
         f"{data['overhead_sampler_pct']:.2f}% over "
         f"{1e3 * data['sampler_off_session_s']:.2f} ms "
         f"({data['sampler_samples']} samples)"],
    ]
    table = format_table(
        f"obs no-op overhead, fuzzed session of {data['actions']} actions",
        ["probe", "cost", "volume / share"],
        rows,
    )
    emit("obs_overhead", table, data)

    # Benchmarked op: one untraced session replay (the default-mode path).
    from repro.bench.obs_overhead import _replay
    from repro.oracle.corpus import corpus_for
    from repro.oracle.fuzzer import generate_trace

    trace = generate_trace(seed=data["seed"])
    corpus = corpus_for(trace.spec)
    benchmark(lambda: _replay(trace, corpus))

    assert data["overhead_bound_pct"] < OVERHEAD_CEILING_PCT
    assert data["overhead_bound_service_pct"] < OVERHEAD_CEILING_PCT
    assert data["overhead_bound_export_pct"] < OVERHEAD_CEILING_PCT
    assert data["overhead_sampler_pct"] < OVERHEAD_CEILING_PCT
    for name, cost_ns in per_call.items():
        ceiling = (SYNC_CALL_CEILING_NS if name == "sync_env"
                   else NOOP_CALL_CEILING_NS)
        assert cost_ns < ceiling, (name, cost_ns)
    service_ns = data["noop_per_call_service_ns"]
    assert service_ns["record_scoped"] < NOOP_CALL_CEILING_NS, service_ns
    assert service_ns["slo_record"] < NOOP_CALL_CEILING_NS, service_ns
    # A ring insert pops + re-inserts an OrderedDict entry — not a no-op
    # site, so it shares sync_env's looser ceiling.
    assert service_ns["request_log"] < SYNC_CALL_CEILING_NS, service_ns
