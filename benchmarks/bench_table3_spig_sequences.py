"""Table III — SPIG construction cost per step under different formulation
sequences.

Paper: per-step SPIG construction takes a fraction of a second — well under
the ≥ 2 s GUI latency of drawing an edge — is not adversely affected by new
edges, and formulation sequences only have a minor effect on construction
time and SRT.  Reproduced shape: every step's SPIG time is far below the
2-second latency and the average SRT is sequence-insensitive.
"""

import random

import pytest

from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.core import PragueEngine, formulate
from repro.datasets.queries import connected_edge_order

EDGE_LATENCY = 2.0


@pytest.mark.benchmark(group="table3")
def test_table3_spig_construction_sequences(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    rows = []
    data = {}
    for name in ("Q1", "Q3"):
        wq = aids_workload[name]
        default = wq.spec
        graph = default.graph()
        alt_order = connected_edge_order(graph, random.Random(77))
        from repro.datasets import spec_from_graph

        alternative = spec_from_graph(f"{name}-alt", graph, order=alt_order)
        for spec in (default, alternative):
            engine = PragueEngine(db, indexes, sigma=3)
            trace = formulate(engine, spec, edge_latency=EDGE_LATENCY)
            steps = [f"{s:.4f}" for s in trace.spig_seconds_per_step]
            rows.append([spec.name, " ".join(steps), f"{trace.srt_seconds:.4f}"])
            data[spec.name] = {
                "spig_seconds_per_step": trace.spig_seconds_per_step,
                "srt_seconds": trace.srt_seconds,
            }
            # every step fits comfortably inside the GUI latency
            assert all(s < EDGE_LATENCY for s in trace.spig_seconds_per_step)

    def build_spigs():
        engine = PragueEngine(db, indexes, sigma=3)
        return formulate(engine, aids_workload["Q1"].spec,
                         edge_latency=EDGE_LATENCY)

    benchmark(build_spigs)

    table = format_table(
        f"Table III: SPIG construction per step (s), |D|={len(db)}",
        ["sequence", "per-step seconds", "avg SRT (s)"],
        rows,
    )
    emit("table3_spig_sequences", table, data)
    # Sequence insensitivity of SRT (within noise; floor at 1 ms).
    for name in ("Q1", "Q3"):
        a = max(data[name]["srt_seconds"], 1e-3)
        b = max(data[f"{name}-alt"]["srt_seconds"], 1e-3)
        assert max(a, b) / min(a, b) < 30
