"""Section V-B analysis — SPIG-set size vs. query size.

The paper bounds the k-th-level vertex count by C(n−1, k−1) per SPIG and by
C(n, k) across the set (Lemma 1), and observes that shared node labels make
real SPIGs far smaller.  This bench measures, for query sizes 3..8 over the
AIDS-like corpus, the realised total vertex count against the worst-case
``2^n − 1`` connected-subset bound, plus the per-step construction cost.
"""

import math
import random

import pytest

from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.core import PragueEngine
from repro.datasets import sample_containment_query

SIZES = (3, 4, 5, 6, 7, 8)
QUERIES_PER_SIZE = 3


def _measure(db, indexes, spec):
    engine = PragueEngine(db, indexes, sigma=3)
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    for u, v in spec.edges:
        engine.add_edge(u, v, spec.edge_labels.get((u, v)))
    spig_seconds = sum(r.spig_seconds for r in engine.history)
    vertices = engine.manager.num_vertices()
    edge_sets = sum(
        len(v.edge_sets)
        for spig in engine.manager.spigs.values()
        for v in spig.vertices()
    )
    return vertices, edge_sets, spig_seconds


@pytest.mark.benchmark(group="spig_size")
def test_spig_size_vs_query_size(benchmark):
    db = aids_db()
    indexes = aids_indexes()
    rng = random.Random(99)
    rows = []
    data = {}
    last_spec = None
    for size in SIZES:
        vertex_counts = []
        set_counts = []
        times = []
        for i in range(QUERIES_PER_SIZE):
            spec = sample_containment_query(db, rng, size, name=f"q{size}-{i}")
            last_spec = spec
            vertices, edge_sets, seconds = _measure(db, indexes, spec)
            vertex_counts.append(vertices)
            set_counts.append(edge_sets)
            times.append(seconds)
        worst_case = 2**size - 1  # all non-empty edge subsets
        avg_v = sum(vertex_counts) / len(vertex_counts)
        avg_s = sum(set_counts) / len(set_counts)
        rows.append([
            size, f"{avg_v:.1f}", f"{avg_s:.1f}", worst_case,
            f"{1000 * sum(times) / len(times):.2f}",
        ])
        data[size] = {
            "avg_vertices": avg_v,
            "avg_edge_sets": avg_s,
            "worst_case_subsets": worst_case,
            "avg_build_ms": 1000 * sum(times) / len(times),
        }
        # Lemma 1 aggregated: the edge-set count never exceeds the subset
        # bound, and dedup keeps vertices <= edge sets.
        assert avg_s <= worst_case
        assert avg_v <= avg_s

    assert last_spec is not None
    benchmark(_measure, db, indexes, last_spec)

    table = format_table(
        f"Section V-B: SPIG-set size vs query size, |D|={len(db)}",
        ["query edges", "avg vertices", "avg edge-sets",
         "worst case (2^n - 1)", "avg build ms"],
        rows,
    )
    emit("spig_size_analysis", table, data)
