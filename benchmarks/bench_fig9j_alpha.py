"""Figure 9(j) — effect of the minimum support threshold α on SRT.

Paper: α controls how many frequent fragments and DIFs the action-aware
indexes hold, and how candidates split into Rfree/Rver — yet "the SRTs
fluctuate in a small range with the variations of α".  Reproduced shape: SRT
stays within a small band across α ∈ {0.05, 0.1, 0.15, 0.2}.

This bench uses a smaller corpus than the other Figure 9 benches because it
mines four full index sets (one per α); the first run is mining-heavy and
cached afterwards.
"""

import pytest

from repro.bench import emit, format_table, scaled
from repro.bench.harness import AIDS_PARAMS, aids_db, indexes_for
from repro.config import MiningParams
from repro.core import PragueEngine, formulate
from repro.datasets import standard_similarity_workload

ALPHAS = (0.05, 0.1, 0.15, 0.2)
EDGE_LATENCY = 2.0
DB_SIZE = 500  # paper uses the full 40K AIDS corpus; scaled for 4 re-minings


@pytest.mark.benchmark(group="fig9j")
def test_fig9j_alpha_effect(benchmark):
    db = aids_db(scaled(DB_SIZE))
    index_sets = {
        alpha: indexes_for(
            db,
            MiningParams(alpha, AIDS_PARAMS.size_threshold,
                         AIDS_PARAMS.max_fragment_edges),
            "aids-alpha",
        )
        for alpha in ALPHAS
    }
    # The query set is fixed (built against the default α) and replayed
    # against every index set, as in the paper.
    workload = standard_similarity_workload(
        db, index_sets[0.1], num_edges=7, sigma=3, pool_size=16
    )

    rows = []
    data = {}
    for alpha, indexes in index_sets.items():
        for name, wq in workload.items():
            engine = PragueEngine(db, indexes, sigma=3)
            trace = formulate(engine, wq.spec, edge_latency=EDGE_LATENCY)
            rows.append([f"{alpha:.2f}", name, f"{trace.srt_seconds:.4f}"])
            data[f"alpha{alpha}/{name}"] = trace.srt_seconds

    def one_run():
        engine = PragueEngine(db, index_sets[0.1], sigma=3)
        return formulate(engine, next(iter(workload.values())).spec,
                         edge_latency=EDGE_LATENCY)

    benchmark(one_run)

    table = format_table(
        f"Figure 9(j): SRT (s) vs alpha, |D|={len(db)}",
        ["alpha", "query", "PRG SRT (s)"],
        rows,
    )
    emit("fig9j_alpha", table, data)
    # Shape: per query, SRT fluctuates in a small *absolute* band across
    # alpha (the paper's claim; sub-millisecond SRTs make ratios meaningless).
    for name in workload:
        srts = [data[f"alpha{a}/{name}"] for a in ALPHAS]
        assert max(srts) - min(srts) < 1.0
        assert all(s < 2.0 for s in srts)
