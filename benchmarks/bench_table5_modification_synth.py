"""Table V — modification cost on the synthetic datasets (msec).

Paper: for Q5-Q8, modifying at the last step (always deleting the first
edge) costs 0-40 msec across 10K-80K graphs — "very efficient ... and scales
gracefully".  Reproduced shape: per-size costs far below the GUI latency and
growing at most mildly with dataset size.
"""

import pytest

from repro.bench import emit, format_table, ms
from repro.bench.harness import (
    synthetic_db,
    synthetic_indexes,
    synthetic_similarity_workload,
    synthetic_sweep_sizes,
)
from repro.core import PragueEngine
from repro.core.modify import deletable_edges


def _modify_at_last_step(db, indexes, spec):
    engine = PragueEngine(db, indexes, sigma=3, auto_similarity=True)
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    for u, v in spec.edges:
        engine.add_edge(u, v, spec.edge_labels.get((u, v)))
    victim = deletable_edges(engine.query)[0]
    report = engine.delete_edge(victim)
    return ms(report.processing_seconds)


@pytest.mark.benchmark(group="table5")
def test_table5_modification_synthetic(benchmark):
    sizes = synthetic_sweep_sizes()
    # Queries are built once, against the smallest corpus, and replayed on
    # every size (the paper keeps Q5-Q8 fixed across the sweep).
    base_db = synthetic_db(sizes[0])
    workload = synthetic_similarity_workload(sizes[0])

    rows = []
    data = {}
    for name, wq in workload.items():
        row = [name]
        for size in sizes:
            db = synthetic_db(size)
            indexes = synthetic_indexes(size)
            cost = _modify_at_last_step(db, indexes, wq.spec)
            row.append(f"{cost:.2f}")
            data[f"{name}/{size}"] = cost
        rows.append(row)

    spec = next(iter(workload.values())).spec
    benchmark(
        _modify_at_last_step, synthetic_db(sizes[0]),
        synthetic_indexes(sizes[0]), spec,
    )

    table = format_table(
        "Table V: modification cost (msec) on synthetic datasets",
        ["query"] + [f"{s} graphs" for s in sizes],
        rows,
    )
    emit("table5_modification_synth", table, data)
    assert all(cost < 2000 for cost in data.values())
