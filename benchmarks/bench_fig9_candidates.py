"""Figures 9(b)-(e) — candidate-set sizes of Q1-Q4 for σ = 1..4.

Paper: PRG's candidates (|Rfree ∪ Rver|) are significantly smaller than GR,
SG and DVP in most settings; in the worst-case queries PRG can exceed GR/SG
at σ ∈ {1, 2} but wins as σ grows (DIF-based pruning strengthens); DVP's
candidate counts (``Rver`` only) approach the whole dataset on the worst
cases.  Reproduced shape: PRG smallest on average, and every filter sound.
"""

import pytest

from repro.baselines import DistVpIndex, DistVpSearch, FeatureIndex, GrafilSearch, SigmaSearch
from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.core import PragueEngine
from repro.core.similar import similar_sub_candidates
from repro.testing import drive_engine

SIGMAS = (1, 2, 3, 4)


def _prague_candidates(db, indexes, spec, sigma):
    engine = PragueEngine(db, indexes, sigma=sigma)
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    for u, v in spec.edges:
        engine.add_edge(u, v, spec.edge_labels.get((u, v)))
    candidates = similar_sub_candidates(
        engine.query, sigma, engine.manager, indexes, engine.db_ids,
        include_exact_level=False,
    )
    return candidates.candidate_count


@pytest.mark.benchmark(group="fig9_candidates")
def test_fig9_candidate_sizes(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    feature_index = FeatureIndex(db, indexes.frequent, max_feature_edges=4)
    grafil = GrafilSearch(db, feature_index)
    sigma_sys = SigmaSearch(db, feature_index)
    dvp_indexes = {s: DistVpIndex(db, s) for s in SIGMAS}

    rows = []
    data = {}
    for name, wq in aids_workload.items():
        query = wq.spec.graph()
        for sigma in SIGMAS:
            prg = _prague_candidates(db, indexes, wq.spec, sigma)
            gr = len(grafil.candidates(query, sigma))
            sg = len(sigma_sys.candidates(query, sigma))
            dvp = len(DistVpSearch(db, dvp_indexes[sigma]).candidates(query, sigma))
            rows.append([name, sigma, prg, gr, sg, dvp])
            data[f"{name}/sigma{sigma}"] = {
                "PRG": prg, "GR": gr, "SG": sg, "DVP": dvp,
            }

    # Benchmarked op: PRG candidate generation for Q1 at the default σ.
    first = next(iter(aids_workload.values())).spec
    benchmark(_prague_candidates, db, indexes, first, 3)

    table = format_table(
        f"Figures 9(b)-(e): candidate sizes, |D|={len(db)}",
        ["query", "sigma", "PRG", "GR", "SG", "DVP"],
        rows,
    )
    emit("fig9_candidates", table, data)
    # Shape: PRG's average candidate count is the smallest of all systems.
    avg = {
        sys: sum(e[sys] for e in data.values()) / len(data)
        for sys in ("PRG", "GR", "SG", "DVP")
    }
    assert avg["PRG"] <= min(avg["GR"], avg["SG"], avg["DVP"])
