"""Hot-path microbenchmarks — canonical codes, VF2 scans, candidate algebra.

Not a paper figure: this suite guards the performance layer (cached graph
invariants, canonical-code memoization, compiled VF2 patterns, bitset
candidate sets) against regression.  Each section measures the pre-change
behaviour — replicated verbatim in :mod:`repro.bench.micro` — against the
optimised path on identical inputs, asserts identical *answers*, and enforces
the speedup floors the layer was built to clear:

* ≥ 3× on repeated canonical-code computation (memoization);
* ≥ 1.5× on a full-corpus containment scan (compiled pattern + cached
  target invariants);
* bitset candidate intersection no slower than the frozenset reference.

``python -m repro bench-smoke`` runs the same code at toy scale for CI.
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.harness import aids_db
from repro.bench.micro import run_micro_hotpaths

CANONICAL_FLOOR = 3.0
SCAN_FLOOR = 1.5
INTERSECTION_FLOOR = 1.0


@pytest.mark.benchmark(group="micro_hotpaths")
def test_micro_hotpaths(benchmark):
    db = aids_db()
    data = run_micro_hotpaths(db, smoke=False)

    canonical = data["canonical"]
    scan = data["scan"]
    intersection = data["intersection"]
    rows = [
        ["canonical code (memoized)", canonical["calls"],
         f"{canonical['uncached_s']:.3f}", f"{canonical['cached_s']:.3f}",
         f"{canonical['speedup']:.2f}x"],
        ["containment scan (compiled)", scan["scans"],
         f"{scan['baseline_s']:.3f}", f"{scan['compiled_s']:.3f}",
         f"{scan['speedup']:.2f}x"],
        ["candidate intersection (bitset)", intersection["repeats"],
         f"{intersection['frozenset_s']:.3f}",
         f"{intersection['bitset_s']:.3f}",
         f"{intersection['speedup']:.2f}x"],
    ]
    table = format_table(
        f"Micro hot paths: before vs after, |D|={len(db)}",
        ["hot path", "ops", "before (s)", "after (s)", "speedup"],
        rows,
    )
    emit("micro_hotpaths", table, data)

    # Benchmarked op: one warm-cache scan pass (the steady-state hot path).
    from repro.baselines.naive import naive_containment_search
    from repro.bench.micro import sample_fragments
    import random

    query = sample_fragments(db, 1, random.Random(7))[0]
    benchmark(lambda: naive_containment_search(query, db))

    assert canonical["speedup"] >= CANONICAL_FLOOR
    assert scan["speedup"] >= SCAN_FLOOR
    assert intersection["speedup"] >= INTERSECTION_FLOOR
