"""Cold-start index builds at 10–100x scale — serial vs sharded pipeline.

Not a paper figure: this sweep guards the sharded build pipeline
(:mod:`repro.index.sharded`) and pushes the scale axis the ROADMAP names —
corpora 10x–100x the 60-graph perf-ledger corpus, chunk-generated in
parallel (:mod:`repro.datasets.scale`).  At every size the sharded catalogs
are asserted equivalent to the serial mine, and the floor enforced:

* sharded build ≥ 2x faster than the serial build at 4 workers on the 10x
  corpus — **asserted only when the machine exposes ≥ 4 CPUs** (with fewer
  the floor is unreachable by construction, and on a single-CPU runner the
  sharded path is honestly slower: same mining work plus merge and process
  overhead; the emitted results record the measured ratio and the CPU
  count either way).
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.build_scaling import (
    SWEEP_WORKERS,
    parallel_cpus,
    run_build_scaling,
)
from repro.bench.harness import BUILD_SCALING_PARAMS, scale_db, scale_sweep_sizes
from repro.index.sharded import mine_sharded

SHARDED_OVER_SERIAL_FLOOR = 2.0


@pytest.mark.benchmark(group="build_scaling")
def test_build_scaling(benchmark):
    data = run_build_scaling()

    rows = []
    for size, point in data["points"].items():
        rows.append([
            size,
            f"{point['cold_s']:.2f}",
            f"{point['sharded_s']:.2f}",
            f"{point['speedup']:.2f}x",
            point["frequent"],
            point["difs"],
            "yes" if point.get("equivalent") else "NO",
        ])
    table = format_table(
        f"Cold index builds, serial vs sharded ({data['workers']} workers, "
        f"{data['parallel_cpus']} CPUs visible, alpha="
        f"{data['params']['min_support']}, max_edges="
        f"{data['params']['max_fragment_edges']})",
        ["graphs", "serial (s)", "sharded (s)", "speedup", "frequent",
         "difs", "equivalent"],
        rows,
    )
    emit("build_scaling", table, data)

    # Correctness is unconditional: every size, sharded == serial.
    for point in data["points"].values():
        assert point["equivalent"]

    # Benchmarked op: one sharded build of the 10x corpus.
    smallest = scale_sweep_sizes()[0]
    db = scale_db(smallest)
    benchmark.pedantic(
        lambda: mine_sharded(db, BUILD_SCALING_PARAMS, SWEEP_WORKERS),
        rounds=1, iterations=1,
    )

    # The 2x-at-4-workers floor needs at least 4 CPUs to be reachable
    # (with k < 4 CPUs the ideal speedup is already capped at k).
    ten_x = data["points"][str(smallest)]
    if parallel_cpus() >= SWEEP_WORKERS:
        assert ten_x["speedup"] >= SHARDED_OVER_SERIAL_FLOOR
    else:
        pytest.skip(
            f"{parallel_cpus()}-CPU host: sharded/serial = "
            f"{ten_x['speedup']:.2f}x recorded; the >= "
            f"{SHARDED_OVER_SERIAL_FLOOR}x floor needs >= {SWEEP_WORKERS} CPUs"
        )
