"""Figure 9(a) — SPIG-based subgraph containment SRT: PRG vs GBR.

Paper: PRAGUE's SRT on the six containment queries of [6] is similar to
GBLENDER's (small queries < 0.1 ms) — the unified framework costs nothing on
exact queries.  Reproduced shape: PRG and GBR SRTs within the same order of
magnitude, and both return identical (oracle-checked) results.
"""

import time

import pytest

from repro.baselines import GBlenderEngine
from repro.bench import emit, format_table, ms
from repro.bench.harness import aids_db, aids_indexes
from repro.core import PragueEngine, formulate

EDGE_LATENCY = 2.0


def _gblender_srt(db, indexes, spec):
    """Drive GBLENDER through the same latency model as PRAGUE."""
    engine = GBlenderEngine(db, indexes)
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    backlog = 0.0
    for u, v in spec.edges:
        step = engine.add_edge(u, v, spec.edge_labels.get((u, v)))
        backlog = max(0.0, backlog + step.processing_seconds - EDGE_LATENCY)
    results, run_seconds = engine.run()
    return results, backlog + run_seconds


@pytest.mark.benchmark(group="fig9a")
def test_fig9a_containment_srt(benchmark, containment_workload):
    db = aids_db()
    indexes = aids_indexes()
    rows = []
    data = {}
    for name, spec in containment_workload.items():
        prg_engine = PragueEngine(db, indexes)
        trace = formulate(prg_engine, spec, edge_latency=EDGE_LATENCY)
        gbr_results, gbr_srt = _gblender_srt(db, indexes, spec)
        assert trace.results.exact_ids == gbr_results  # identical answers
        rows.append([
            name, spec.size, f"{ms(trace.srt_seconds):.3f}",
            f"{ms(gbr_srt):.3f}", len(gbr_results),
        ])
        data[name] = {
            "edges": spec.size,
            "prg_srt_ms": ms(trace.srt_seconds),
            "gbr_srt_ms": ms(gbr_srt),
            "results": len(gbr_results),
        }

    # Benchmarked op: one full blended formulation + run (PRG, largest query).
    largest = max(containment_workload.values(), key=lambda s: s.size)

    def run_prague():
        engine = PragueEngine(db, indexes)
        return formulate(engine, largest, edge_latency=EDGE_LATENCY)

    benchmark(run_prague)

    table = format_table(
        f"Figure 9(a): containment SRT (ms), PRG vs GBR, |D|={len(db)}",
        ["query", "edges", "PRG SRT", "GBR SRT", "matches"],
        rows,
    )
    emit("fig9a_containment_srt", table, data)
    # Shape: same order of magnitude (PRG never > 10x GBR + 1ms slack).
    for entry in data.values():
        assert entry["prg_srt_ms"] <= entry["gbr_srt_ms"] * 10 + 1.0
