"""Ablation A3 — the verification-free candidate split (Rfree vs Rver).

Section VI-B's key idea: candidates whose witnessing fragment is *indexed*
(frequent or DIF) need no similarity verification.  This ablation disables
the split by forcing every candidate through SimVerify and measures the
verification-time penalty — largest on best-case (Rfree-heavy) queries.
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.bench.metrics import time_call
from repro.core import PragueEngine
from repro.core.results import SimilarCandidates
from repro.core.similar import similar_results_gen, similar_sub_candidates

SIGMA = 3


def _prepare(db, indexes, spec):
    engine = PragueEngine(db, indexes, sigma=SIGMA)
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    for u, v in spec.edges:
        engine.add_edge(u, v, spec.edge_labels.get((u, v)))
    candidates = similar_sub_candidates(
        engine.query, SIGMA, engine.manager, indexes, engine.db_ids,
        include_exact_level=False,
    )
    return engine, candidates


def _merged_into_rver(candidates: SimilarCandidates) -> SimilarCandidates:
    """The ablated configuration: nothing is verification-free."""
    merged = SimilarCandidates()
    for level in candidates.levels():
        merged.free[level] = set()
        merged.ver[level] = candidates.free_at(level) | candidates.ver_at(level)
    return merged


@pytest.mark.benchmark(group="ablation_rfree")
def test_ablation_verification_free_split(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    rows = []
    data = {}
    for name, wq in aids_workload.items():
        engine, candidates = _prepare(db, indexes, wq.spec)
        merged = _merged_into_rver(candidates)
        results_split, t_split = time_call(
            similar_results_gen, engine.query, candidates, SIGMA,
            engine.manager, db,
        )
        results_merged, t_merged = time_call(
            similar_results_gen, engine.query, merged, SIGMA,
            engine.manager, db, True,
        )
        # The split is a pure optimisation: identical ranked answers...
        assert [(m.graph_id, m.distance) for m in results_split] == [
            (m.graph_id, m.distance) for m in results_merged
        ]
        rows.append([
            name, candidates.candidate_count,
            sum(len(v) for v in candidates.free.values()),
            f"{1000 * t_split:.2f}", f"{1000 * t_merged:.2f}",
        ])
        data[name] = {
            "candidates": candidates.candidate_count,
            "rfree_entries": sum(len(v) for v in candidates.free.values()),
            "ms_with_split": 1000 * t_split,
            "ms_without_split": 1000 * t_merged,
        }

    engine, candidates = _prepare(db, indexes, aids_workload["Q1"].spec)
    benchmark(
        similar_results_gen, engine.query, candidates, SIGMA, engine.manager, db
    )

    table = format_table(
        "Ablation A3: verification-free split (result-gen ms)",
        ["query", "candidates", "Rfree entries", "with split", "without split"],
        rows,
    )
    emit("ablation_rfree", table, data)
    # ...while never slower in aggregate.
    assert sum(d["ms_with_split"] for d in data.values()) <= sum(
        d["ms_without_split"] for d in data.values()
    ) * 1.2
