"""Ablation A4 — MCCS-based vs edit-operation-based similarity (Section IV-A).

The paper chooses MCCS over edit distance for two reasons: edit costs are
hard to assign, and missing edges are easier for end users to interpret than
edit scripts.  This ablation quantifies the *measurable* side of that choice:
on the Q1-Q4 workload, how often do the two measures agree on which graphs
match, and what does the edit search cost compared to PRAGUE's SPIG-based
MCCS search?
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.bench.metrics import time_call
from repro.core import PragueEngine, formulate
from repro.graph.edit_matching import edit_similarity_search

SIGMA = 2


@pytest.mark.benchmark(group="ablation_edit")
def test_ablation_edit_vs_mccs(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    rows = []
    data = {}
    for name, wq in aids_workload.items():
        engine = PragueEngine(db, indexes, sigma=SIGMA)
        trace = formulate(engine, wq.spec, edge_latency=2.0)
        mccs_ids = {m.graph_id for m in trace.results.similar}
        mccs_ids |= set(trace.results.exact_ids)
        query = wq.spec.graph()
        edit_results, edit_seconds = time_call(
            edit_similarity_search, query, db, SIGMA
        )
        edit_ids = set(edit_results)
        both = len(mccs_ids & edit_ids)
        union = len(mccs_ids | edit_ids)
        jaccard = both / union if union else 1.0
        rows.append([
            name, len(mccs_ids), len(edit_ids), f"{jaccard:.2f}",
            f"{trace.srt_seconds:.3f}", f"{edit_seconds:.3f}",
        ])
        data[name] = {
            "mccs_matches": len(mccs_ids),
            "edit_matches": len(edit_ids),
            "jaccard": jaccard,
            "mccs_srt_seconds": trace.srt_seconds,
            "edit_seconds": edit_seconds,
        }

    query = aids_workload["Q1"].spec.graph()
    # Benchmarked op: the edit search on a database slice (it is the slow
    # side of the comparison; a slice keeps rounds short).
    from repro.graph.database import GraphDatabase

    slice_db = GraphDatabase([db[i] for i in range(50)])
    benchmark(edit_similarity_search, query, slice_db, SIGMA)

    table = format_table(
        f"Ablation A4: MCCS vs edit-operation matching (sigma={SIGMA}, "
        f"|D|={len(db)})",
        ["query", "MCCS matches", "edit matches", "jaccard",
         "MCCS SRT (s)", "edit search (s)"],
        rows,
    )
    emit("ablation_edit_distance", table, data)
    # The paper's qualitative points, quantified: the measures overlap but
    # are not identical, and the blended MCCS search is far cheaper.
    assert any(d["jaccard"] < 1.0 for d in data.values()) or all(
        d["mccs_matches"] == d["edit_matches"] for d in data.values()
    )
    assert sum(d["mccs_srt_seconds"] for d in data.values()) < sum(
        d["edit_seconds"] for d in data.values()
    )
