"""Ablation A1 — SPIG canonical-code deduplication.

Section V-B observes that shared node labels make the per-level vertex count
far smaller than the worst-case C(n−1, k−1) ("only two vertexes are in the
fourth level of S6").  This ablation disables the per-level dedup (one vertex
per edge subset) and measures vertex counts and construction time.
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.bench.metrics import time_call
from repro.query_graph import VisualQuery
from repro.spig import SpigManager


def _build(db, indexes, spec, dedup):
    manager = SpigManager(indexes, dedup=dedup)
    query = VisualQuery()
    for node, label in spec.nodes.items():
        query.add_node(node, label)

    def run():
        for u, v in spec.edges:
            eid = query.add_edge(u, v, spec.edge_labels.get((u, v)))
            manager.on_new_edge(query, eid)
        return manager

    return time_call(run)


@pytest.mark.benchmark(group="ablation_dedup")
def test_ablation_spig_dedup(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    rows = []
    data = {}
    for name, wq in aids_workload.items():
        (with_dedup, t_on) = _build(db, indexes, wq.spec, dedup=True)
        (without, t_off) = _build(db, indexes, wq.spec, dedup=False)
        rows.append([
            name, with_dedup.num_vertices(), without.num_vertices(),
            f"{1000 * t_on:.2f}", f"{1000 * t_off:.2f}",
        ])
        data[name] = {
            "vertices_dedup": with_dedup.num_vertices(),
            "vertices_no_dedup": without.num_vertices(),
            "ms_dedup": 1000 * t_on,
            "ms_no_dedup": 1000 * t_off,
        }
        # Dedup never increases the vertex count; candidate-relevant info is
        # isomorphism-invariant, so the smaller SPIG is lossless.
        assert with_dedup.num_vertices() <= without.num_vertices()

    spec = aids_workload["Q1"].spec
    benchmark(_build, db, indexes, spec, True)

    table = format_table(
        "Ablation A1: SPIG vertex dedup (vertices / build ms)",
        ["query", "vertices (dedup)", "vertices (no dedup)",
         "build ms (dedup)", "build ms (no dedup)"],
        rows,
    )
    emit("ablation_spig_dedup", table, data)
