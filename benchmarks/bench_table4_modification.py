"""Table IV — query modification cost on the AIDS-like corpus (msec).

Paper: PRAGUE's modification cost is "cognitively negligible (virtually
zero)" — tens of milliseconds at 40K graphs — because only SPIG-set pruning
is needed, whereas GBLENDER must replay every step.  Protocol: for each
query, formulate up to edge ``e_p`` (p = 4..|q|), then delete the earliest
deletable edge (the paper deletes e1, the worst case).  Reproduced shape:
PRG cost ≤ GBR replay cost on aggregate, and PRG stays far under the ≥ 2 s
GUI latency.
"""

import pytest

from repro.baselines import GBlenderEngine
from repro.bench import emit, format_table, ms
from repro.bench.harness import aids_db, aids_indexes
from repro.core import PragueEngine
from repro.core.modify import deletable_edges


def _modification_cost(db, indexes, spec, prefix_len):
    """(PRG msec, GBR msec) for deleting the earliest deletable edge after
    formulating the first ``prefix_len`` edges."""
    prg = PragueEngine(db, indexes, sigma=3, auto_similarity=True)
    gbr = GBlenderEngine(db, indexes)
    for node, label in spec.nodes.items():
        prg.add_node(node, label)
        gbr.add_node(node, label)
    for u, v in spec.edges[:prefix_len]:
        prg.add_edge(u, v, spec.edge_labels.get((u, v)))
        gbr.add_edge(u, v, spec.edge_labels.get((u, v)))
    victims = deletable_edges(prg.query)
    if not victims:
        return None
    victim = victims[0]
    report = prg.delete_edge(victim)
    gbr_seconds = gbr.delete_edge(victim)
    return ms(report.processing_seconds), ms(gbr_seconds)


@pytest.mark.benchmark(group="table4")
def test_table4_modification_cost(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    rows = []
    data = {}
    for name, wq in aids_workload.items():
        spec = wq.spec
        for prefix in range(4, spec.size + 1):
            cost = _modification_cost(db, indexes, spec, prefix)
            if cost is None:
                continue
            prg_ms, gbr_ms = cost
            rows.append([name, f"e{prefix}", f"{prg_ms:.2f}", f"{gbr_ms:.2f}"])
            data[f"{name}/e{prefix}"] = {"PRG_ms": prg_ms, "GBR_ms": gbr_ms}

    spec = aids_workload["Q1"].spec
    benchmark(_modification_cost, db, indexes, spec, spec.size)

    table = format_table(
        f"Table IV: modification cost (msec), |D|={len(db)}",
        ["query", "modify at", "PRG", "GBR (replay)"],
        rows,
    )
    emit("table4_modification", table, data)
    # Shape: PRG modification fits trivially inside the 2 s GUI latency...
    assert all(e["PRG_ms"] < 2000 for e in data.values())
    # ...and is cheaper than GBLENDER's replay on aggregate.
    prg_total = sum(e["PRG_ms"] for e in data.values())
    gbr_total = sum(e["GBR_ms"] for e in data.values())
    assert prg_total <= gbr_total
