"""Shared benchmark fixtures and helpers.

The first run mines and caches all datasets/indexes under ``.bench_cache/``
in the repository root (several minutes); later runs are fast.  Dataset sizes
honour ``REPRO_SCALE`` (see EXPERIMENTS.md for the mapping to paper scale).
"""

from __future__ import annotations

import pytest

from repro.bench import harness
from repro.core import PragueEngine, formulate
from repro.core.session import QuerySpec


@pytest.fixture(scope="session")
def aids():
    """(db, indexes) for the AIDS-like corpus at default scale."""
    return harness.aids_db(), harness.aids_indexes()


@pytest.fixture(scope="session")
def aids_workload(aids):
    """Q1-Q4 analogues (Q1 best case, Q2-Q4 worst-leaning)."""
    return harness.aids_similarity_workload()


@pytest.fixture(scope="session")
def containment_workload(aids):
    return harness.aids_containment_workload()


def prague_trace(db, indexes, spec: QuerySpec, sigma: int, latency: float = 2.0):
    """Formulate ``spec`` on a fresh PRAGUE engine; returns the trace."""
    engine = PragueEngine(db, indexes, sigma=sigma)
    return formulate(engine, spec, edge_latency=latency)
