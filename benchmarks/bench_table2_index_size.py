"""Table II — index size comparison (MB).

Paper (AIDS, 40K graphs): DVP grows steeply with σ (179.5 → 918.7 MB) and
dwarfs PRG (36.1 MB), which in turn is larger than the shared SG/GR feature
index (11.1 MB).  The reproduced shape: DVP(σ) increasing and ≫ PRG > SG/GR.
"""

import pytest

from repro.baselines import (
    CountingFeatureIndex,
    DistVpIndex,
    DistVpIndexError,
    FeatureIndex,
)
from repro.bench import emit, format_table, mb
from repro.bench.harness import aids_db, aids_indexes
from repro.index import prague_index_size_bytes
from repro.index.a2f import A2FIndex


@pytest.mark.benchmark(group="table2")
def test_table2_index_size(benchmark):
    db = aids_db()
    indexes = aids_indexes()
    feature_index = FeatureIndex(db, indexes.frequent, max_feature_edges=4)
    counting_index = CountingFeatureIndex(
        db, indexes.frequent, max_feature_edges=4
    )

    dvp_row = {}
    for sigma in (1, 2, 3, 4):
        try:
            dvp_row[sigma] = mb(DistVpIndex(db, sigma).size_bytes())
        except DistVpIndexError:
            dvp_row[sigma] = float("nan")

    prg_mb = mb(prague_index_size_bytes(indexes))
    sg_gr_mb = mb(counting_index.size_bytes())  # the real count matrix
    sg_gr_presence_mb = mb(feature_index.size_bytes())

    # Benchmarked operation: assembling the A2F-index from the mined catalog
    # (the online-systems' index construction step).
    benchmark(A2FIndex, indexes.frequent, indexes.params.size_threshold)

    rows = [["DVP (sigma=%d)" % s, f"{dvp_row[s]:.2f}"] for s in (1, 2, 3, 4)]
    rows.append(["PRG", f"{prg_mb:.2f}"])
    rows.append(["SG / GR (count matrix)", f"{sg_gr_mb:.2f}"])
    rows.append(["SG / GR (presence only)", f"{sg_gr_presence_mb:.2f}"])
    table = format_table(
        f"Table II: index size comparison (MB), |D|={len(db)}",
        ["system", "size (MB)"],
        rows,
    )
    emit("table2_index_size", table, {
        "db_size": len(db),
        "dvp_mb": dvp_row,
        "prg_mb": prg_mb,
        "sg_gr_mb": sg_gr_mb,
        "sg_gr_presence_mb": sg_gr_presence_mb,
    })
    # Shape assertions from the paper.
    assert dvp_row[1] < dvp_row[2] < dvp_row[3] < dvp_row[4]
    assert dvp_row[4] > prg_mb
    assert prg_mb > sg_gr_mb
