"""Ablation A2 — delId delta storage vs full FSG-id lists in the A2F-index.

Section III: storing only ``delId(f) = fsgIds(f) − ⋃ children fsgIds`` (the
FG-Index containment trick) instead of the full ``fsgIds(f)`` per vertex.
This ablation measures the space saved and the probe-time price of
reconstruction.
"""

import pytest

from repro.bench import emit, format_table, mb
from repro.bench.harness import aids_db, aids_indexes
from repro.bench.metrics import time_call
from repro.index.persistence import pickled_size_bytes


@pytest.mark.benchmark(group="ablation_delid")
def test_ablation_delid_storage(benchmark):
    db = aids_db()
    indexes = aids_indexes()
    a2f = indexes.a2f

    delta_payload = [
        (v.a2f_id, v.code, v.del_ids, v.children)
        for v in (a2f.vertex(i) for i in range(len(a2f)))
    ]
    full_payload = [
        (v.a2f_id, v.code, a2f.fsg_ids(v.a2f_id), v.children)
        for v in (a2f.vertex(i) for i in range(len(a2f)))
    ]
    delta_mb = mb(pickled_size_bytes(delta_payload))
    full_mb = mb(pickled_size_bytes(full_payload))

    # Probe price: reconstructing every fsgIds list from deltas, cold cache.
    def reconstruct_all():
        a2f._fsg_cache.clear()
        for i in range(len(a2f)):
            a2f.fsg_ids(i)

    _, reconstruct_seconds = time_call(reconstruct_all)
    benchmark(reconstruct_all)

    stored_delta = sum(len(a2f.vertex(i).del_ids) for i in range(len(a2f)))
    stored_full = sum(len(a2f.fsg_ids(i)) for i in range(len(a2f)))

    table = format_table(
        f"Ablation A2: delId deltas vs full FSG lists ({len(a2f)} fragments)",
        ["storage", "ids stored", "pickled MB", "full-reconstruct s"],
        [
            ["delId deltas", stored_delta, f"{delta_mb:.2f}",
             f"{reconstruct_seconds:.3f}"],
            ["full fsgIds", stored_full, f"{full_mb:.2f}", "0 (direct)"],
        ],
    )
    emit("ablation_delid", table, {
        "delta_mb": delta_mb,
        "full_mb": full_mb,
        "ids_delta": stored_delta,
        "ids_full": stored_full,
        "reconstruct_seconds": reconstruct_seconds,
    })
    # The paper's design choice: deltas store strictly fewer ids.
    assert stored_delta < stored_full
    assert delta_mb < full_mb
