"""Warm-pool dispatch benchmark — the cold start leaves the SRT budget.

Not a paper figure: this suite guards the warm verification pool and the
shared-memory arena (:mod:`repro.core.pool`, :mod:`repro.index.arena`)
against regression.  One full-corpus ``verify_batch`` is dispatched under
three configurations on identical inputs — serial, cold pool (a fresh
``Pool`` per dispatch, the pre-warm-pool behaviour) and warm pool (reused
arena-attached workers) — with identical answers asserted, and the floor
enforced:

* warm-pool dispatch ≥ 2× faster than cold-pool dispatch.

``python -m repro bench-smoke`` runs the same code at toy scale for CI.
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.harness import aids_db
from repro.bench.pool_warmup import run_pool_warmup

WARM_OVER_COLD_FLOOR = 2.0


@pytest.mark.benchmark(group="pool_warmup")
def test_pool_warmup(benchmark):
    db = aids_db()
    data = run_pool_warmup(db, smoke=False)

    rows = [
        ["serial (workers=1)", f"{data['serial_s'] * 1000:.2f}", "—"],
        ["cold pool (spawn per dispatch)", f"{data['cold_s'] * 1000:.2f}",
         "1.00x"],
        ["warm pool (reused workers)", f"{data['warm_s'] * 1000:.2f}",
         f"{data['warm_speedup']:.2f}x"],
    ]
    table = format_table(
        f"Pool dispatch: |D|={data['corpus']}, workers={data['workers']} "
        f"(one-time warm spawn {data['spawn_s'] * 1000:.2f} ms)",
        ["configuration", "dispatch (ms)", "vs cold"],
        rows,
    )
    emit("pool_warmup", table, data)

    # Benchmarked op: one warm-pool dispatch (the steady-state Run action).
    from repro.core import pool as pool_mod
    from repro.core.verification import verify_batch
    from repro.bench.pool_warmup import _env, _sample_query
    import random

    query = _sample_query(db, random.Random(7), edges=4)
    ids = list(db.ids())
    with _env(REPRO_POOL_MIN_CANDIDATES="1", REPRO_POOL_WARM="1"):
        verify_batch(query, ids, db, workers=4)  # spawn outside the timer
        benchmark(lambda: verify_batch(query, ids, db, workers=4))
        pool_mod.shutdown()

    assert data["warm_speedup"] >= WARM_OVER_COLD_FLOOR
