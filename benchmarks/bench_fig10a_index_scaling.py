"""Figure 10(a) — index size vs synthetic dataset size.

Paper: "the index size of PRG increases slowly and is smaller than SG/GR for
all datasets" (synthetic corpora, α = 0.05).  Reproduced shape: both curves
grow roughly linearly with |D|; the PRG-vs-SG/GR ordering is reported as
measured (it depends on how many DIFs the corpus induces — see
EXPERIMENTS.md for the discussion).
"""

import pytest

from repro.baselines import CountingFeatureIndex
from repro.bench import emit, format_table, mb
from repro.bench.harness import (
    synthetic_db,
    synthetic_indexes,
    synthetic_sweep_sizes,
)
from repro.index import prague_index_size_bytes


@pytest.mark.benchmark(group="fig10a")
def test_fig10a_index_size_scaling(benchmark):
    sizes = synthetic_sweep_sizes()
    rows = []
    data = {}
    for size in sizes:
        db = synthetic_db(size)
        indexes = synthetic_indexes(size)
        # the count matrix (Grafil's real feature-graph matrix) is what the
        # paper measures for SG/GR
        feature_index = CountingFeatureIndex(
            db, indexes.frequent, max_feature_edges=4
        )
        prg = mb(prague_index_size_bytes(indexes))
        sg_gr = mb(feature_index.size_bytes())
        rows.append([size, f"{prg:.2f}", f"{sg_gr:.2f}"])
        data[size] = {"PRG_mb": prg, "SG_GR_mb": sg_gr}

    benchmark(prague_index_size_bytes, synthetic_indexes(sizes[0]))

    table = format_table(
        "Figure 10(a): index size (MB) vs synthetic dataset size",
        ["graphs", "PRG", "SG / GR"],
        rows,
    )
    emit("fig10a_index_scaling", table, data)
    # Shape: PRG index grows (weakly) monotonically with dataset size.
    prg_sizes = [data[s]["PRG_mb"] for s in sizes]
    assert all(a <= b * 1.5 for a, b in zip(prg_sizes, prg_sizes[1:]))
