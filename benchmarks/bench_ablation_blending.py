"""Ablation A5 — how much of the SRT win is the *paradigm* itself?

PRAGUE's speedup combines better candidates (SPIGs + action-aware indexes)
with the blended paradigm (work hidden inside GUI latency).  This ablation
runs the identical machinery in both modes: blended (per-step work overlaps
the ≥ 2 s drawing latency) vs static (everything at Run).  The SRT gap is
the net contribution of blending; the static mode's total time also shows
that the per-query work comfortably fits inside the formulation latency —
the paper's "the latency offered by the GUI ... is sufficient" claim.
"""

import pytest

from repro.baselines.static_prague import static_prague_search
from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.core import PragueEngine, formulate

SIGMA = 3
EDGE_LATENCY = 2.0


@pytest.mark.benchmark(group="ablation_blending")
def test_ablation_blending_contribution(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    rows = []
    data = {}
    for name, wq in aids_workload.items():
        engine = PragueEngine(db, indexes, sigma=SIGMA)
        trace = formulate(engine, wq.spec, edge_latency=EDGE_LATENCY)
        static_report, static_srt = static_prague_search(
            db, indexes, wq.spec, SIGMA
        )
        # identical answers, different felt latency
        blended = trace.results
        assert blended.exact_ids == static_report.results.exact_ids
        assert [(m.graph_id, m.distance) for m in blended.similar] == [
            (m.graph_id, m.distance) for m in static_report.results.similar
        ]
        available = EDGE_LATENCY * wq.spec.size
        rows.append([
            name,
            f"{trace.srt_seconds:.4f}",
            f"{static_srt:.4f}",
            f"{trace.total_step_processing:.4f}",
            f"{available:.0f}",
        ])
        data[name] = {
            "blended_srt_s": trace.srt_seconds,
            "static_srt_s": static_srt,
            "hidden_work_s": trace.total_step_processing,
            "available_latency_s": available,
        }

    def blended_run():
        engine = PragueEngine(db, indexes, sigma=SIGMA)
        return formulate(engine, aids_workload["Q1"].spec,
                         edge_latency=EDGE_LATENCY)

    benchmark(blended_run)

    table = format_table(
        f"Ablation A5: blended vs static paradigm (same machinery), "
        f"|D|={len(db)}",
        ["query", "blended SRT (s)", "static SRT (s)",
         "work hidden in latency (s)", "latency available (s)"],
        rows,
    )
    emit("ablation_blending", table, data)
    for entry in data.values():
        # blending never hurts, and the hidden work fits the GUI latency
        assert entry["blended_srt_s"] <= entry["static_srt_s"] + 1e-6
        assert entry["hidden_work_s"] < entry["available_latency_s"]