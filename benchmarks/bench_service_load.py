"""Service load benchmark — PRAGUE as a server under concurrent users.

Not a paper figure: this suite guards the multi-session service layer
(:mod:`repro.service`) against regression.  Twenty-five simulated users,
released through a barrier, each drive a scripted formulation (nodes,
edges, Run) over their own session of one in-process ``repro serve``
stack; client-observed wall latency is folded into exact-rank percentiles
and a per-session SRT-under-load ledger.  Floors enforced:

* zero user-visible errors across every concurrent session;
* p99 action latency within the paper's 2 s/edge GUI-latency window —
  i.e. every step still hides inside the time the user spends drawing.

``service.p99_action_s``, ``service.srt_under_load_s`` and the
dimensionless ``service.slo_attainment`` feed the perf-regression
trajectory via ``python -m repro perf``.
"""

import pytest

from repro.bench import emit, format_table
from repro.bench.service_load import run_service_load

NUM_SESSIONS = 25
P99_ACTION_CEILING_S = 2.0  # the paper's GUI-latency window


@pytest.mark.benchmark(group="service_load")
def test_service_load(benchmark):
    data = run_service_load(num_sessions=NUM_SESSIONS, smoke=False)

    rows = [
        ["p50", f"{data['p50_action_s'] * 1000:.2f}"],
        ["p90", f"{data['p90_action_s'] * 1000:.2f}"],
        ["p99", f"{data['p99_action_s'] * 1000:.2f}"],
        ["max", f"{data['max_action_s'] * 1000:.2f}"],
        ["SRT under load (p50)",
         f"{data['srt_under_load_p50_s'] * 1000:.2f}"],
        ["SRT under load (p99)",
         f"{data['srt_under_load_s'] * 1000:.2f}"],
        ["SLO attainment (action latency)",
         f"{100 * data['slo_attainment']:.2f}%"],
    ]
    table = format_table(
        f"Service load: {data['sessions']} concurrent sessions, "
        f"|D|={data['corpus']}, {data['actions']} actions, "
        f"{data['actions_per_s']:.0f} actions/s",
        ["action latency", "ms"],
        rows,
    )
    emit("service_load", table, data)

    # Benchmarked op: one action round trip on a live session — the unit
    # of interactive latency every formulation gesture pays.
    from repro.core.plane import SharedPlane
    from repro.bench.service_load import LOAD_PARAMS
    from repro.datasets.aids import generate_aids_like
    from repro.index import build_indexes
    from repro.service import PragueService, ServiceClient, SessionManager

    db = generate_aids_like(40, seed=2012)
    plane = SharedPlane(db, build_indexes(db, LOAD_PARAMS))
    server = PragueService(
        SessionManager(plane, max_sessions=4, ttl=0, sigma=2), port=0
    )
    thread = server.serve_background()
    host, port = server.address
    try:
        with ServiceClient(host, port, timeout=30.0) as client:
            sid = client.create_session()
            counter = iter(range(10 ** 9))
            benchmark(
                lambda: client.add_node(sid, f"n{next(counter)}", "C")
            )
            client.close_session(sid)
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()

    assert data["errors"] == []
    assert data["p99_action_s"] <= P99_ACTION_CEILING_S
    # p99 within the window implies server-side attainment at its 99% target
    # (the SLO engine judges the same actions against the same 2 s bound).
    assert data["slo_attainment"] >= 0.99, data["slo"]
