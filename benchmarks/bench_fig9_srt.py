"""Figures 9(f)-(i) — similarity-query SRT of Q1-Q4 for σ = 1..4.

Paper: PRG beats GR/SG overall; on worst-case queries it can trail slightly
at σ ∈ {1, 2} but wins at larger σ, and its SRT "grows gracefully with σ".
DVP is reported for Q1 only (it returns empty results elsewhere); here it is
reported for Q1 as well.  Only PRG returns distance-ranked results.
"""

import pytest

from repro.baselines import DistVpIndex, DistVpSearch, FeatureIndex, GrafilSearch, SigmaSearch
from repro.bench import emit, format_table
from repro.bench.harness import aids_db, aids_indexes
from repro.core import PragueEngine, formulate

SIGMAS = (1, 2, 3, 4)
EDGE_LATENCY = 2.0


@pytest.mark.benchmark(group="fig9_srt")
def test_fig9_similarity_srt(benchmark, aids_workload):
    db = aids_db()
    indexes = aids_indexes()
    feature_index = FeatureIndex(db, indexes.frequent, max_feature_edges=4)
    systems = {
        "GR": GrafilSearch(db, feature_index),
        "SG": SigmaSearch(db, feature_index),
    }
    dvp_indexes = {s: DistVpIndex(db, s) for s in SIGMAS}

    rows = []
    data = {}
    names = list(aids_workload)
    for name in names:
        wq = aids_workload[name]
        query = wq.spec.graph()
        for sigma in SIGMAS:
            engine = PragueEngine(db, indexes, sigma=sigma)
            trace = formulate(engine, wq.spec, edge_latency=EDGE_LATENCY)
            entry = {"PRG": trace.srt_seconds}
            for sys_name, system in systems.items():
                entry[sys_name] = system.search(query, sigma).total_seconds
            if name == names[0]:  # DVP: best-case query only (paper, Fig 9f)
                entry["DVP"] = (
                    DistVpSearch(db, dvp_indexes[sigma])
                    .search(query, sigma)
                    .total_seconds
                )
            rows.append([
                name, sigma,
                f"{entry['PRG']:.3f}", f"{entry['GR']:.3f}",
                f"{entry['SG']:.3f}",
                f"{entry.get('DVP', float('nan')):.3f}" if "DVP" in entry else "-",
            ])
            data[f"{name}/sigma{sigma}"] = entry

    def prague_run():
        engine = PragueEngine(db, indexes, sigma=3)
        return formulate(engine, aids_workload[names[0]].spec,
                         edge_latency=EDGE_LATENCY)

    benchmark(prague_run)

    table = format_table(
        f"Figures 9(f)-(i): similarity SRT (s), |D|={len(db)}",
        ["query", "sigma", "PRG", "GR", "SG", "DVP"],
        rows,
    )
    emit("fig9_srt", table, data)
    # Shape: PRG's total SRT across the workload beats GR and SG.
    for competitor in ("GR", "SG"):
        prg_total = sum(e["PRG"] for e in data.values())
        other_total = sum(e[competitor] for e in data.values())
        assert prg_total <= other_total
