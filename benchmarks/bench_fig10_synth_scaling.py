"""Figures 10(b)-(e) — SRT and candidate sizes vs synthetic dataset size.

Paper (Q6 and Q8, σ = 3): PRG's SRT is lower than SG and GR and it has the
fewest candidates across all dataset sizes; DVP "failed to build indexes for
the synthetic datasets" and is therefore absent.  Reproduced shape: the same
ordering at every size, and the DVP build attempt aborts under its q-gram
budget exactly like the paper's executable.
"""

import pytest

from repro.baselines import (
    DistVpIndex,
    DistVpIndexError,
    FeatureIndex,
    GrafilSearch,
    SigmaSearch,
)
from repro.bench import emit, format_table
from repro.bench.harness import (
    synthetic_db,
    synthetic_indexes,
    synthetic_similarity_workload,
    synthetic_sweep_sizes,
)
from repro.core import PragueEngine, formulate
from repro.core.similar import similar_sub_candidates

SIGMA = 3
EDGE_LATENCY = 2.0


def _prague_point(db, indexes, spec):
    engine = PragueEngine(db, indexes, sigma=SIGMA)
    trace = formulate(engine, spec, edge_latency=EDGE_LATENCY)
    candidates = similar_sub_candidates(
        engine.query, SIGMA, engine.manager, indexes, engine.db_ids,
        include_exact_level=False,
    )
    return trace.srt_seconds, candidates.candidate_count


@pytest.mark.benchmark(group="fig10")
def test_fig10_synthetic_scaling(benchmark):
    sizes = synthetic_sweep_sizes()
    workload = synthetic_similarity_workload(sizes[0])
    chosen = [name for name in ("Q6", "Q8") if name in workload] or list(workload)[:2]

    rows = []
    data = {}
    for size in sizes:
        db = synthetic_db(size)
        indexes = synthetic_indexes(size)
        feature_index = FeatureIndex(db, indexes.frequent, max_feature_edges=4)
        systems = {
            "GR": GrafilSearch(db, feature_index),
            "SG": SigmaSearch(db, feature_index),
        }
        for name in chosen:
            spec = workload[name].spec
            query = spec.graph()
            prg_srt, prg_cand = _prague_point(db, indexes, spec)
            entry = {"PRG_srt": prg_srt, "PRG_cand": prg_cand}
            for sys_name, system in systems.items():
                outcome = system.search(query, SIGMA)
                entry[f"{sys_name}_srt"] = outcome.total_seconds
                entry[f"{sys_name}_cand"] = outcome.candidate_count
            rows.append([
                name, size,
                f"{entry['PRG_srt']:.3f}", entry["PRG_cand"],
                f"{entry['GR_srt']:.3f}", entry["GR_cand"],
                f"{entry['SG_srt']:.3f}", entry["SG_cand"],
            ])
            data[f"{name}/{size}"] = entry

    # DVP: the build aborts on the synthetic corpora under its default
    # capacity — the paper's footnote 10 behaviour ("DVP simply exits").
    dvp_failed = False
    try:
        DistVpIndex(synthetic_db(sizes[0]), SIGMA)
    except DistVpIndexError:
        dvp_failed = True

    spec = workload[chosen[0]].spec
    benchmark(
        _prague_point, synthetic_db(sizes[0]), synthetic_indexes(sizes[0]), spec
    )

    table = format_table(
        f"Figures 10(b)-(e): SRT (s) and candidates vs dataset size "
        f"(DVP index build {'FAILED (as in the paper)' if dvp_failed else 'succeeded'})",
        ["query", "graphs", "PRG srt", "PRG cand", "GR srt", "GR cand",
         "SG srt", "SG cand"],
        rows,
    )
    emit("fig10_synth_scaling", table, {"dvp_failed": dvp_failed, **data})
    assert dvp_failed  # the paper's footnote 10

    # Shape: PRG has the fewest candidates and the lowest SRT everywhere.
    for entry in data.values():
        assert entry["PRG_cand"] <= min(entry["GR_cand"], entry["SG_cand"])
        assert entry["PRG_srt"] <= min(entry["GR_srt"], entry["SG_srt"]) * 2
