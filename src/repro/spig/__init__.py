"""Spindle-shaped graphs: structure, construction (Alg 2) and management."""

from repro.spig.construct import build_spig
from repro.spig.manager import SpigManager
from repro.spig.spig import SPIG, FragmentList, SpigVertex

__all__ = ["SPIG", "SpigVertex", "FragmentList", "SpigManager", "build_spig"]
