"""SPIG-set management: build, probe, and maintain SPIGs across actions.

Section V/VII: the SPIG set ``S`` keeps one SPIG per (still-present) query
edge; unlike GBLENDER — which stores only the most recent candidate set — the
SPIG set records the fragment information of *all* formulation steps, which is
what makes similarity search and cheap query modification possible.

The manager also owns the global edge-set → vertex map.  Every connected
subset of query edges is represented in exactly one SPIG (the one of its
largest edge id), so the map gives O(1) access to any subgraph's vertex — used
by Fragment List inheritance (Algorithm 2, lines 9-11), by level scans
(Algorithm 4, line 2) and by modification matching (Algorithm 6, line 5).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional

from repro.exceptions import SpigError
from repro.index.builder import ActionAwareIndexes
from repro.query_graph import VisualQuery
from repro.spig.construct import build_spig
from repro.spig.spig import SPIG, SpigVertex


class SpigManager:
    """Owns the SPIG set ``S`` for one query-formulation session."""

    def __init__(self, indexes: ActionAwareIndexes, dedup: bool = True) -> None:
        self.indexes = indexes
        self.dedup = dedup
        self.spigs: Dict[int, SPIG] = {}
        self._vertex_by_set: Dict[FrozenSet[int], SpigVertex] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register(self, edge_set: FrozenSet[int], vertex: SpigVertex) -> None:
        self._vertex_by_set[edge_set] = vertex

    def vertex_for(self, edge_set: FrozenSet[int]) -> Optional[SpigVertex]:
        """The vertex representing this exact set of query edges, if any."""
        return self._vertex_by_set.get(frozenset(edge_set))

    def target_vertex(self, query: VisualQuery) -> SpigVertex:
        """The vertex of the *entire* current query fragment."""
        vertex = self.vertex_for(query.edge_id_set())
        if vertex is None:
            raise SpigError("no SPIG vertex for the full query; "
                            "was on_new_edge called for every step?")
        return vertex

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def on_new_edge(self, query: VisualQuery, new_edge_id: int) -> SPIG:
        """Action ``New``: build ``S_ℓ`` and add it to the set (Alg 1, line 4)."""
        if new_edge_id in self.spigs:
            raise SpigError(f"SPIG for edge {new_edge_id} already exists")
        spig = build_spig(query, new_edge_id, self, self.indexes,
                          dedup=self.dedup)
        self.spigs[new_edge_id] = spig
        return spig

    def on_delete_edge(self, deleted_edge_id: int) -> None:
        """Action ``Modify`` upkeep (Algorithm 6, lines 12-14).

        Removes ``S_d`` entirely, then drops from every other SPIG the
        edge-sets (and emptied vertices) that used the deleted edge.
        """
        removed = self.spigs.pop(deleted_edge_id, None)
        if removed is not None:
            for vertex in list(removed.vertices()):
                for edge_set in vertex.edge_sets:
                    self._vertex_by_set.pop(edge_set, None)
        for spig in self.spigs.values():
            for vertex in list(spig.vertices()):
                stale = {s for s in vertex.edge_sets if deleted_edge_id in s}
                if not stale:
                    continue
                vertex.edge_sets -= stale
                for edge_set in stale:
                    self._vertex_by_set.pop(edge_set, None)
                if not vertex.edge_sets:
                    spig.remove_vertex(vertex)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def vertices_at_level(self, level: int) -> Iterator[SpigVertex]:
        """All vertices at ``level`` across the SPIG set (Algorithm 4, line 2)."""
        for edge_id in sorted(self.spigs):
            yield from self.spigs[edge_id].vertices_at(level)

    def total_vertices_at(self, level: int) -> int:
        """``N(k)`` of Lemma 1 — counted in realising edge-sets."""
        return sum(
            len(v.edge_sets) for v in self.vertices_at_level(level)
        )

    def num_vertices(self) -> int:
        return sum(s.num_vertices for s in self.spigs.values())

    def clear(self) -> None:
        self.spigs.clear()
        self._vertex_by_set.clear()
