"""SPIG construction — Algorithm 2 (``SpigConstruct``).

Construction proceeds level by level from the new edge ``e_ℓ`` (a breadth-
first realisation of Algorithm 2's vertex queue): level k holds every
isomorphism class of connected k-edge subgraphs of the current query fragment
that contain ``e_ℓ``.

Fragment Lists are *inherited*, never recomputed from scratch (the heart of
Algorithm 2, lines 6-13): a NIF vertex ``g`` collects

* ``Φ(g)`` — the ``a2fId`` of every frequent largest proper subgraph, and
* ``Υ(g)`` — the ``a2iId`` of every DIF subgraph, via the closure
  ``Υ(g) = ⋃_w (Υ(w) ∪ {difId(w)})`` over the connected (|g|−1)-subgraphs
  ``w`` of ``g``

where each ``w`` is found in O(1) through the manager's global
edge-set → vertex map: subgraphs containing ``e_ℓ`` are lower levels of the
SPIG under construction, the subgraph without ``e_ℓ`` lives in an earlier SPIG
(Algorithm 2, lines 9-11).  The closure is complete because every connected
proper subgraph of ``g`` extends, inside ``g``, to a connected
(|g|−1)-subgraph.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, FrozenSet, Set

from repro.exceptions import SpigError
from repro.graph.canonical import canonical_code
from repro.index.builder import ActionAwareIndexes
from repro.obs.histogram import observe
from repro.obs.metrics import count
from repro.obs.tracer import span
from repro.query_graph import VisualQuery
from repro.spig.spig import SPIG, FragmentList, SpigVertex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spig.manager import SpigManager


def _connected_edge_subset(query: VisualQuery, edge_set: FrozenSet[int]) -> bool:
    return query.edge_subgraph_by_ids(edge_set).is_connected()


def _compute_fragment_list(
    vertex: SpigVertex,
    edge_set: FrozenSet[int],
    query: VisualQuery,
    manager: "SpigManager",
    indexes: ActionAwareIndexes,
) -> FragmentList:
    """Definition 4's Fragment List for a freshly created vertex."""
    freq_id = indexes.a2f.lookup(vertex.code)
    if freq_id is not None:
        return FragmentList(freq_id=freq_id)
    dif_id = indexes.a2i.lookup(vertex.code)
    if dif_id is not None:
        return FragmentList(dif_id=dif_id)
    if len(edge_set) == 1:
        # A single edge outside both indexes carries a label that never
        # occurs in the database: provably unmatched (the A2I-index holds
        # every in-universe label pair, including support-0 ones).
        return FragmentList(dead=True)
    phi: Set[int] = set()
    upsilon: Set[int] = set()
    dead = False
    for eid in edge_set:
        sub = edge_set - {eid}
        if not _connected_edge_subset(query, sub):
            continue
        w = manager.vertex_for(sub)
        if w is None:
            raise SpigError(
                f"missing SPIG vertex for subgraph {sorted(sub)}; "
                "SPIGs were not maintained for every formulation step"
            )
        fl = w.fragment_list
        dead = dead or fl.dead
        if fl.freq_id is not None:
            phi.add(fl.freq_id)
        if fl.dif_id is not None:
            upsilon.add(fl.dif_id)
        upsilon |= fl.upsilon
    return FragmentList(phi=frozenset(phi), upsilon=frozenset(upsilon), dead=dead)


def build_spig(
    query: VisualQuery,
    new_edge_id: int,
    manager: "SpigManager",
    indexes: ActionAwareIndexes,
    dedup: bool = True,
) -> SPIG:
    """Algorithm 2: build ``S_ℓ`` for the new edge and register its vertices.

    ``dedup=False`` keeps one vertex per edge-subset (no canonical-code
    merging) — the ablation configuration.
    """
    if new_edge_id not in query.edge_id_set():
        raise SpigError(f"edge {new_edge_id} is not part of the query")
    spig = SPIG(new_edge_id, dedup=dedup)
    level_sets: Set[FrozenSet[int]] = {frozenset({new_edge_id})}
    level = 1
    build_start = time.perf_counter()
    with span("spig.construct", edge=new_edge_id) as sp:
        while level_sets:
            # Deterministic order keeps vertex positions stable across runs.
            for edge_set in sorted(level_sets, key=sorted):
                fragment = query.edge_subgraph_by_ids(edge_set)
                code = canonical_code(fragment)
                vertex, created = spig.get_or_create(level, code, fragment)
                vertex.edge_sets.add(edge_set)
                manager.register(edge_set, vertex)
                if created:
                    count("spig.vertices.created")
                    vertex.fragment_list = _compute_fragment_list(
                        vertex, edge_set, query, manager, indexes
                    )
                # Parent links inside S_ℓ: (level−1)-subsets still
                # containing e_ℓ.
                if level > 1:
                    for eid in edge_set:
                        if eid == new_edge_id:
                            continue
                        sub = edge_set - {eid}
                        if not _connected_edge_subset(query, sub):
                            continue
                        parent = manager.vertex_for(sub)
                        if parent is None or parent.spig_id != new_edge_id:
                            continue
                        parent.children.add(vertex)
                        vertex.parents.add(parent)
            # Expand to the next level through edges adjacent to each subset.
            next_sets: Set[FrozenSet[int]] = set()
            for edge_set in level_sets:
                for eid in query.adjacent_edge_ids(edge_set):
                    next_sets.add(edge_set | {eid})
            level_sets = next_sets
            level += 1
        sp.set(vertices=spig.num_vertices, levels=level - 1)
    observe("spig.construct", time.perf_counter() - build_start)
    return spig
