"""The spindle-shaped graph (SPIG) data structure — Section V, Definition 4.

One SPIG ``S_ℓ`` is created per drawn edge ``e_ℓ``.  Its vertices represent
the connected subgraphs of the current query fragment that *contain* ``e_ℓ``,
leveled by edge count: level 1 holds only ``e_ℓ`` (the source vertex), the top
level holds the whole fragment (the target vertex) — hence the spindle shape.

Each vertex carries (Definition 4):

* ``cam`` — the canonical code of the fragment it represents;
* the *Edge List* — which query-edge-id sets realise the fragment.  Following
  the paper's observation that nodes often share labels ("only two vertexes
  are in the fourth level of S6"), vertices are deduplicated by canonical code
  within a level; we keep *every* realising edge-id set so that edge-deletion
  maintenance (Algorithm 6) stays exact.  All Fragment List attributes are
  isomorphism-invariant, so the deduplication is lossless;
* the *Fragment List* ``(freqId, difId, Φ, Υ)``:

  1. fragment indexed in A2F  -> ``freqId = a2fId(g)``, rest empty;
  2. fragment indexed in A2I  -> ``difId = a2iId(g)``, rest empty;
  3. otherwise (a NIF)        -> ``Φ`` = a2f ids of all largest proper
     subgraphs (size |g|−1) in A2F, ``Υ`` = a2i ids of *all* subgraphs in A2I.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.exceptions import SpigError
from repro.graph.canonical import CanonicalCode
from repro.graph.labeled_graph import Graph


class FragmentList:
    """The 4-attribute identifier record of Definition 4.

    ``dead`` is a small extension beyond the paper: it marks fragments that
    provably have zero matches because they use a node or edge label that
    never occurs in the database.  The paper's GUI cannot produce such
    fragments (Panel 2 only offers labels present in the dataset), but the
    library is also usable programmatically, where foreign labels are legal.
    """

    __slots__ = ("freq_id", "dif_id", "phi", "upsilon", "dead")

    def __init__(
        self,
        freq_id: Optional[int] = None,
        dif_id: Optional[int] = None,
        phi: FrozenSet[int] = frozenset(),
        upsilon: FrozenSet[int] = frozenset(),
        dead: bool = False,
    ) -> None:
        self.freq_id = freq_id
        self.dif_id = dif_id
        self.phi = phi
        self.upsilon = upsilon
        self.dead = dead

    @property
    def is_indexed(self) -> bool:
        """True iff the fragment itself is in A2F or A2I."""
        return self.freq_id is not None or self.dif_id is not None

    def __repr__(self) -> str:
        return (
            f"FragmentList(freq={self.freq_id}, dif={self.dif_id}, "
            f"phi={sorted(self.phi)}, upsilon={sorted(self.upsilon)}, "
            f"dead={self.dead})"
        )


class SpigVertex:
    """One isomorphism class of connected subgraphs containing ``e_ℓ``."""

    __slots__ = (
        "spig_id",
        "position",
        "code",
        "level",
        "fragment",
        "edge_sets",
        "fragment_list",
        "parents",
        "children",
    )

    def __init__(
        self,
        spig_id: int,
        position: int,
        code: CanonicalCode,
        level: int,
        fragment: Graph,
    ) -> None:
        self.spig_id = spig_id          # ℓ of the owning SPIG
        self.position = position       # k in the paper's v_(ℓ,k)
        self.code = code
        self.level = level              # fragment size (edge count)
        self.fragment = fragment       # representative labeled graph
        self.edge_sets: Set[FrozenSet[int]] = set()
        self.fragment_list = FragmentList()
        self.parents: Set["SpigVertex"] = set()
        self.children: Set["SpigVertex"] = set()

    @property
    def vertex_id(self) -> Tuple[int, int]:
        """The paper's pair identifier ``(ℓ, k)``."""
        return (self.spig_id, self.position)

    @property
    def primary_edge_set(self) -> FrozenSet[int]:
        return min(self.edge_sets, key=sorted)

    def __repr__(self) -> str:
        return (
            f"SpigVertex(v({self.spig_id},{self.position}), level={self.level}, "
            f"sets={len(self.edge_sets)})"
        )

    def __hash__(self) -> int:
        return id(self)


class SPIG:
    """One spindle-shaped graph ``S_ℓ = (V_ℓ, E_ℓ)``.

    ``dedup=False`` disables the per-level canonical-code deduplication so
    every edge-subset gets its own vertex (one vertex per C(n−1, k−1) subset,
    the worst case of Section V-B) — used by the dedup ablation benchmark.
    """

    def __init__(self, edge_id: int, dedup: bool = True) -> None:
        self.edge_id = edge_id
        self.dedup = dedup
        self._levels: Dict[int, List[SpigVertex]] = {}
        self._by_code: Dict[Tuple[int, CanonicalCode], SpigVertex] = {}
        self._positions = 0

    # ------------------------------------------------------------------
    def get_or_create(
        self, level: int, code: CanonicalCode, fragment: Graph
    ) -> Tuple[SpigVertex, bool]:
        """Vertex for ``code`` at ``level``; created if absent."""
        key = (level, code) if self.dedup else (level, code, self._positions)
        v = self._by_code.get(key) if self.dedup else None
        if v is not None:
            return v, False
        self._positions += 1
        v = SpigVertex(self.edge_id, self._positions, code, level, fragment)
        self._by_code[key] = v
        self._levels.setdefault(level, []).append(v)
        return v, True

    def remove_vertex(self, v: SpigVertex) -> None:
        """Detach ``v`` from the SPIG (Algorithm 6, lines 13-14)."""
        for key, existing in self._by_code.items():
            if existing is v:
                break
        else:
            raise SpigError("vertex does not belong to this SPIG")
        del self._by_code[key]
        self._levels[v.level].remove(v)
        if not self._levels[v.level]:
            del self._levels[v.level]
        for p in v.parents:
            p.children.discard(v)
        for c in v.children:
            c.parents.discard(v)
        v.parents.clear()
        v.children.clear()

    # ------------------------------------------------------------------
    def levels(self) -> List[int]:
        return sorted(self._levels)

    def vertices_at(self, level: int) -> List[SpigVertex]:
        return list(self._levels.get(level, ()))

    def vertices(self) -> Iterator[SpigVertex]:
        for level in sorted(self._levels):
            yield from self._levels[level]

    @property
    def num_vertices(self) -> int:
        return len(self._by_code)

    @property
    def source_vertex(self) -> SpigVertex:
        """``S_ℓ.v_source`` — the level-1 vertex representing ``e_ℓ`` itself."""
        vertices = self._levels.get(1)
        if not vertices:
            raise SpigError(f"SPIG {self.edge_id} has no source vertex")
        return vertices[0]

    @property
    def target_vertex(self) -> SpigVertex:
        """``S_ℓ.v_target`` — the vertex of the full query fragment.

        Meaningful right after construction; after later steps the full-query
        vertex lives in the newest SPIG instead.
        """
        top = max(self._levels)
        vertices = self._levels[top]
        if len(vertices) != 1:
            raise SpigError("target level must hold exactly one vertex")
        return vertices[0]

    def __repr__(self) -> str:
        return f"SPIG(e{self.edge_id}, vertices={self.num_vertices})"
