"""Grafil-style substructure similarity search (Yan et al., the paper's [12]).

Traditional (non-blended) paradigm: the complete query arrives at once, a
feature-based filter prunes the database, and the survivors are verified.

The filtering principle is Grafil's *feature-miss estimation*: relaxing the
query by deleting ``σ`` edges can invalidate only features touching the
deleted edges, so for any σ-edge deletion the number of missed features is at
most the sum of the σ largest per-edge feature-hit counts.  A data graph
missing more query features than that bound cannot match within distance σ.
Grafil additionally groups features by size and applies the bound per group
(its multi-filter hierarchy), which we reproduce: each group yields an
independent sound bound, and a graph must pass every group's filter.

Verification is the MCCS distance test of Definition 3.  (The original uses
embedding-count matrices; the presence-based variant here is the documented
simplification — same shape, same soundness, see DESIGN.md.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.baselines.features import FeatureIndex, QueryFeature
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.graph.mccs import mccs_at_least


@dataclass
class SimilaritySearchOutcome:
    """What a traditional similarity system reports for one query."""

    matches: List[int]
    candidates: Set[int]
    filter_seconds: float
    verify_seconds: float

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)

    @property
    def total_seconds(self) -> float:
        return self.filter_seconds + self.verify_seconds


def _max_misses(features: List[QueryFeature], query: Graph, sigma: int) -> int:
    """Sum of the σ largest per-edge feature-hit counts (the miss bound)."""
    hits: Dict[object, int] = {e: 0 for e in query.edges()}
    for feature in features:
        for edge in feature.touched_edges:
            hits[edge] += 1
    top = sorted(hits.values(), reverse=True)[:sigma]
    return sum(top)


class GrafilSearch:
    """Filter + verify pipeline over a :class:`FeatureIndex`."""

    def __init__(self, db: GraphDatabase, index: FeatureIndex) -> None:
        self.db = db
        self.index = index

    def candidates(self, query: Graph, sigma: int) -> Set[int]:
        """Graphs surviving every per-size-group feature-miss filter."""
        features = self.index.query_features(query)
        if not features:
            return set(self.db.ids())
        survivors = set(self.db.ids())
        sizes = sorted({f.size for f in features})
        for size in sizes:
            group = [f for f in features if f.size == size]
            allowed = _max_misses(group, query, sigma)
            if len(group) <= allowed:
                continue  # this group cannot prune anything
            present: Dict[int, int] = {gid: 0 for gid in survivors}
            for feature in group:
                for gid in self.index.graphs_with(feature.code):
                    if gid in present:
                        present[gid] += 1
            needed = len(group) - allowed
            survivors = {gid for gid, n in present.items() if n >= needed}
            if not survivors:
                break
        return survivors

    def search(self, query: Graph, sigma: int) -> SimilaritySearchOutcome:
        start = time.perf_counter()
        candidates = self.candidates(query, sigma)
        filter_seconds = time.perf_counter() - start
        start = time.perf_counter()
        threshold = query.num_edges - sigma
        matches = sorted(
            gid
            for gid in candidates
            if mccs_at_least(query, self.db[gid], threshold)
        )
        verify_seconds = time.perf_counter() - start
        return SimilaritySearchOutcome(
            matches=matches,
            candidates=candidates,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
        )
