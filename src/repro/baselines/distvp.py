"""DistVP-style connected substructure similarity search (paper's [11], DVP).

The authors could only run a *restricted* DistVP executable: its index is
built per σ and is an order of magnitude larger than PRAGUE's (Table II), it
reports only the to-verify candidate set ``Rver``, and it "simply exits index
building" on the synthetic datasets.  This reimplementation reproduces those
observable behaviours around the published decomposition principle:

* **index** — per-graph path q-grams (label sequences of simple paths) up to
  length ``σ + 2``; longer relaxations need deeper decompositions, so the
  index grows steeply with σ;
* **filter** — a data graph is a candidate iff, for some connected
  ``(|q| − σ)``-edge subgraph ``s`` of the query, every path q-gram of ``s``
  occurs in the graph (a necessary condition for ``s ⊆ g``);
* **budgeted build** — graphs whose q-gram sets exceed ``max_paths_per_graph``
  abort index construction with :class:`DistVpIndexError`, emulating the
  executable's failure on dense/synthetic data.

All candidates require verification (``Rver`` only — footnote 7).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.baselines.grafil import SimilaritySearchOutcome
from repro.exceptions import ReproError
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph, NodeId
from repro.graph.mccs import iter_connected_subgraph_levels, mccs_at_least
from repro.index.persistence import pickled_size_bytes


class DistVpIndexError(ReproError):
    """Index construction aborted (the executable 'simply exits')."""


def path_qgram_occurrences(
    g: Graph, max_len: int, cap: int = 0
) -> Dict[str, List[Tuple[NodeId, ...]]]:
    """Signature -> node tuples of all simple paths of 1..``max_len`` edges
    (each undirected path recorded once).

    A signature is the orientation-normalised sequence of node labels and
    edge labels along the path.  With ``cap`` > 0, enumeration aborts with
    :class:`DistVpIndexError` once more than ``cap`` distinct signatures are
    found — emulating the real executable giving up on dense data.
    """
    out: Dict[str, List[Tuple[NodeId, ...]]] = {}

    def signature(nodes: List[NodeId]) -> str:
        labels: List[str] = []
        for i, node in enumerate(nodes):
            labels.append(g.label(node))
            if i + 1 < len(nodes):
                el = g.edge_label(node, nodes[i + 1])
                labels.append(el if el is not None else "-")
        forward = "|".join(labels)
        backward = "|".join(reversed(labels))
        return min(forward, backward)

    def extend(nodes: List[NodeId], visited: Set[NodeId]) -> None:
        if len(nodes) > 1:
            # Record each undirected path once (it is reached from both
            # endpoints); keep the orientation with the smaller first node.
            if repr(nodes[0]) <= repr(nodes[-1]):
                sig = signature(nodes)
                out.setdefault(sig, []).append(tuple(nodes))
                if cap and len(out) > cap:
                    raise DistVpIndexError(
                        f"q-gram budget exceeded ({cap}) — index build aborted"
                    )
        if len(nodes) - 1 >= max_len:
            return
        for nxt in g.neighbors(nodes[-1]):
            if nxt not in visited:
                nodes.append(nxt)
                visited.add(nxt)
                extend(nodes, visited)
                visited.discard(nxt)
                nodes.pop()

    for start in g.nodes():
        extend([start], {start})
    return out


def path_qgram_counts(g: Graph, max_len: int, cap: int = 0) -> Dict[str, int]:
    """Signature -> occurrence count (see :func:`path_qgram_occurrences`)."""
    return {
        sig: len(paths)
        for sig, paths in path_qgram_occurrences(g, max_len, cap=cap).items()
    }


def path_qgrams(g: Graph, max_len: int, cap: int = 0) -> Set[str]:
    """The signature set of :func:`path_qgram_counts`."""
    return set(path_qgram_occurrences(g, max_len, cap=cap))


class DistVpIndex:
    """The σ-specific q-gram index.

    Stores, per signature, the occurrence count in every graph containing it
    (the decomposition detail a distance-based filter needs), which is why
    its footprint dwarfs PRAGUE's and grows steeply with σ — the Table II
    behaviour of the original executable.
    """

    #: The executable's per-graph signature capacity.  Calibrated so that
    #: molecular corpora (AIDS-like, ≤ ~400 distinct signatures per graph at
    #: σ = 4) build fine while the denser GraphGen-like synthetic corpora
    #: (~1 900 at σ = 3) abort — reproducing the paper's footnote 10 ("DVP
    #: simply exits index building" on the synthetic datasets).
    DEFAULT_BUDGET = 1_000

    def __init__(
        self,
        db: GraphDatabase,
        sigma: int,
        max_paths_per_graph: int = DEFAULT_BUDGET,
    ) -> None:
        if sigma < 1:
            raise ValueError("DistVP indexes are built per sigma >= 1")
        self.sigma = sigma
        self.qgram_length = sigma + 2
        self._inverted: Dict[str, Dict[int, int]] = {}
        self._occurrence_bytes = 0
        for gid, g in db.items():
            occurrences = path_qgram_occurrences(
                g, self.qgram_length, cap=max_paths_per_graph
            )
            # The on-disk index materialises the occurrence positions per
            # graph (needed by distance-based verification); only their size
            # is retained here — search uses the compact count view.
            self._occurrence_bytes += pickled_size_bytes(
                sorted(occurrences.items())
            )
            for gram, paths in occurrences.items():
                self._inverted.setdefault(gram, {})[gid] = len(paths)

    def graphs_with(self, gram: str) -> Set[int]:
        return set(self._inverted.get(gram, ()))

    def __len__(self) -> int:
        return len(self._inverted)

    def size_bytes(self) -> int:
        """Index footprint — the DVP row of Table II.

        Inverted count lists plus the per-graph occurrence payloads the
        on-disk index materialises.
        """
        inverted = pickled_size_bytes(sorted(
            (gram, sorted(ids.items()))
            for gram, ids in self._inverted.items()
        ))
        return inverted + self._occurrence_bytes


class DistVpSearch:
    """Decomposition filter + MCCS verification (``Rver`` only)."""

    def __init__(self, db: GraphDatabase, index: DistVpIndex) -> None:
        self.db = db
        self.index = index

    def candidates(self, query: Graph, sigma: int) -> Set[int]:
        if sigma > self.index.sigma:
            raise ValueError(
                f"index was built for sigma <= {self.index.sigma}"
            )
        target_level = query.num_edges - sigma
        if target_level < 1:
            return set(self.db.ids())
        out: Set[int] = set()
        for level, subsets in iter_connected_subgraph_levels(query):
            if level != target_level:
                continue
            for subset in subsets:
                fragment = query.edge_subgraph(subset)
                grams = path_qgrams(fragment, self.index.qgram_length)
                cand: Set[int] = set(self.db.ids())
                for gram in grams:
                    cand &= self.index.graphs_with(gram)
                    if not cand:
                        break
                out |= cand
            break
        return out

    def search(self, query: Graph, sigma: int) -> SimilaritySearchOutcome:
        start = time.perf_counter()
        candidates = self.candidates(query, sigma)
        filter_seconds = time.perf_counter() - start
        start = time.perf_counter()
        threshold = query.num_edges - sigma
        matches = sorted(
            gid
            for gid in candidates
            if mccs_at_least(query, self.db[gid], threshold)
        )
        verify_seconds = time.perf_counter() - start
        return SimilaritySearchOutcome(
            matches=matches,
            candidates=candidates,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
        )
