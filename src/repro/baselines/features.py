"""The shared frequent-feature index of the GR/SG baselines.

The paper notes "GR and SG use the same indexing scheme" (Section VIII-B):
a feature-graph matrix over mined frequent fragments.  We reuse the gSpan
catalog: every frequent fragment up to ``max_feature_edges`` edges becomes a
feature whose presence list is its (already exact) FSG-id list.

Query-side, a feature occurrence in the query ``q`` is any connected subgraph
of ``q`` isomorphic to a feature; for each such feature we also record which
query edges its embeddings touch — the ingredient of both Grafil's
feature-miss bound and SIGMA's cover-based lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graph.canonical import CanonicalCode, canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import EdgeKey, Graph
from repro.graph.mccs import iter_connected_subgraph_levels
from repro.index.persistence import pickled_size_bytes
from repro.mining.fragments import FragmentCatalog


@dataclass(frozen=True)
class QueryFeature:
    """One feature hit in the query: its code and the edges it can use."""

    code: CanonicalCode
    size: int
    edge_sets: Tuple[FrozenSet[EdgeKey], ...]  # one per occurrence in q

    @property
    def touched_edges(self) -> FrozenSet[EdgeKey]:
        out: Set[EdgeKey] = set()
        for es in self.edge_sets:
            out |= es
        return frozenset(out)


class FeatureIndex:
    """Presence-based feature-graph index over frequent fragments."""

    def __init__(
        self,
        db: GraphDatabase,
        frequent: FragmentCatalog,
        max_feature_edges: int = 4,
    ) -> None:
        self.db = db
        self.max_feature_edges = max_feature_edges
        self._presence: Dict[CanonicalCode, FrozenSet[int]] = {
            code: frag.fsg_ids
            for code, frag in frequent.items()
            if frag.size <= max_feature_edges
        }

    def __len__(self) -> int:
        return len(self._presence)

    def __contains__(self, code: CanonicalCode) -> bool:
        return code in self._presence

    def graphs_with(self, code: CanonicalCode) -> FrozenSet[int]:
        return self._presence.get(code, frozenset())

    def size_bytes(self) -> int:
        """Index footprint — the SG/GR column of Table II."""
        return pickled_size_bytes(sorted(self._presence.items()))

    # ------------------------------------------------------------------
    def query_features(self, query: Graph) -> List[QueryFeature]:
        """All index features occurring in ``query`` with their edge sets."""
        by_code: Dict[CanonicalCode, List[FrozenSet[EdgeKey]]] = {}
        for level, subsets in iter_connected_subgraph_levels(query):
            if level > self.max_feature_edges:
                continue
            for subset in subsets:
                code = canonical_code(query.edge_subgraph(subset))
                if code in self._presence:
                    by_code.setdefault(code, []).append(frozenset(subset))
        return [
            QueryFeature(code=code, size=len(next(iter(sets))), edge_sets=tuple(sets))
            for code, sets in sorted(by_code.items())
        ]
