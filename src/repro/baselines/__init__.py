"""Comparator systems: GBLENDER, Grafil, SIGMA, DistVP, and the naive oracle."""

from repro.baselines.counting_features import (
    CountingFeatureIndex,
    CountingGrafilSearch,
)
from repro.baselines.distvp import DistVpIndex, DistVpIndexError, DistVpSearch
from repro.baselines.features import FeatureIndex, QueryFeature
from repro.baselines.static_prague import static_prague_search
from repro.baselines.gblender import GBlenderEngine, GBlenderStep
from repro.baselines.grafil import GrafilSearch, SimilaritySearchOutcome
from repro.baselines.naive import naive_containment_search, naive_similarity_search
from repro.baselines.sigma import SigmaSearch

__all__ = [
    "GBlenderEngine",
    "GBlenderStep",
    "FeatureIndex",
    "QueryFeature",
    "GrafilSearch",
    "SigmaSearch",
    "DistVpIndex",
    "DistVpSearch",
    "DistVpIndexError",
    "SimilaritySearchOutcome",
    "naive_containment_search",
    "naive_similarity_search",
    "CountingFeatureIndex",
    "CountingGrafilSearch",
    "static_prague_search",
]
