"""Naive scan baselines — the ground-truth oracle for tests and benches.

No index, no filtering: every data graph is verified directly.  Exact search
runs VF2 per graph; similarity search computes the MCCS-based subgraph
distance per graph.  Intractable at paper scale, but authoritative — the test
suite checks every other system against these answers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import compile_pattern
from repro.graph.labeled_graph import Graph
from repro.graph.mccs import mccs_size


def naive_containment_search(query: Graph, db: GraphDatabase) -> List[int]:
    """All ids of data graphs containing ``query`` (sorted).

    The query is compiled once against corpus-wide label statistics, so the
    scan pays pattern-side work (matching order, pre-filter multisets) a
    single time instead of per data graph.
    """
    compiled = compile_pattern(query, db.label_frequencies())
    return sorted(gid for gid, g in db.items() if compiled.embeds_in(g))


def naive_similarity_search(
    query: Graph, db: GraphDatabase, sigma: int
) -> Dict[int, int]:
    """id -> subgraph distance, for every graph with ``dist(q, g) ≤ σ``."""
    out: Dict[int, int] = {}
    q_size = query.num_edges
    for gid, g in db.items():
        size = mccs_size(query, g, lower_bound=max(q_size - sigma, 1))
        if size >= q_size - sigma and size > 0:
            out[gid] = q_size - size
    return out
