"""PRAGUE's machinery without blending — the paradigm-contribution control.

The paper's headline improvement mixes two ingredients: (1) the SPIG/index
candidate machinery and (2) the *blending* — running that machinery during
GUI latency.  This baseline isolates them: it evaluates a query with exactly
PRAGUE's algorithms, but only when Run is pressed (the traditional paradigm),
so its SRT is the full processing time.  The difference to the blended SRT is
the paradigm's net contribution (ablation A5).
"""

from __future__ import annotations

import time
from typing import Tuple

from repro.core.prague import PragueEngine, RunReport
from repro.core.session import QuerySpec
from repro.graph.database import GraphDatabase
from repro.index.builder import ActionAwareIndexes


def static_prague_search(
    db: GraphDatabase,
    indexes: ActionAwareIndexes,
    spec: QuerySpec,
    sigma: int,
) -> Tuple[RunReport, float]:
    """Evaluate ``spec`` in one shot; returns (report, SRT seconds).

    The same SPIG construction, candidate generation and verification run,
    but nothing overlaps user latency — the SRT is everything.
    """
    start = time.perf_counter()
    engine = PragueEngine(db, indexes, sigma=sigma, auto_similarity=True)
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    for u, v in spec.edges:
        engine.add_edge(u, v, spec.edge_labels.get((u, v)))
    report = engine.run()
    return report, time.perf_counter() - start
