"""The count-based feature-graph matrix — Grafil's actual index.

:class:`repro.baselines.features.FeatureIndex` stores binary presence (a
documented simplification).  Grafil's published filter works on *embedding
counts*: the feature-graph matrix records how many times each feature embeds
in each data graph, and the filter bounds Σ_f max(0, cnt_q(f) − cnt_g(f)).
This module provides that index and the count-based filter, used by the
Table II / Figure 10(a) benches for honest SG/GR size accounting and by
:class:`CountingGrafilSearch` for the stronger pruning bound.

Counts are capped (default 8): beyond the cap the filter gains nothing, and
capping keeps both the build time and the matrix size realistic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set, Tuple

from repro.baselines.features import FeatureIndex, QueryFeature
from repro.baselines.grafil import SimilaritySearchOutcome
from repro.graph.canonical import CanonicalCode, canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import count_embeddings
from repro.graph.labeled_graph import EdgeKey, Graph
from repro.graph.mccs import iter_connected_subgraph_levels, mccs_at_least
from repro.index.persistence import pickled_size_bytes
from repro.mining.fragments import FragmentCatalog


class CountingFeatureIndex:
    """Feature -> graph -> (capped) embedding count."""

    def __init__(
        self,
        db: GraphDatabase,
        frequent: FragmentCatalog,
        max_feature_edges: int = 4,
        count_cap: int = 8,
    ) -> None:
        self.db = db
        self.max_feature_edges = max_feature_edges
        self.count_cap = count_cap
        self._counts: Dict[CanonicalCode, Dict[int, int]] = {}
        for code, frag in frequent.items():
            if frag.size > max_feature_edges:
                continue
            row: Dict[int, int] = {}
            for gid in frag.fsg_ids:
                row[gid] = count_embeddings(
                    frag.graph, db[gid], limit=count_cap
                )
            self._counts[code] = row

    def __len__(self) -> int:
        return len(self._counts)

    def count_in(self, code: CanonicalCode, gid: int) -> int:
        return self._counts.get(code, {}).get(gid, 0)

    def graphs_with(self, code: CanonicalCode) -> Set[int]:
        return set(self._counts.get(code, ()))

    def size_bytes(self) -> int:
        """The honest SG/GR footprint: codes plus the count matrix."""
        return pickled_size_bytes(sorted(
            (code, sorted(row.items())) for code, row in self._counts.items()
        ))


def _query_feature_embeddings(
    index: CountingFeatureIndex, query: Graph, count_cap: int
) -> List[Tuple[QueryFeature, int]]:
    """Index features of the query with their (capped) query-side counts.

    The count is the number of distinct *edge subsets* realising the feature
    (occurrence count, not automorphism-weighted), matching the edge-centric
    miss bound below.
    """
    by_code: Dict[CanonicalCode, List[frozenset]] = {}
    for level, subsets in iter_connected_subgraph_levels(query):
        if level > index.max_feature_edges:
            continue
        for subset in subsets:
            code = canonical_code(query.edge_subgraph(subset))
            if code in index._counts:
                by_code.setdefault(code, []).append(frozenset(subset))
    out: List[Tuple[QueryFeature, int]] = []
    for code, sets in sorted(by_code.items()):
        feature = QueryFeature(
            code=code, size=len(next(iter(sets))), edge_sets=tuple(sets)
        )
        out.append((feature, min(len(sets), count_cap)))
    return out


class CountingGrafilSearch:
    """Grafil with the published count-based feature-miss bound.

    For each data graph: ``missing(g) = Σ_f max(0, cnt_q(f) − cnt_g(f))``.
    Deleting one query edge destroys at most the feature *occurrences* that
    use it, so σ deletions can account for at most the sum of the σ largest
    per-edge occurrence-hit totals; graphs missing more are pruned.  Applied
    per feature-size group (the multi-filter hierarchy), as in Grafil.
    """

    def __init__(self, db: GraphDatabase, index: CountingFeatureIndex) -> None:
        self.db = db
        self.index = index

    def candidates(self, query: Graph, sigma: int) -> Set[int]:
        features = _query_feature_embeddings(
            self.index, query, self.index.count_cap
        )
        if not features:
            return set(self.db.ids())
        survivors = set(self.db.ids())
        sizes = sorted({f.size for f, _ in features})
        for size in sizes:
            group = [(f, c) for f, c in features if f.size == size]
            # per-edge occurrence hits
            hits: Dict[EdgeKey, int] = {e: 0 for e in query.edges()}
            for feature, _count in group:
                for edge_set in feature.edge_sets:
                    for edge in edge_set:
                        hits[edge] += 1
            allowed = sum(sorted(hits.values(), reverse=True)[:sigma])
            total_q = sum(c for _, c in group)
            if total_q <= allowed:
                continue
            next_survivors: Set[int] = set()
            for gid in survivors:
                missing = 0
                for feature, cnt_q in group:
                    cnt_g = self.index.count_in(feature.code, gid)
                    if cnt_g < cnt_q:
                        missing += cnt_q - cnt_g
                        if missing > allowed:
                            break
                if missing <= allowed:
                    next_survivors.add(gid)
            survivors = next_survivors
            if not survivors:
                break
        return survivors

    def search(self, query: Graph, sigma: int) -> SimilaritySearchOutcome:
        start = time.perf_counter()
        candidates = self.candidates(query, sigma)
        filter_seconds = time.perf_counter() - start
        start = time.perf_counter()
        threshold = query.num_edges - sigma
        matches = sorted(
            gid
            for gid in candidates
            if mccs_at_least(query, self.db[gid], threshold)
        )
        verify_seconds = time.perf_counter() - start
        return SimilaritySearchOutcome(
            matches=matches,
            candidates=candidates,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
        )
