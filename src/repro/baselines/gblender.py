"""GBLENDER — the paper's predecessor system [6] (the GBR baseline).

GBLENDER shares PRAGUE's action-aware indexes but differs in strategy
(Section II):

* it records only the *most recent* ``Rq`` — with every new edge the previous
  candidate set is refined by intersecting it with the FSG ids of the indexed
  fragments (frequent fragments or DIFs) introduced by the new edge;
* it assumes exact matches exist: once ``Rq`` empties, every later step and
  the final *Run* return the empty set (no similarity fallback) — the first
  limitation PRAGUE removes;
* edge deletion forces a *replay*: ``Rq`` is recomputed from the earliest
  step, "which obviously involves unnecessary processing" — the second
  limitation, and the Table IV/V contrast.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.core.verification import exact_verification
from repro.exceptions import SessionError
from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import NodeId
from repro.index.builder import ActionAwareIndexes
from repro.query_graph import VisualQuery


@dataclass
class GBlenderStep:
    edge_id: int
    rq_size: int
    frequent: bool
    processing_seconds: float


class GBlenderEngine:
    """Exact-only blended engine with latest-``Rq``-only bookkeeping."""

    def __init__(self, db: GraphDatabase, indexes: ActionAwareIndexes) -> None:
        self.db = db
        self.indexes = indexes
        self.db_ids: FrozenSet[int] = frozenset(db.ids())
        self.query = VisualQuery()
        self.rq: FrozenSet[int] = frozenset()
        self._frequent_fragment = False
        self.history: List[GBlenderStep] = []

    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: str) -> NodeId:
        return self.query.add_node(node, label)

    def add_edge(
        self, u: NodeId, v: NodeId, label: Optional[str] = None
    ) -> GBlenderStep:
        start = time.perf_counter()
        edge_id = self.query.add_edge(u, v, label)
        self.rq, self._frequent_fragment = self._refine(self.rq, edge_id, first=edge_id == min(self.query.edge_id_set()))
        step = GBlenderStep(
            edge_id=edge_id,
            rq_size=len(self.rq),
            frequent=self._frequent_fragment,
            processing_seconds=time.perf_counter() - start,
        )
        self.history.append(step)
        return step

    def delete_edge(self, edge_id: int) -> float:
        """Delete an edge and *replay* all steps to rebuild ``Rq``.

        Returns the processing time of the replay — the modification cost the
        paper benchmarks against PRAGUE's near-zero SPIG maintenance.
        """
        start = time.perf_counter()
        self.query.delete_edge(edge_id)
        self.rq = frozenset()
        self._frequent_fragment = False
        replay = VisualQuery()
        remaining = self._connected_replay_order()
        if remaining:
            # Recompute Rq from the earliest remaining step (Section II).
            saved_query = self.query
            self.query = replay
            rq: FrozenSet[int] = frozenset()
            for pos, eid in enumerate(remaining):
                a, b, elabel = saved_query.edge(eid)
                replay.add_node(a, saved_query.node_label(a))
                replay.add_node(b, saved_query.node_label(b))
                replay.add_edge(a, b, elabel)
                new_id = max(replay.edge_id_set())
                rq, self._frequent_fragment = self._refine(
                    rq, new_id, first=pos == 0
                )
            self.query = saved_query
            self.rq = rq
        return time.perf_counter() - start

    def run(self) -> Tuple[List[int], float]:
        """Exact results (empty when no exact match exists) plus SRT work."""
        if self.query.num_edges == 0:
            raise SessionError("cannot run an empty query")
        start = time.perf_counter()
        results = exact_verification(
            self.query.graph(), self.rq, self.db,
            verification_free=self._frequent_fragment,
        )
        return results, time.perf_counter() - start

    # ------------------------------------------------------------------
    def _refine(
        self, rq: FrozenSet[int], new_edge_id: int, first: bool
    ) -> Tuple[FrozenSet[int], bool]:
        """Intersect ``Rq`` with the indexed fragments the new edge introduces.

        If the whole current fragment is frequent its exact FSG list is used
        directly (the A2F path); otherwise the maximal indexed subgraphs
        containing the new edge refine the previous ``Rq`` (the A2I path with
        unique DIFs, Section II).
        """
        a2f, a2i = self.indexes.a2f, self.indexes.a2i
        code = canonical_code(self.query.edge_subgraph_by_ids(
            self._replay_scope(new_edge_id)))
        freq_id = a2f.lookup(code)
        if freq_id is not None:
            return a2f.fsg_ids(freq_id), True
        # Infrequent fragment: intersect over indexed subgraphs containing
        # the new edge (enumerated transiently — GBLENDER keeps no SPIGs).
        base: Set[int] = set(self.db_ids if first else rq)
        for sub_code in self._indexed_subfragment_codes(new_edge_id):
            sid = a2f.lookup(sub_code)
            if sid is not None:
                base &= a2f.fsg_ids(sid)
            else:
                did = a2i.lookup(sub_code)
                if did is not None:
                    base &= a2i.fsg_ids(did)
                elif len(sub_code) == 1:
                    base = set()  # out-of-universe edge label: no match
            if not base:
                break
        return frozenset(base), False

    def _connected_replay_order(self) -> List[int]:
        """Remaining edges in a connected order, earliest ids first.

        After a deletion the original formulation order may have disconnected
        prefixes (the deleted edge might have bridged an early prefix even if
        it did not bridge the full query), so the replay greedily follows the
        earliest remaining edge that keeps the fragment connected.
        """
        remaining = sorted(self.query.edge_id_set())
        if not remaining:
            return []
        order = [remaining.pop(0)]
        nodes = set(self.query.edge(order[0])[:2])
        while remaining:
            for eid in remaining:
                a, b, _ = self.query.edge(eid)
                if a in nodes or b in nodes:
                    order.append(eid)
                    nodes.update((a, b))
                    remaining.remove(eid)
                    break
            else:  # unreachable: the reduced query is connected
                order.extend(remaining)
                break
        return order

    def _replay_scope(self, new_edge_id: int) -> FrozenSet[int]:
        """Edges present when ``new_edge_id`` is (re)processed."""
        return frozenset(
            eid for eid in self.query.edge_id_set() if eid <= new_edge_id
        )

    def _indexed_subfragment_codes(self, new_edge_id: int):
        """Canonical codes of connected subgraphs containing the new edge."""
        scope = self._replay_scope(new_edge_id)
        level_sets = {frozenset({new_edge_id})}
        seen_codes = set()
        while level_sets:
            for edge_set in level_sets:
                code = canonical_code(self.query.edge_subgraph_by_ids(edge_set))
                if code not in seen_codes:
                    seen_codes.add(code)
                    yield code
            next_sets = set()
            for edge_set in level_sets:
                for eid in self.query.adjacent_edge_ids(edge_set):
                    if eid in scope:
                        next_sets.add(edge_set | {eid})
            level_sets = next_sets
