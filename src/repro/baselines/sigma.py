"""SIGMA-style set-cover-based inexact matching (Mongiovì et al., paper's [8]).

Traditional paradigm, same feature index as Grafil, but the filter reasons
about *covering*: a feature of the query that is absent from a data graph can
only be explained by one of the σ deleted edges lying on it.  SIGMA lower-
bounds the number of edge deletions a data graph would force and prunes when
that bound exceeds σ.  Two sound lower bounds are combined:

* *disjoint packing* — greedily pick missing features that are pairwise
  edge-disjoint in the query; one edge deletion can explain at most one of
  them, so the packing size bounds the deletions from below;
* *coverage capacity* — each query edge lies on at most ``Γ(e)`` features, so
  σ deletions explain at most the sum of the σ largest ``Γ(e)``; more missing
  features than that is a contradiction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set

from repro.baselines.features import FeatureIndex, QueryFeature
from repro.baselines.grafil import SimilaritySearchOutcome, _max_misses
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.graph.mccs import mccs_at_least


def _disjoint_packing_bound(missing: List[QueryFeature]) -> int:
    """Size of a greedy edge-disjoint packing of the missing features."""
    used_edges: Set[object] = set()
    packed = 0
    # Small features first: they block fewer edges, packing more features.
    for feature in sorted(missing, key=lambda f: len(f.touched_edges)):
        touched = feature.touched_edges
        if touched & used_edges:
            continue
        used_edges |= touched
        packed += 1
    return packed


class SigmaSearch:
    """Set-cover filtered similarity search over a :class:`FeatureIndex`."""

    def __init__(self, db: GraphDatabase, index: FeatureIndex) -> None:
        self.db = db
        self.index = index

    def candidates(self, query: Graph, sigma: int) -> Set[int]:
        features = self.index.query_features(query)
        if not features:
            return set(self.db.ids())
        max_missing = _max_misses(features, query, sigma)
        missing_of: Dict[int, List[QueryFeature]] = {
            gid: [] for gid in self.db.ids()
        }
        for feature in features:
            with_feature = self.index.graphs_with(feature.code)
            for gid in missing_of:
                if gid not in with_feature:
                    missing_of[gid].append(feature)
        out: Set[int] = set()
        for gid, missing in missing_of.items():
            if len(missing) > max_missing:
                continue  # coverage-capacity bound exceeded
            if _disjoint_packing_bound(missing) > sigma:
                continue  # needs more than σ deletions
            out.add(gid)
        return out

    def search(self, query: Graph, sigma: int) -> SimilaritySearchOutcome:
        start = time.perf_counter()
        candidates = self.candidates(query, sigma)
        filter_seconds = time.perf_counter() - start
        start = time.perf_counter()
        threshold = query.num_edges - sigma
        matches = sorted(
            gid
            for gid in candidates
            if mccs_at_least(query, self.db[gid], threshold)
        )
        verify_seconds = time.perf_counter() - start
        return SimilaritySearchOutcome(
            matches=matches,
            candidates=candidates,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
        )
