"""The multi-session service layer: PRAGUE as a server.

The engine was a library plus CLIs; "many concurrent users" needs one
process holding many formulation sessions.  The split (ROADMAP item 1):

* :class:`~repro.core.plane.SharedPlane` — the immutable half (db, A2F/A2I
  indexes, mined fragments, shared-memory arena), built once and shared
  read-only by every session;
* :class:`~repro.service.sessions.SessionManager` — the mutable half: one
  :class:`~repro.core.undo.UndoableEngine` per session id behind TTL
  eviction, a max-sessions admission gate and per-session action locks;
* :mod:`~repro.service.http` — a stdlib ``ThreadingHTTPServer`` speaking
  the versioned JSON protocol of :mod:`~repro.service.protocol`
  (``python -m repro serve``);
* :mod:`~repro.service.client` — the matching thin ``http.client`` client
  (what the load benchmark and the CI smoke script drive).
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import PragueService, serve_forever
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REQUEST_ID_HEADER,
    BodyTooLargeError,
    UnknownRequestError,
)
from repro.service.sessions import (
    AdmissionError,
    Session,
    SessionManager,
    UnknownSessionError,
)

__all__ = [
    "AdmissionError",
    "BodyTooLargeError",
    "PROTOCOL_VERSION",
    "PragueService",
    "REQUEST_ID_HEADER",
    "ServiceClient",
    "ServiceClientError",
    "Session",
    "SessionManager",
    "UnknownRequestError",
    "UnknownSessionError",
    "serve_forever",
]
