"""The session store: per-user engines over one shared plane.

A session is one user's formulation in flight — an
:class:`~repro.core.undo.UndoableEngine` (visual query, SPIG set,
candidates, undo stack) plus bookkeeping.  The manager owns their whole
lifecycle:

* **admission** — at most :func:`repro.config.service_max_sessions` live
  sessions; a create beyond the cap raises :class:`AdmissionError` (the
  HTTP layer maps it to 503) instead of queueing, because every admitted
  session pins candidate state in memory;
* **TTL eviction** — sessions idle longer than
  :func:`repro.config.service_session_ttl` are dropped lazily on the next
  store access; the clock rearms on every action;
* **serialization** — actions against one session run under that session's
  lock (two racing requests for the same sid execute one after the other),
  while different sessions proceed in parallel on server threads.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.config import (
    DEFAULT_SUBGRAPH_DISTANCE,
    service_max_sessions,
    service_session_ttl,
)
from repro.core.plane import SharedPlane
from repro.core.prague import RunReport
from repro.core.undo import UndoableEngine
from repro.exceptions import ReproError
from repro.obs.histogram import observe
from repro.obs.metrics import count, gauge
from repro.obs.recorder import RECORDER
from repro.obs.slo import record_action_latency, record_admission
from repro.oracle.trace import ACTION_OPS, TraceAction, _tuplify, apply_action

#: Per-session action latencies retained for ``/v1/sessions/<id>/obs``
#: percentiles — enough for a long interactive formulation, bounded so a
#: hot session cannot grow without limit.
SESSION_LATENCY_WINDOW = 512

#: Ops a session accepts: the replayable GUI gestures plus the undo pair.
SERVICE_OPS: Tuple[str, ...] = ACTION_OPS + ("undo", "redo")


class AdmissionError(ReproError):
    """The server is at its session cap; retry after closing or later."""


class UnknownSessionError(ReproError):
    """No live session has this id (never created, closed, or evicted)."""


@dataclass
class Session:
    """One live formulation session."""

    sid: str
    engine: UndoableEngine
    created_at: float
    last_used: float
    action_count: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Wall-clock seconds of the last ``run`` gesture's processing — the
    #: residual the per-session SRT ledger folds at *Run*.
    last_run_seconds: float = 0.0
    #: Recent per-action wall-clock latencies (newest last, bounded).
    latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=SESSION_LATENCY_WINDOW)
    )


class SessionManager:
    """All live sessions of one server process, behind one store lock.

    ``max_sessions``/``ttl`` default to the ``REPRO_SERVICE_*`` knobs,
    re-read on every decision so a test (or an operator restarting with new
    env) is not pinned to construction-time values.
    """

    def __init__(
        self,
        plane: SharedPlane,
        max_sessions: Optional[int] = None,
        ttl: Optional[float] = None,
        sigma: int = DEFAULT_SUBGRAPH_DISTANCE,
        undo_limit: int = 64,
    ) -> None:
        self.plane = plane
        self.sigma = sigma
        self.undo_limit = undo_limit
        self._max_override = max_sessions
        self._ttl_override = ttl
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._created = 0
        self._evicted = 0
        self._rejected = 0

    # -- knobs ---------------------------------------------------------
    def max_sessions(self) -> int:
        if self._max_override is not None:
            return max(self._max_override, 1)
        return service_max_sessions()

    def ttl(self) -> float:
        if self._ttl_override is not None:
            return max(self._ttl_override, 0.0)
        return service_session_ttl()

    # -- lifecycle -----------------------------------------------------
    def create(self, sigma: Optional[int] = None) -> Session:
        """Admit one new session (raises :class:`AdmissionError` at cap)."""
        with self._lock:
            self._evict_expired_locked()
            if len(self._sessions) >= self.max_sessions():
                self._rejected += 1
                count("service.sessions.rejected")
                record_admission(False)
                RECORDER.record(
                    "service.reject", live=len(self._sessions),
                    cap=self.max_sessions(),
                )
                raise AdmissionError(
                    f"session cap reached ({self.max_sessions()} live); "
                    "close a session or retry later"
                )
            sid = uuid.uuid4().hex[:16]
            now = time.monotonic()
            engine = UndoableEngine(
                self.plane.engine(
                    sigma=self.sigma if sigma is None else sigma
                ),
                limit=self.undo_limit,
            )
            session = Session(
                sid=sid, engine=engine, created_at=now, last_used=now
            )
            self._sessions[sid] = session
            self._created += 1
            count("service.sessions.created")
            record_admission(True)
            gauge("service.sessions.active", len(self._sessions))
            return session

    def get(self, sid: str) -> Session:
        with self._lock:
            self._evict_expired_locked()
            session = self._sessions.get(sid)
            if session is None:
                raise UnknownSessionError(
                    f"unknown session {sid!r} (closed, evicted, or never "
                    "created)"
                )
            return session

    def close(self, sid: str) -> None:
        with self._lock:
            if self._sessions.pop(sid, None) is None:
                raise UnknownSessionError(f"unknown session {sid!r}")
            count("service.sessions.closed")
            gauge("service.sessions.active", len(self._sessions))

    def evict_expired(self) -> int:
        """Drop every idle-expired session now; returns how many went."""
        with self._lock:
            return self._evict_expired_locked()

    def _evict_expired_locked(self) -> int:
        ttl = self.ttl()
        if not ttl:
            return 0
        deadline = time.monotonic() - ttl
        expired = [
            sid for sid, session in self._sessions.items()
            if session.last_used < deadline and not session.lock.locked()
        ]
        for sid in expired:
            del self._sessions[sid]
            self._evicted += 1
            count("service.sessions.evicted")
            RECORDER.record("service.evict", sid=sid)
        if expired:
            gauge("service.sessions.active", len(self._sessions))
        return len(expired)

    # -- actions -------------------------------------------------------
    def act(self, sid: str, op: str, args: Any = ()) -> Tuple[Session, Any]:
        """Perform one gesture against session ``sid`` (serialized per sid).

        ``args`` may arrive as JSON lists; they are re-tuplified to the
        literal forms :func:`repro.oracle.trace.apply_action` replays.
        """
        if op not in SERVICE_OPS:
            raise ValueError(
                f"unknown op {op!r} (expected one of {', '.join(SERVICE_OPS)})"
            )
        session = self.get(sid)
        with session.lock:
            start = time.perf_counter()
            if op == "undo":
                result = session.engine.undo()
            elif op == "redo":
                result = session.engine.redo()
            else:
                result = apply_action(
                    session.engine, TraceAction(op, _tuplify(list(args)))
                )
            elapsed = time.perf_counter() - start
            session.last_used = time.monotonic()
            session.action_count += 1
            session.latencies.append(elapsed)
            if isinstance(result, RunReport):
                session.last_run_seconds = result.processing_seconds
            count("service.actions")
            observe("service.action", elapsed)
            record_action_latency(elapsed)
        return session, result

    # -- introspection -------------------------------------------------
    def live_sessions(self) -> List[Session]:
        with self._lock:
            self._evict_expired_locked()
            return list(self._sessions.values())

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "active": len(self._sessions),
                "created": self._created,
                "evicted": self._evicted,
                "rejected": self._rejected,
                "max_sessions": self.max_sessions(),
                "ttl_seconds": self.ttl(),
                "db_graphs": len(self.plane.db),
            }
