"""The versioned JSON protocol the session service speaks.

Every response body is a schema-v2 ``service-response`` envelope
(:func:`repro.obs.export.envelope`) carrying ``protocol``
(:data:`PROTOCOL_VERSION`) plus the route's payload — so clients validate
bodies with the same ``open_envelope`` every other artifact reader uses,
and get loud version errors instead of silent misreads when either side
upgrades.

Errors are payloads too: ``{"error": {"type": ..., "message": ...}}`` with
the HTTP status from :func:`status_for` — 404 for unknown sessions, 503 at
the admission gate, 400 for invalid gestures, 500 for everything else.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.prague import RunReport, StepReport
from repro.exceptions import ReproError
from repro.obs.export import envelope
from repro.service.sessions import (
    AdmissionError,
    Session,
    UnknownSessionError,
)

#: Bumped whenever a request or response shape changes incompatibly.
PROTOCOL_VERSION = 1


def response(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a route payload in the versioned service envelope."""
    return envelope(
        "service-response", {"protocol": PROTOCOL_VERSION, **payload}
    )


def error_response(exc: BaseException) -> Dict[str, Any]:
    return response({
        "error": {"type": type(exc).__name__, "message": str(exc)},
    })


def status_for(exc: BaseException) -> int:
    """The HTTP status an exception maps to."""
    if isinstance(exc, UnknownSessionError):
        return 404
    if isinstance(exc, AdmissionError):
        return 503
    if isinstance(exc, (ReproError, ValueError, TypeError, KeyError)):
        return 400
    return 500


# ----------------------------------------------------------------------
# result / state shaping
# ----------------------------------------------------------------------
def step_report_payload(report: StepReport) -> Dict[str, Any]:
    suggestion = None
    if report.suggestion is not None:
        suggestion = {
            "edge_id": report.suggestion.edge_id,
            "candidates": sorted(report.suggestion.candidates),
        }
    return {
        "action": report.action.value,
        "status": report.status.value,
        "edge_id": report.edge_id,
        "rq_size": report.rq_size,
        "candidate_count": report.candidate_count,
        "processing_seconds": report.processing_seconds,
        "spig_seconds": report.spig_seconds,
        "suggestion": suggestion,
    }


def run_report_payload(report: RunReport) -> Dict[str, Any]:
    return {
        "exact": sorted(report.results.exact_ids),
        "similar": [
            {
                "distance": m.distance,
                "graph_id": m.graph_id,
                "verification_free": m.verification_free,
            }
            for m in report.results.similar
        ],
        "verification_free": report.verification_free,
        "candidate_count": report.candidate_count,
        "processing_seconds": report.processing_seconds,
    }


def result_payload(result: Any) -> Optional[Dict[str, Any]]:
    """Shape whatever a gesture returned (``None`` for undo/redo/add_node)."""
    if isinstance(result, StepReport):
        return {"step": step_report_payload(result)}
    if isinstance(result, list) and result \
            and isinstance(result[0], StepReport):
        return {"steps": [step_report_payload(r) for r in result]}
    if isinstance(result, RunReport):
        return {"run": run_report_payload(result)}
    if result is None:
        return None
    return {"value": result}


def session_payload(session: Session) -> Dict[str, Any]:
    """The per-session state summary every session route returns."""
    engine = session.engine
    return {
        "session": session.sid,
        "status": engine.status.value,
        "sim_flag": engine.sim_flag,
        "option_pending": engine.option_pending,
        "num_edges": engine.query.num_edges,
        "rq_size": len(engine.rq),
        "can_undo": engine.can_undo,
        "can_redo": engine.can_redo,
        "actions": session.action_count,
    }
