"""The versioned JSON protocol the session service speaks.

Every response body is a schema-v2 ``service-response`` envelope
(:func:`repro.obs.export.envelope`) carrying ``protocol``
(:data:`PROTOCOL_VERSION`) plus the route's payload — so clients validate
bodies with the same ``open_envelope`` every other artifact reader uses,
and get loud version errors instead of silent misreads when either side
upgrades.

Errors are payloads too: ``{"error": {"type": ..., "message": ...}}`` with
the HTTP status from :func:`status_for` — 404 for unknown sessions and
unknown request ids, 503 at the admission gate, 413 for oversized bodies,
400 for invalid gestures, 500 for everything else.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.config import DEFAULT_EDGE_LATENCY_SECONDS
from repro.core.prague import RunReport, StepReport
from repro.exceptions import ReproError
from repro.obs.export import envelope
from repro.obs.srt import build_ledger, events_from_reports
from repro.service.sessions import (
    AdmissionError,
    Session,
    UnknownSessionError,
)

#: Bumped whenever a request or response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: Correlation header: honored inbound (a client may supply its own id),
#: echoed on every response with the id the server actually used.
REQUEST_ID_HEADER = "X-Prague-Request"


class BodyTooLargeError(ReproError):
    """Request body exceeds the service's byte bound (HTTP 413, not 400)."""


class UnknownRequestError(ReproError):
    """No telemetry correlates with this request id (aged out or never seen)."""


def response(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a route payload in the versioned service envelope."""
    return envelope(
        "service-response", {"protocol": PROTOCOL_VERSION, **payload}
    )


def error_response(exc: BaseException) -> Dict[str, Any]:
    return response({
        "error": {"type": type(exc).__name__, "message": str(exc)},
    })


def status_for(exc: BaseException) -> int:
    """The HTTP status an exception maps to."""
    if isinstance(exc, (UnknownSessionError, UnknownRequestError)):
        return 404
    if isinstance(exc, BodyTooLargeError):
        return 413
    if isinstance(exc, AdmissionError):
        return 503
    if isinstance(exc, (ReproError, ValueError, TypeError, KeyError)):
        return 400
    return 500


# ----------------------------------------------------------------------
# result / state shaping
# ----------------------------------------------------------------------
def step_report_payload(report: StepReport) -> Dict[str, Any]:
    suggestion = None
    if report.suggestion is not None:
        suggestion = {
            "edge_id": report.suggestion.edge_id,
            "candidates": sorted(report.suggestion.candidates),
        }
    return {
        "action": report.action.value,
        "status": report.status.value,
        "edge_id": report.edge_id,
        "rq_size": report.rq_size,
        "candidate_count": report.candidate_count,
        "processing_seconds": report.processing_seconds,
        "spig_seconds": report.spig_seconds,
        "suggestion": suggestion,
    }


def run_report_payload(report: RunReport) -> Dict[str, Any]:
    return {
        "exact": sorted(report.results.exact_ids),
        "similar": [
            {
                "distance": m.distance,
                "graph_id": m.graph_id,
                "verification_free": m.verification_free,
            }
            for m in report.results.similar
        ],
        "verification_free": report.verification_free,
        "candidate_count": report.candidate_count,
        "processing_seconds": report.processing_seconds,
    }


def result_payload(result: Any) -> Optional[Dict[str, Any]]:
    """Shape whatever a gesture returned (``None`` for undo/redo/add_node)."""
    if isinstance(result, StepReport):
        return {"step": step_report_payload(result)}
    if isinstance(result, list) and result \
            and isinstance(result[0], StepReport):
        return {"steps": [step_report_payload(r) for r in result]}
    if isinstance(result, RunReport):
        return {"run": run_report_payload(result)}
    if result is None:
        return None
    return {"value": result}


def session_payload(session: Session) -> Dict[str, Any]:
    """The per-session state summary every session route returns."""
    engine = session.engine
    return {
        "session": session.sid,
        "status": engine.status.value,
        "sim_flag": engine.sim_flag,
        "option_pending": engine.option_pending,
        "num_edges": engine.query.num_edges,
        "rq_size": len(engine.rq),
        "can_undo": engine.can_undo,
        "can_redo": engine.can_redo,
        "actions": session.action_count,
    }


def _percentile(values: Sequence[float], pct: float) -> float:
    """Exact-rank percentile (the convention the load bench uses)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def session_obs_payload(
    session: Session,
    requests: Sequence[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """Per-session telemetry: SRT ledger, latency percentiles, request tail.

    The ledger folds the session's surviving step history (what undo left
    behind) against the paper's GUI-latency window, with the last *Run*'s
    processing time as the residual — the same accounting ``repro trace``
    prints for a single-process session.  Percentiles are over the
    wall-clock action latencies the manager observed for this session
    (bounded ring, newest :attr:`Session.latencies` entries).
    """
    engine = session.engine
    ledger = build_ledger(
        events_from_reports(
            engine.history, latency=DEFAULT_EDGE_LATENCY_SECONDS
        ),
        run_seconds=session.last_run_seconds,
    )
    latencies: List[float] = list(session.latencies)
    return {
        "session": session.sid,
        "actions": session.action_count,
        "srt": ledger.to_dict(),
        "action_latency": {
            "count": len(latencies),
            "p50_s": _percentile(latencies, 50.0),
            "p90_s": _percentile(latencies, 90.0),
            "p99_s": _percentile(latencies, 99.0),
            "max_s": max(latencies, default=0.0),
        },
        "requests": [dict(entry) for entry in requests],
    }
