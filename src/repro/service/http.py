"""The stdlib HTTP front of the session service.

``ThreadingHTTPServer`` — one thread per in-flight request, daemonic so a
``server.shutdown()`` (or process exit) never hangs on a straggler.  Routes:

=========================================  ==================================
``GET  /healthz``                          liveness + session-store stats
``GET  /obs``                              snapshot + SLOs + request tails
``POST /v1/sessions``                      create (``{"sigma": int?}``)
``GET  /v1/sessions``                      list live session summaries
``GET  /v1/sessions/<sid>``                one session's state
``DELETE /v1/sessions/<sid>``              close a session
``POST /v1/sessions/<sid>/actions``        ``{"op": ..., "args": [...]}``
``GET  /v1/sessions/<sid>/obs``            SRT ledger + latency percentiles
``GET  /v1/requests/<rid>``                one request's correlated bundle
=========================================  ==================================

Every body is a :mod:`repro.service.protocol` envelope.  Every request is
**correlated**: the handler mints a request id (honoring an inbound
``X-Prague-Request`` header), echoes it on the response, and dispatches the
route inside :func:`repro.obs.requests.request_scope` — so every recorder
event, every root span, and (via the worker-context hop in
:mod:`repro.obs.snapshot`) every pool-worker event produced while serving
the request carries the same id.  Completion is logged twice: a structured
``service.request`` access-log event in the flight recorder (and therefore
the JSONL export), and an entry in the always-on
:data:`~repro.obs.requests.REQUEST_LOG` ring behind ``/obs``'s
slowest-requests view and ``GET /v1/requests/<rid>`` postmortem lookups.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.config import service_port
from repro.obs.metrics import METRICS, full_snapshot
from repro.obs.recorder import RECORDER
from repro.obs.requests import REQUEST_LOG, request_scope
from repro.obs.profiler import PROFILER, profile_summary
from repro.obs.slo import SLO, record_request
from repro.obs.tracer import TRACER
from repro.service.protocol import (
    REQUEST_ID_HEADER,
    BodyTooLargeError,
    UnknownRequestError,
    error_response,
    response,
    result_payload,
    session_obs_payload,
    session_payload,
    status_for,
)
from repro.service.sessions import SessionManager

#: Request bodies beyond this are rejected with 413 — gestures are tiny.
MAX_BODY_BYTES = 1 << 20

#: How many slowest/recent completed requests ``/obs`` surfaces.
OBS_TOP_REQUESTS = 8

#: How many recorder events ``/obs`` tails for ``repro top --server``.
OBS_EVENT_TAIL = 16

#: Acceptable inbound correlation ids: short, shell- and log-safe.  Anything
#: else (absent, oversized, control characters) gets a freshly minted id.
_REQUEST_ID_OK = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def _mint_request_id(header_value: Optional[str]) -> str:
    if header_value:
        candidate = header_value.strip()
        if _REQUEST_ID_OK.match(candidate):
            return candidate
    return uuid.uuid4().hex[:16]


def _request_bundle(request_id: str) -> Dict[str, Any]:
    """Everything correlated with one request id, for postmortems.

    The access-log entry from the request ring, the recorder events stamped
    with the id (including worker-side events merged back with their
    ``src`` label), and the root span trees whose ``request_id`` attribute
    matches.  Raises :class:`UnknownRequestError` when nothing at all
    correlates — distinguishing "bad id" from "telemetry was off" is
    impossible after the fact, so the message says both.
    """
    entry = REQUEST_LOG.get(request_id)
    events = [
        event for event in RECORDER.snapshot()
        if event.get("request_id") == request_id
    ]
    spans = [
        root.to_dict() for root in list(TRACER.roots)
        if root.attrs.get("request_id") == request_id
    ]
    profile = PROFILER.slice_for_request(request_id)
    if entry is None and not events and not spans and not profile:
        raise UnknownRequestError(
            f"no telemetry correlates with request {request_id!r} "
            "(unknown id, aged out of the rings, or recorder/tracing off)"
        )
    return {
        "request_id": request_id,
        "request": entry,
        "events": events,
        "spans": spans,
        "profile": profile,
    }


class ServiceHandler(BaseHTTPRequestHandler):
    """Route one HTTP request into the session manager."""

    server_version = "prague-repro"
    protocol_version = "HTTP/1.1"  # keep-alive: one TCP setup per client

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> SessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Silenced: the structured ``service.request`` access-log event
        (request id, status, duration) replaces per-request stderr chatter."""

    def handle_one_request(self) -> None:
        """One keep-alive round, with mid-stream hangups counted, not raised.

        ``_send`` guards its own writes, but the base class flushes ``wfile``
        and reads the next request line *outside* any handler code — a
        client that resets the connection there would otherwise bubble a
        ``BrokenPipeError``/``ConnectionResetError`` up to
        ``ThreadingHTTPServer.handle_error`` and print a traceback per
        disconnect.
        """
        try:
            super().handle_one_request()
        except (BrokenPipeError, ConnectionResetError):
            METRICS.inc("service.client_disconnects")
            RECORDER.record(
                "service.disconnect",
                path=getattr(self, "path", "?"),
                status=getattr(self, "_status", 0),
            )
            self.close_connection = True

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        self._status = status
        body = json.dumps(payload, default=str).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header(REQUEST_ID_HEADER, self._request_id)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-write.  Counted directly on the
            # registry (not the trace-gated count()): disconnect storms
            # matter precisely when nobody thought to enable tracing.
            METRICS.inc("service.client_disconnects")
            RECORDER.record(
                "service.disconnect", path=self.path, status=status
            )
            self.close_connection = True

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BodyTooLargeError(
                f"request body too large ({length} bytes, "
                f"limit {MAX_BODY_BYTES})"
            )
        if length == 0:
            return {}
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        self._request_id = _mint_request_id(
            self.headers.get(REQUEST_ID_HEADER)
        )
        self._status = 0
        self._session_id: Optional[str] = None
        start = time.perf_counter()
        with request_scope(self._request_id):
            try:
                handled = self._route(method, self.path.rstrip("/") or "/")
                if not handled:
                    self._send(404, error_response(
                        ValueError(f"no route {method} {self.path}")
                    ))
            except Exception as exc:  # one mapping for every route
                if isinstance(exc, BodyTooLargeError):
                    # The oversized body was never read; the connection's
                    # framing is shot, so don't reuse it.
                    self.close_connection = True
                self._send(status_for(exc), error_response(exc))
            duration = time.perf_counter() - start
            record_request(self._status)
            REQUEST_LOG.record(
                request_id=self._request_id,
                method=method,
                path=self.path,
                status=self._status,
                duration_s=duration,
                session_id=self._session_id,
            )
            RECORDER.record(
                "service.request",
                method=method,
                path=self.path,
                status=self._status,
                duration_ms=round(1000.0 * duration, 3),
                session_id=self._session_id,
            )

    # -- routes --------------------------------------------------------
    def _route(self, method: str, path: str) -> bool:
        if method == "GET" and path == "/healthz":
            self._send(200, response(
                {"status": "ok", **self.manager.stats()}
            ))
            return True
        if method == "GET" and path == "/obs":
            self._send(200, response({
                "pid": os.getpid(),
                "snapshot": full_snapshot(),
                "service": self.manager.stats(),
                "slo": SLO.snapshot(),
                "requests": {
                    "tracked": len(REQUEST_LOG),
                    "slowest": REQUEST_LOG.slowest(OBS_TOP_REQUESTS),
                    "recent": REQUEST_LOG.recent(OBS_TOP_REQUESTS),
                },
                "events": RECORDER.snapshot()[-OBS_EVENT_TAIL:],
                "profile": profile_summary(PROFILER.collect())
                if PROFILER.enabled and PROFILER.samples else None,
            }))
            return True
        if path == "/v1/sessions":
            if method == "POST":
                body = self._read_body()
                session = self.manager.create(sigma=body.get("sigma"))
                self._session_id = session.sid
                self._send(201, response(session_payload(session)))
                return True
            if method == "GET":
                self._send(200, response({"sessions": [
                    session_payload(s)
                    for s in self.manager.live_sessions()
                ]}))
                return True
            return False
        parts = path.split("/")
        # /v1/requests/<rid> — one request's correlated telemetry bundle.
        if len(parts) == 4 and parts[1] == "v1" and parts[2] == "requests" \
                and method == "GET":
            self._send(200, response(_request_bundle(parts[3])))
            return True
        # /v1/sessions/<sid>, .../actions and .../obs
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "sessions":
            sid = parts[3]
            self._session_id = sid
            if len(parts) == 4:
                if method == "GET":
                    self._send(200, response(
                        session_payload(self.manager.get(sid))
                    ))
                    return True
                if method == "DELETE":
                    self.manager.close(sid)
                    self._send(200, response({"closed": sid}))
                    return True
                return False
            if len(parts) == 5 and parts[4] == "actions" and method == "POST":
                body = self._read_body()
                op = body.get("op")
                if not isinstance(op, str):
                    raise ValueError('body needs {"op": "<gesture>"}')
                session, result = self.manager.act(
                    sid, op, body.get("args", ())
                )
                payload = session_payload(session)
                shaped = result_payload(result)
                if shaped is not None:
                    payload.update(shaped)
                self._send(200, response(payload))
                return True
            if len(parts) == 5 and parts[4] == "obs" and method == "GET":
                session = self.manager.get(sid)
                with session.lock:
                    payload = session_obs_payload(
                        session, REQUEST_LOG.for_session(sid)
                    )
                self._send(200, response(payload))
                return True
        return False

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class PragueService(ThreadingHTTPServer):
    """The session server: a ``ThreadingHTTPServer`` owning one manager."""

    daemon_threads = True
    allow_reuse_address = True
    # Dozens of clients connect in the same instant when a class of users
    # (or the load benchmark's barrier) starts together; the socket-module
    # default backlog of 5 resets the overflow instead of queueing it.
    request_queue_size = 128

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
    ) -> None:
        self.manager = manager
        super().__init__(
            (host, service_port() if port is None else port), ServiceHandler
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, benchmarks)."""
        thread = threading.Thread(
            target=self.serve_forever, name="prague-service", daemon=True
        )
        thread.start()
        return thread


def serve_forever(
    server: PragueService, install_signals: bool = True
) -> None:
    """Serve until SIGTERM/SIGINT, then shut down cleanly.

    ``server.shutdown()`` *blocks* until the accept loop exits, so it must
    not run inside a signal handler on the accepting thread (that would
    deadlock).  Instead the accept loop runs on a daemon thread and the
    main thread waits on a stop event the handlers merely set.
    """
    if not install_signals:
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            server.server_close()
        return
    stop = threading.Event()

    def _stop(signum, frame):  # pragma: no cover - signal path
        stop.set()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    thread = server.serve_background()
    try:
        while not stop.wait(0.2):
            pass
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
