"""The stdlib HTTP front of the session service.

``ThreadingHTTPServer`` — one thread per in-flight request, daemonic so a
``server.shutdown()`` (or process exit) never hangs on a straggler.  Routes:

=========================================  ==================================
``GET  /healthz``                          liveness + session-store stats
``GET  /obs``                              ``repro.obs.full_snapshot()``
``POST /v1/sessions``                      create (``{"sigma": int?}``)
``GET  /v1/sessions``                      list live session summaries
``GET  /v1/sessions/<sid>``                one session's state
``DELETE /v1/sessions/<sid>``              close a session
``POST /v1/sessions/<sid>/actions``        ``{"op": ..., "args": [...]}``
=========================================  ==================================

Every body is a :mod:`repro.service.protocol` envelope.  The process-wide
observability stack needs no special wiring: engine actions run on server
threads, their counters/histograms land in the shared registries, and with
``REPRO_OBS_EXPORT`` set the continuous exporter streams them — ``repro top
--dir`` is the ops console.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.config import service_port
from repro.obs.metrics import full_snapshot
from repro.obs.recorder import RECORDER
from repro.service.protocol import (
    error_response,
    response,
    result_payload,
    session_payload,
    status_for,
)
from repro.service.sessions import SessionManager

#: Request bodies beyond this are rejected with 413 — gestures are tiny.
MAX_BODY_BYTES = 1 << 20


class ServiceHandler(BaseHTTPRequestHandler):
    """Route one HTTP request into the session manager."""

    server_version = "prague-repro"
    protocol_version = "HTTP/1.1"  # keep-alive: one TCP setup per client

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> SessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # No stderr chatter per request; the flight recorder keeps the tail.
        RECORDER.record(
            "service.http", line=format % args if args else format
        )

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        try:
            handled = self._route(method, self.path.rstrip("/") or "/")
        except Exception as exc:  # one mapping for every route
            self._send(status_for(exc), error_response(exc))
            return
        if not handled:
            self._send(404, error_response(
                ValueError(f"no route {method} {self.path}")
            ))

    # -- routes --------------------------------------------------------
    def _route(self, method: str, path: str) -> bool:
        if method == "GET" and path == "/healthz":
            self._send(200, response(
                {"status": "ok", **self.manager.stats()}
            ))
            return True
        if method == "GET" and path == "/obs":
            self._send(200, response({
                "snapshot": full_snapshot(),
                "service": self.manager.stats(),
            }))
            return True
        if path == "/v1/sessions":
            if method == "POST":
                body = self._read_body()
                session = self.manager.create(sigma=body.get("sigma"))
                self._send(201, response(session_payload(session)))
                return True
            if method == "GET":
                self._send(200, response({"sessions": [
                    session_payload(s)
                    for s in self.manager.live_sessions()
                ]}))
                return True
            return False
        parts = path.split("/")
        # /v1/sessions/<sid> and /v1/sessions/<sid>/actions
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "sessions":
            sid = parts[3]
            if len(parts) == 4:
                if method == "GET":
                    self._send(200, response(
                        session_payload(self.manager.get(sid))
                    ))
                    return True
                if method == "DELETE":
                    self.manager.close(sid)
                    self._send(200, response({"closed": sid}))
                    return True
                return False
            if len(parts) == 5 and parts[4] == "actions" and method == "POST":
                body = self._read_body()
                op = body.get("op")
                if not isinstance(op, str):
                    raise ValueError('body needs {"op": "<gesture>"}')
                session, result = self.manager.act(
                    sid, op, body.get("args", ())
                )
                payload = session_payload(session)
                shaped = result_payload(result)
                if shaped is not None:
                    payload.update(shaped)
                self._send(200, response(payload))
                return True
        return False

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class PragueService(ThreadingHTTPServer):
    """The session server: a ``ThreadingHTTPServer`` owning one manager."""

    daemon_threads = True
    allow_reuse_address = True
    # Dozens of clients connect in the same instant when a class of users
    # (or the load benchmark's barrier) starts together; the socket-module
    # default backlog of 5 resets the overflow instead of queueing it.
    request_queue_size = 128

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
    ) -> None:
        self.manager = manager
        super().__init__(
            (host, service_port() if port is None else port), ServiceHandler
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, benchmarks)."""
        thread = threading.Thread(
            target=self.serve_forever, name="prague-service", daemon=True
        )
        thread.start()
        return thread


def serve_forever(
    server: PragueService, install_signals: bool = True
) -> None:
    """Serve until SIGTERM/SIGINT, then shut down cleanly.

    ``server.shutdown()`` *blocks* until the accept loop exits, so it must
    not run inside a signal handler on the accepting thread (that would
    deadlock).  Instead the accept loop runs on a daemon thread and the
    main thread waits on a stop event the handlers merely set.
    """
    if not install_signals:
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            server.server_close()
        return
    stop = threading.Event()

    def _stop(signum, frame):  # pragma: no cover - signal path
        stop.set()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    thread = server.serve_background()
    try:
        while not stop.wait(0.2):
            pass
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
