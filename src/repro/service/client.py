"""A thin stdlib client for the session service.

One ``http.client.HTTPConnection`` per :class:`ServiceClient` (HTTP/1.1
keep-alive: one TCP setup per simulated user, which is what the load
benchmark wants to measure — action latency, not handshakes).  Not
thread-safe by design; give each simulated user their own client.

Every response body is validated through the same
:func:`repro.obs.export.open_envelope` the other artifact readers use, and
a protocol-version mismatch fails loudly.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.obs.export import open_envelope
from repro.service.protocol import PROTOCOL_VERSION, REQUEST_ID_HEADER


class ServiceClientError(ReproError):
    """A non-2xx service response, carrying the mapped HTTP status."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(f"[{status}] {error_type}: {message}")
        self.status = status
        self.error_type = error_type


class ServiceClient:
    """Drive one server as one user: sessions, gestures, introspection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        #: The ``X-Prague-Request`` id the server echoed on the last
        #: response — the handle for ``GET /v1/requests/<id>`` postmortems.
        self.last_request_id: Optional[str] = None

    # -- transport -----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self, method: str, path: str,
        payload: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One round trip; ``request_id`` sets the correlation header.

        Without an explicit id the server mints one; either way the echoed
        id lands in :attr:`last_request_id`.
        """
        body = None if payload is None else json.dumps(payload)
        headers: Dict[str, str] = {}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        try:
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            http_response = conn.getresponse()
            raw = http_response.read()
            status = http_response.status
        except (OSError, http.client.HTTPException):
            # A dropped keep-alive connection (server restart, idle close)
            # is retried once on a fresh socket before giving up.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            http_response = conn.getresponse()
            raw = http_response.read()
            status = http_response.status
        self.last_request_id = http_response.getheader(REQUEST_ID_HEADER)
        data = open_envelope(
            json.loads(raw.decode("utf-8")), expect_kind="service-response"
        )
        if data.get("protocol") != PROTOCOL_VERSION:
            raise ServiceClientError(
                status, "ProtocolMismatch",
                f"server speaks protocol {data.get('protocol')!r}, "
                f"client speaks {PROTOCOL_VERSION}",
            )
        if status >= 400 or "error" in data:
            error = data.get("error") or {}
            raise ServiceClientError(
                status,
                error.get("type", "UnknownError"),
                error.get("message", "no message"),
            )
        return data

    # -- ops routes ----------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def obs(self) -> Dict[str, Any]:
        return self.request("GET", "/obs")

    def session_obs(self, sid: str) -> Dict[str, Any]:
        """One session's SRT ledger, latency percentiles and request tail."""
        return self.request("GET", f"/v1/sessions/{sid}/obs")

    def request_bundle(self, request_id: str) -> Dict[str, Any]:
        """One request's correlated span/event bundle (postmortems)."""
        return self.request("GET", f"/v1/requests/{request_id}")

    # -- session lifecycle ---------------------------------------------
    def create_session(self, sigma: Optional[int] = None) -> str:
        payload: Dict[str, Any] = {}
        if sigma is not None:
            payload["sigma"] = sigma
        return self.request("POST", "/v1/sessions", payload)["session"]

    def sessions(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/v1/sessions")["sessions"]

    def session(self, sid: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/sessions/{sid}")

    def close_session(self, sid: str) -> None:
        self.request("DELETE", f"/v1/sessions/{sid}")

    # -- gestures ------------------------------------------------------
    def act(
        self, sid: str, op: str, args: Sequence[Any] = (),
    ) -> Dict[str, Any]:
        return self.request(
            "POST", f"/v1/sessions/{sid}/actions",
            {"op": op, "args": list(args)},
        )

    def add_node(self, sid: str, node: Any, label: str) -> Dict[str, Any]:
        return self.act(sid, "add_node", (node, label))

    def add_edge(
        self, sid: str, u: Any, v: Any, label: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.act(sid, "add_edge", (u, v, label))

    def delete_edge(
        self, sid: str, edge_id: Optional[int] = None,
    ) -> Dict[str, Any]:
        return self.act(sid, "delete_edge", (edge_id,))

    def enable_similarity(self, sid: str) -> Dict[str, Any]:
        return self.act(sid, "enable_similarity")

    def run(self, sid: str) -> Dict[str, Any]:
        return self.act(sid, "run")

    def undo(self, sid: str) -> Dict[str, Any]:
        return self.act(sid, "undo")

    def redo(self, sid: str) -> Dict[str, Any]:
        return self.act(sid, "redo")
