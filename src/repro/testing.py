"""Testing utilities: brute-force oracles and formulation helpers.

Shipped as part of the library (rather than hidden in the test tree) because
downstream users extending PRAGUE need the same oracles to validate their
changes: exhaustive connected-subgraph enumeration, brute-force isomorphism,
and helpers to drive engines from plain graphs.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import EdgeKey, Graph, NodeId


def connected_order(g: Graph) -> List[Tuple[NodeId, NodeId]]:
    """A deterministic edge order whose every prefix is connected."""
    edges = sorted(g.edges(), key=repr)
    if not edges:
        return []
    order = [edges[0]]
    nodes: Set[NodeId] = set(edges[0])
    rest = edges[1:]
    while rest:
        for i, e in enumerate(rest):
            if e[0] in nodes or e[1] in nodes:
                order.append(e)
                nodes.update(e)
                del rest[i]
                break
        else:
            order.append(rest.pop(0))
            nodes.update(order[-1])
    return order


def drive_engine(engine, g: Graph) -> List:
    """Feed ``g`` into any engine with add_node/add_edge (connected order)."""
    for node in g.nodes():
        engine.add_node(node, g.label(node))
    return [
        engine.add_edge(u, v, g.edge_label(u, v)) for u, v in connected_order(g)
    ]


def brute_force_isomorphic(a: Graph, b: Graph) -> bool:
    """Graph isomorphism by trying every node permutation (tiny graphs only)."""
    na, nb = list(a.nodes()), list(b.nodes())
    if len(na) != len(nb) or a.num_edges != b.num_edges:
        return False
    for perm in itertools.permutations(nb):
        mapping = dict(zip(na, perm))
        if any(a.label(n) != b.label(mapping[n]) for n in na):
            continue
        if all(
            b.has_edge(mapping[u], mapping[v])
            and a.edge_label(u, v) == b.edge_label(mapping[u], mapping[v])
            for u, v in a.edges()
        ):
            return True
    return False


def brute_force_embeddings(pattern: Graph, target: Graph) -> int:
    """Count injective label/edge-preserving maps by brute force."""
    p_nodes = list(pattern.nodes())
    t_nodes = list(target.nodes())
    count = 0
    for image in itertools.permutations(t_nodes, len(p_nodes)):
        mapping = dict(zip(p_nodes, image))
        if any(pattern.label(n) != target.label(mapping[n]) for n in p_nodes):
            continue
        ok = True
        for u, v in pattern.edges():
            if not target.has_edge(mapping[u], mapping[v]) or (
                pattern.edge_label(u, v)
                != target.edge_label(mapping[u], mapping[v])
            ):
                ok = False
                break
        if ok:
            count += 1
    return count


def all_connected_edge_subsets(
    g: Graph, max_edges: Optional[int] = None
) -> Set[FrozenSet[EdgeKey]]:
    """Every connected edge subset of ``g`` (up to ``max_edges`` edges)."""
    edges = list(g.edges())
    limit = max_edges if max_edges is not None else len(edges)
    results: Set[FrozenSet[EdgeKey]] = set()
    frontier: Set[FrozenSet[EdgeKey]] = {frozenset([e]) for e in edges}
    while frontier:
        results |= frontier
        grown: Set[FrozenSet[EdgeKey]] = set()
        for subset in frontier:
            if len(subset) >= limit:
                continue
            nodes: Set[NodeId] = set()
            for e in subset:
                nodes.update(e)
            for e in edges:
                if e not in subset and (e[0] in nodes or e[1] in nodes):
                    grown.add(subset | {e})
        frontier = grown - results
    return results


def brute_force_mccs(q: Graph, g: Graph) -> int:
    """``|mccs(g, q)|`` by exhaustive subset enumeration + brute embedding."""
    from repro.graph.isomorphism import is_subgraph_isomorphic

    best = 0
    for subset in all_connected_edge_subsets(q):
        if len(subset) <= best:
            continue
        if is_subgraph_isomorphic(q.edge_subgraph(subset), g):
            best = len(subset)
    return best


def sample_subgraph(rng: random.Random, db: GraphDatabase, lo: int, hi: int) -> Graph:
    """A random connected subgraph with lo..hi edges from a random data graph.

    Clamps the size to the chosen graph and retries, so it always succeeds.
    """
    from repro.graph.generators import random_connected_subgraph

    while True:
        base = db[rng.randrange(len(db))]
        k = rng.randint(lo, hi)
        if base.num_edges < lo:
            continue
        sub = random_connected_subgraph(rng, base, min(k, base.num_edges))
        if sub is not None:
            return sub


def small_database(
    seed: int = 0,
    num_graphs: int = 30,
    labels: str = "ABC",
    min_nodes: int = 3,
    max_nodes: int = 7,
) -> GraphDatabase:
    """A reproducible small random database for unit tests."""
    from repro.graph.generators import random_connected_graph

    rng = random.Random(seed)
    return GraphDatabase(
        random_connected_graph(
            rng,
            rng.randint(min_nodes, max_nodes),
            rng.randint(min_nodes - 1, max_nodes + 2),
            labels,
        )
        for _ in range(num_graphs)
    )


def graph_from_spec(
    labels: Dict[NodeId, str], edges: Iterable[Tuple[NodeId, NodeId]]
) -> Graph:
    """Terse literal graphs for tests: ``graph_from_spec({0:'C',1:'O'}, [(0,1)])``."""
    g = Graph()
    for node, label in labels.items():
        g.add_node(node, label)
    for u, v in edges:
        g.add_edge(u, v)
    return g
