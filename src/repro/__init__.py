"""PRAGUE — blending practical visual subgraph query formulation and processing.

A from-scratch reproduction of *"PRAGUE: Towards Blending Practical Visual
Subgraph Query Formulation and Query Processing"* (Jin, Bhowmick, Choi, Zhou —
ICDE 2012): the SPIG data structure, the action-aware indexes of GBLENDER,
the blended query engine with exact/similarity/modification support, the
headless visual interface, the comparator systems (GBLENDER, Grafil, SIGMA,
DistVP) and the full evaluation harness.

Quickstart::

    from repro import (GraphDatabase, MiningParams, PragueEngine,
                       build_indexes, generate_aids_like)

    db = generate_aids_like(200)
    indexes = build_indexes(db, MiningParams(min_support=0.1))
    engine = PragueEngine(db, indexes, sigma=2)
    a = engine.add_node("a", "C"); b = engine.add_node("b", "O")
    engine.add_edge(a, b)             # processed while you "draw"
    report = engine.run()             # only leftover work remains
    print(report.results.exact_ids)
"""

from repro.config import DEFAULT_SUBGRAPH_DISTANCE, MiningParams
from repro.core import (
    Action,
    PragueEngine,
    QueryResults,
    QuerySpec,
    QueryStatus,
    RunReport,
    SessionTrace,
    SimilarityMatch,
    StepReport,
    formulate,
)
from repro.graph import (
    Graph,
    GraphDatabase,
    are_isomorphic,
    canonical_code,
    is_subgraph_isomorphic,
    mccs_size,
    subgraph_distance,
    subgraph_similarity_degree,
)
from repro.datasets import generate_aids_like, generate_graphgen_like
from repro.gui import SimulatedUser, VisualInterface
from repro.index import ActionAwareIndexes, build_indexes
from repro.query_graph import VisualQuery
from repro.spig import SPIG, SpigManager, SpigVertex

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph substrate
    "Graph",
    "GraphDatabase",
    "canonical_code",
    "are_isomorphic",
    "is_subgraph_isomorphic",
    "mccs_size",
    "subgraph_distance",
    "subgraph_similarity_degree",
    # configuration + indexes
    "MiningParams",
    "DEFAULT_SUBGRAPH_DISTANCE",
    "ActionAwareIndexes",
    "build_indexes",
    # the core system
    "VisualQuery",
    "SPIG",
    "SpigVertex",
    "SpigManager",
    "PragueEngine",
    "Action",
    "QueryStatus",
    "StepReport",
    "RunReport",
    "QueryResults",
    "SimilarityMatch",
    "QuerySpec",
    "SessionTrace",
    "formulate",
    # GUI + datasets
    "VisualInterface",
    "SimulatedUser",
    "generate_aids_like",
    "generate_graphgen_like",
]
