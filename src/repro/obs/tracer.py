"""Hierarchical spans with monotonic timings — the tracing half of ``repro.obs``.

A *span* is one named, timed region of work.  Spans nest: the span opened
while another is active becomes its child, so a traced formulation session
yields a tree — ``session`` at the root, one ``action.*`` span per GUI
gesture, and inside each action the work it triggered (``spig.construct``,
``candidates.exact``, ``verify.scan``, …).  Timings come from
``time.perf_counter`` (monotonic), never from wall-clock dates.

The module-level :data:`TRACER` is process-wide and **off by default**: when
disabled, :func:`span` returns a shared no-op context manager and the only
cost at an instrumentation site is one attribute load and a branch (the
bound is enforced by ``benchmarks/bench_obs_overhead.py``).  ``REPRO_TRACE=1``
enables it (see :func:`repro.config.trace_enabled`); the engine calls
:func:`sync_env` once per GUI action, so the knob is live.  For programmatic
use — tests, the ``python -m repro trace`` CLI — :func:`trace` force-enables
tracing for a block regardless of the environment:

>>> from repro.obs import span, trace
>>> with trace() as tracer:
...     with span("outer", kind="demo"):
...         with span("inner"):
...             pass
>>> [s.name for s in tracer.roots]
['outer']
>>> [child.name for child in tracer.roots[0].children]
['inner']
>>> tracer.roots[0].attrs
{'kind': 'demo'}

The tracer is per-process and not thread-safe (the engine is single-threaded;
verification workers are separate *processes* and do not trace).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.config import trace_enabled
from repro.obs.exporter import EXPORTER as _EXPORTER
from repro.obs.profiler import PROFILER as _PROFILER
from repro.obs.recorder import RECORDER as _RECORDER
from repro.obs.requests import current_request_id as _current_request_id


class Span:
    """One completed (or still-open) timed region."""

    __slots__ = ("name", "attrs", "start_s", "end_s", "children")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration_seconds(self) -> float:
        """Elapsed time; for a still-open span, elapsed so far."""
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first (self, depth) pairs — the rendering order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (seconds, attrs, recursive children)."""
        return {
            "name": self.name,
            "seconds": self.duration_seconds,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {1000 * self.duration_seconds:.2f} ms)"


class _SpanHandle:
    """Context manager for one live span (returned by :func:`span`)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span: Optional[Span] = None
        # Created eagerly so ``span(...)`` without ``with`` still times from
        # the call site; __enter__ only registers it in the tree.
        self.span = Span(name, attrs)

    def __enter__(self) -> "_SpanHandle":
        self._tracer._open(self.span)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self.span)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes on this span (usable after exit)."""
        self.span.attrs.update(attrs)


class _NoopHandle:
    """The shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopHandle()


class Tracer:
    """Process-wide span collector.

    ``enabled`` is a plain bool so hot paths pay one attribute load to skip
    instrumentation.  It follows ``REPRO_TRACE`` (via :func:`sync_env`)
    unless an override is installed by :meth:`force` / :func:`trace`.
    """

    #: Upper bound on retained root spans — a leak guard for long-lived
    #: processes that trace many sessions without draining.
    MAX_ROOTS = 4096

    def __init__(self) -> None:
        self.enabled: bool = trace_enabled()
        self._override: Optional[bool] = None
        self._stack: List[Span] = []
        self.roots: List[Span] = []

    # ------------------------------------------------------------------
    # switching
    # ------------------------------------------------------------------
    def sync_env(self) -> bool:
        """Refresh ``enabled`` from ``REPRO_TRACE`` (unless overridden)."""
        if self._override is None:
            self.enabled = trace_enabled()
        return self.enabled

    def force(self, enabled: Optional[bool]) -> None:
        """Install (or with ``None`` remove) an override of the env knob."""
        self._override = enabled
        self.enabled = trace_enabled() if enabled is None else enabled

    def reset(self) -> None:
        """Drop all collected spans (including any left open)."""
        self._stack.clear()
        self.roots.clear()

    def unwind(self, depth: int) -> None:
        """Close and pop every open span above ``depth`` (exception cleanup).

        When a traced block raises past a span that was entered but never
        exited (a hand-entered handle, an abandoned generator), the open
        span would otherwise survive on the stack and silently reparent all
        later spans.  :func:`trace` calls this on the way out so the stack
        is always restored to its entry depth.
        """
        now = time.perf_counter()
        while len(self._stack) > depth:
            abandoned = self._stack.pop()
            if abandoned.end_s is None:
                abandoned.end_s = now

    # ------------------------------------------------------------------
    # span lifecycle (called by _SpanHandle)
    # ------------------------------------------------------------------
    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            # Root spans carry the HTTP correlation id (children inherit by
            # tree position); ``/v1/requests/<id>`` selects roots by it.
            request_id = _current_request_id()
            if request_id is not None:
                span.attrs.setdefault("request_id", request_id)
            self.roots.append(span)
            if len(self.roots) > self.MAX_ROOTS:
                del self.roots[: len(self.roots) - self.MAX_ROOTS]
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        # Tolerate out-of-order closes (e.g. a generator finalised late):
        # pop up to and including this span if present, else ignore.
        if any(entry is span for entry in self._stack):
            while self._stack:
                if self._stack.pop() is span:
                    break

    def _iter_all(self) -> Iterator[Tuple[Span, int]]:
        for root in self.roots:
            yield from root.walk()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span_count(self) -> int:
        """Total number of recorded spans across all root trees."""
        return sum(1 for _ in self._iter_all())


#: The process-wide tracer every instrumentation site consults.
TRACER = Tracer()


def span(name: str, **attrs: Any):
    """Open a traced region: ``with span("spig.construct", edge=3): ...``.

    When tracing is disabled this returns a shared no-op handle — the call
    itself is the entire overhead.
    """
    if not TRACER.enabled:
        return _NOOP
    return _SpanHandle(TRACER, name, attrs)


def add_attrs(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op when disabled)."""
    if not TRACER.enabled:
        return
    current = TRACER.current()
    if current is not None:
        current.attrs.update(attrs)


def sync_env() -> bool:
    """Refresh the observability switches from the environment.

    Called at engine action entry: re-reads ``REPRO_TRACE`` for the tracer,
    ``REPRO_RECORDER``/``REPRO_RECORDER_SIZE`` for the flight recorder,
    ``REPRO_OBS_EXPORT``/``REPRO_OBS_EXPORT_INTERVAL`` for the continuous
    exporter and ``REPRO_PROFILE_HZ``/``REPRO_PROFILE_MEM`` for the
    statistical sampler, so flipping any knob mid-process takes effect at
    the next action.  All four cache the raw environment strings, so the
    per-action cost with everything at its default is a handful of
    ``environ`` probes (bounded by ``benchmarks/bench_obs_overhead.py``).
    Returns the tracer's enabled state (the historical contract).
    """
    _RECORDER.sync_env()
    _PROFILER.sync_env()
    if _EXPORTER.sync_env():
        _EXPORTER.tick()
    return TRACER.sync_env()


@contextmanager
def trace(reset: bool = True):
    """Force-enable tracing for a block and yield the tracer.

    Exception-safe: if the block raises, the tracer's prior enabled/override
    state is restored and any span left open inside the block is closed and
    popped (``Tracer.unwind``), so a failing traced block can never corrupt
    the next one.  With ``reset=True`` (the default) the span forest, the
    metrics registry and the latency histograms all start empty.

    >>> from repro.obs import span, trace
    >>> with trace() as tracer:
    ...     with span("step"):
    ...         pass
    >>> tracer.span_count()
    1
    """
    from repro.obs.histogram import reset_histograms
    from repro.obs.metrics import METRICS

    previous = TRACER._override
    if reset:
        TRACER.reset()
        METRICS.reset()
        reset_histograms()
    depth = len(TRACER._stack)
    TRACER.force(True)
    try:
        yield TRACER
    finally:
        TRACER.force(previous)
        TRACER.unwind(depth)
