"""Continuous telemetry export — stream a session instead of autopsying it.

Spans, histograms and the flight recorder all answer questions *after* the
fact; a long-running session serving real traffic needs to be watchable
*while it runs*.  When ``REPRO_OBS_EXPORT`` names a directory, the exporter
keeps three files there live:

* ``events.jsonl`` — every flight-recorder event, appended the moment it is
  recorded (one schema-v2 ``obs-event`` envelope per line).  Worker events
  merged back from the verification pool stream too, ``src``-labelled;
* ``metrics.prom`` — the full metrics snapshot (counters, gauges, latency
  histograms) in Prometheus text exposition format, rewritten at most once
  per ``REPRO_OBS_EXPORT_INTERVAL`` seconds;
* ``snapshot.json`` — the same snapshot as a schema-v2 ``metrics-snapshot``
  envelope with pid/timestamp/sequence metadata, the machine-readable twin
  ``python -m repro top`` tails.

Both metric files are written atomically (temp file + ``os.replace``) so a
tailing reader never sees a half-written snapshot.

The exporter re-reads its environment through :meth:`ContinuousExporter.
sync_env`, which — like the flight recorder's capacity knob — caches the
*raw* environment strings and only re-parses on change: ``sync_env`` runs at
every GUI action, and the default (export off) posture must stay within the
obs-overhead budget (``benchmarks/bench_obs_overhead.py`` measures the
export-on posture too).

Verification-pool workers inherit the parent's exporter state on fork;
:func:`repro.obs.snapshot.begin_worker_capture` calls :meth:`suspend` so a
worker never appends to the parent's files — its events arrive in the
stream only via the parent-side merge, timestamp-interleaved and labelled.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, TextIO

from repro.config import obs_export_dir, obs_export_interval


class ContinuousExporter:
    """Process-wide streaming exporter (single-threaded, like the tracer)."""

    def __init__(self) -> None:
        self._dir_raw: Optional[str] = os.environ.get("REPRO_OBS_EXPORT")
        self._interval_raw: Optional[str] = os.environ.get(
            "REPRO_OBS_EXPORT_INTERVAL"
        )
        self._directory: Optional[Path] = None
        self._interval: float = obs_export_interval()
        self._events_file: Optional[TextIO] = None
        self._last_write: float = 0.0
        self._suspended: bool = False  # set in pool workers, never cleared
        #: Lifetime accounting, reported in every snapshot.json.
        self.events_emitted: int = 0
        self.snapshots_written: int = 0
        self.active: bool = False
        self._configure(self._dir_raw)

    # ------------------------------------------------------------------
    # switching
    # ------------------------------------------------------------------
    def sync_env(self) -> bool:
        """Refresh the export target from the environment (per action).

        Raw-string cached: the common case (knob unchanged, usually unset)
        costs one ``environ`` probe and one comparison — no parsing, no
        path handling.  Only an actual change pays :meth:`_configure`.  The
        interval knob is probed only while exporting (or on reconfigure):
        with export off it cannot matter, and ``sync_env`` runs on every
        GUI action, so the off posture must stay within the obs-overhead
        per-call budget.
        """
        raw = os.environ.get("REPRO_OBS_EXPORT")
        if raw != self._dir_raw:
            self._dir_raw = raw
            self._configure(raw)
            self._interval_raw = os.environ.get("REPRO_OBS_EXPORT_INTERVAL")
            self._interval = obs_export_interval()
        elif self.active:
            interval_raw = os.environ.get("REPRO_OBS_EXPORT_INTERVAL")
            if interval_raw != self._interval_raw:
                self._interval_raw = interval_raw
                self._interval = obs_export_interval()
        return self.active

    def _configure(self, raw: Optional[str]) -> None:
        if self._events_file is not None:
            try:
                self._events_file.close()
            except OSError:  # pragma: no cover - close failures are benign
                pass
            self._events_file = None
        value = (raw or "").strip()
        if not value or self._suspended:
            self._directory = None
            self.active = False
            return
        self._directory = Path(value)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.active = True
        self._last_write = 0.0  # first tick writes immediately

    def suspend(self) -> None:
        """Permanently deactivate in this process (called in pool workers).

        A forked worker shares the parent's open JSONL handle; writing from
        both would interleave garbage.  Worker telemetry instead rides the
        delta merge (:mod:`repro.obs.snapshot`) back into the parent's
        stream.
        """
        self._suspended = True
        self._directory = None
        self.active = False
        self._events_file = None  # never close: the fd belongs to the parent

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def emit(self, event: Dict[str, Any]) -> None:
        """Append one event to ``events.jsonl`` (no-op while inactive).

        Each line is a flat schema-v2 ``obs-event`` envelope around the
        flight-recorder event dict.  The file is line-buffered so a tailing
        ``repro top`` sees events promptly without per-event ``fsync`` cost.
        """
        if not self.active:
            return
        if self._events_file is None:
            self._events_file = open(
                self._directory / "events.jsonl", "a",
                buffering=1, encoding="utf-8",
            )
        from repro.obs.export import envelope

        payload = dict(event)
        # The recorder's event kind would clobber the envelope's artifact
        # kind — it rides as "event" instead.
        payload["event"] = payload.pop("kind", "?")
        line = json.dumps(
            envelope("obs-event", payload), separators=(",", ":"), default=str
        )
        try:
            self._events_file.write(line + "\n")
        except (OSError, ValueError):  # target vanished mid-session: drop
            self.active = False
            return
        self.events_emitted += 1

    def tick(self, force: bool = False) -> Optional[Path]:
        """Rewrite ``metrics.prom`` + ``snapshot.json`` if the interval is up.

        Called after every completed engine action (and from ``sync_env``'s
        caller once per action start); the interval knob bounds the file I/O
        no matter how chatty the session is.  Returns the snapshot path when
        a write happened.
        """
        if not self.active:
            return None
        now = time.monotonic()
        if not force and self._last_write and \
                now - self._last_write < self._interval:
            return None
        self._last_write = now
        from repro.obs.export import envelope, render_prometheus
        from repro.obs.metrics import full_snapshot

        snapshot = full_snapshot()
        payload = envelope("metrics-snapshot", {
            "written_at": time.time(),
            "pid": os.getpid(),
            "sequence": self.snapshots_written + 1,
            "events_emitted": self.events_emitted,
            "metrics": snapshot,
        })
        try:
            self._atomic_write(
                "metrics.prom", render_prometheus(snapshot) + "\n"
            )
            path = self._atomic_write(
                "snapshot.json",
                json.dumps(payload, indent=2, default=str) + "\n",
            )
        except OSError:  # export target vanished: deactivate quietly
            self.active = False
            return None
        self.snapshots_written += 1
        self._write_profiles()
        return path

    def _write_profiles(self) -> None:
        """Refresh the ``profiles/`` section when the sampler has samples.

        Two files, same atomicity contract as the metrics pair:
        ``profiles/profile.folded`` (collapsed stacks, flamegraph.pl input)
        and ``profiles/profile.json`` (the full attributed profile with its
        summary).  Skipped entirely — no directory created — while the
        sampler is off or empty.
        """
        from repro.obs.profiler import PROFILER, folded_lines, profile_summary

        if not PROFILER.enabled or not PROFILER.samples:
            return
        try:
            (self._directory / "profiles").mkdir(exist_ok=True)
            profile = PROFILER.collect()
            self._atomic_write(
                "profiles/profile.folded",
                "\n".join(folded_lines(PROFILER.stacks())) + "\n",
            )
            from repro.obs.export import envelope

            self._atomic_write(
                "profiles/profile.json",
                json.dumps(envelope("profile", {
                    "profile": profile,
                    "summary": profile_summary(profile),
                }), indent=2, default=str) + "\n",
            )
        except OSError:  # pragma: no cover - same contract as tick()
            pass

    def _atomic_write(self, name: str, text: str) -> Path:
        path = self._directory / name
        tmp = path.with_name(f".{path.name}.tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        return path


#: The process-wide exporter; inert until ``REPRO_OBS_EXPORT`` is set.
EXPORTER = ContinuousExporter()
