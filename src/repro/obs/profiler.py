"""The continuous profiling plane: a statistical wall-clock sampler.

Histograms (:mod:`repro.obs.metrics`) say *how slow* an action was; this
module says *why* — which frames the process was actually executing while
the action ran.  A daemon thread polls ``sys._current_frames()`` at
``REPRO_PROFILE_HZ`` (default off; ~50 Hz is the recommended always-on
rate) and folds every thread's stack into a collapsed-stack profile:
``"pkg/mod.py:outer;pkg/mod.py:inner" -> sample count``, the format
flamegraph tooling has standardized on.

Sampling is *attributed*: :func:`profile_action` marks the dynamic extent
of one engine action on one thread, and captures the active request id
(:mod:`repro.obs.requests`) at entry — so every sample lands in a
``(request_id, action)`` slice and a profile can be cut per
``/v1/sessions/<id>/actions`` call.  Verification workers run their own
sampler (seeded through the :mod:`repro.obs.snapshot` worker-delta
protocol) and their samples merge home tagged with the worker's name, so
pooled VF2 chunks appear in the parent's profile under the same request id.

The memory tier is opt-in (``REPRO_PROFILE_MEM=N``): actions and
arena/index builds are bracketed with ``tracemalloc`` snapshots and the
top-N allocating lines (by size delta) are kept per site.

Everything here is pure stdlib.  The off-path cost is one attribute check
per action (:data:`_NOOP` is shared), bounded like every other obs surface
by ``benchmarks/bench_obs_overhead.py``.

>>> PROFILER.force(200.0)         # doctest: +SKIP
>>> with profile_action("new"):   # doctest: +SKIP
...     hot_loop()
>>> PROFILER.force(None)          # doctest: +SKIP
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.config import profile_depth, profile_hz, profile_mem_topn
from repro.obs import requests as _requests

#: Slice key for samples taken outside any action/request scope.
_UNSCOPED: Tuple[str, str] = ("", "")


def _frame_label(code: Any) -> str:
    """``pkg-relative-path:function`` for one code object.

    Paths are trimmed to start at the ``repro/`` package when possible so
    collapsed stacks are stable across checkouts and virtualenvs.
    """
    filename = code.co_filename.replace("\\", "/")
    marker = filename.rfind("/repro/")
    if marker >= 0:
        short = filename[marker + 1:]
    else:
        short = filename.rsplit("/", 1)[-1]
    return f"{short}:{code.co_name}"


class Profiler:
    """Process-wide statistical sampler (one per process, like the tracer).

    Thread model: the sampler thread reads ``sys._current_frames()`` and
    mutates the slice dictionaries under ``_lock``; action scopes mutate the
    per-thread scope map under the same lock; renderers and ``collect`` copy
    under it.  All sampling state lives here — there is no per-frame
    bookkeeping on the threads being profiled.
    """

    def __init__(self) -> None:
        self._hz_raw = os.environ.get("REPRO_PROFILE_HZ")
        self._mem_raw = os.environ.get("REPRO_PROFILE_MEM")
        self._override: Optional[float] = None
        self._mem_override: Optional[int] = None
        self._lock = threading.Lock()
        #: thread id -> (request_id or "", action name) for the sampler.
        self._scopes: Dict[int, Tuple[str, str]] = {}
        #: (request_id or "", action or "") -> {folded stack: sample count}.
        self._slices: Dict[Tuple[str, str], Dict[str, int]] = {}
        self._label_cache: Dict[int, str] = {}
        #: Memory tier: site name -> last tracemalloc bracket result.
        self._mem_sites: Dict[str, Dict[str, Any]] = {}
        self.samples: int = 0
        self.hz: float = 0.0
        self.enabled: bool = False
        self.mem_topn: int = 0
        self.depth: int = profile_depth()
        self._generation = 0
        self._thread: Optional[threading.Thread] = None
        self._thread_id: Optional[int] = None
        self._started_tracemalloc = False
        self._apply(profile_hz())
        self._apply_mem(profile_mem_topn())

    # ------------------------------------------------------------------
    # switching (mirrors Tracer/FlightRecorder: env knob + override)
    # ------------------------------------------------------------------
    def sync_env(self) -> bool:
        """Refresh the sampler rate from the environment (called per action).

        Raw-string caching keeps the off-path at one ``environ`` probe and a
        compare — ``float()`` in try/except per action would blow the
        ``sync_env`` budget in ``bench_obs_overhead``.
        """
        raw = os.environ.get("REPRO_PROFILE_HZ")
        if raw != self._hz_raw:
            self._hz_raw = raw
            if self._override is None:
                self._apply(profile_hz())
        mem_raw = os.environ.get("REPRO_PROFILE_MEM")
        if mem_raw != self._mem_raw:
            self._mem_raw = mem_raw
            if self._mem_override is None:
                self._apply_mem(profile_mem_topn())
        return self.enabled

    def force(self, hz: Optional[float]) -> None:
        """Install (or with ``None`` remove) a rate override of the env knob."""
        self._override = hz
        self._apply(profile_hz() if hz is None else float(hz))

    def force_mem(self, topn: Optional[int]) -> None:
        """Install (or with ``None`` remove) a memory-tier top-N override."""
        self._mem_override = topn
        self._apply_mem(profile_mem_topn() if topn is None else int(topn))

    def _apply(self, hz: float) -> None:
        hz = min(max(float(hz), 0.0), 1000.0)
        self.hz = hz
        self.enabled = hz > 0.0
        if self.enabled:
            self.depth = profile_depth()
            if self._thread is None or not self._thread.is_alive():
                self._generation += 1
                generation = self._generation
                thread = threading.Thread(
                    target=self._run, args=(generation,),
                    name="repro-profiler", daemon=True,
                )
                self._thread = thread
                thread.start()
        else:
            # The loop observes the generation bump at its next wake-up and
            # exits; no join — it is a daemon and holds no resources.
            self._generation += 1
            self._thread = None
            self._thread_id = None

    def _apply_mem(self, topn: int) -> None:
        self.mem_topn = max(int(topn), 0)

    # ------------------------------------------------------------------
    # the sampling loop
    # ------------------------------------------------------------------
    def _run(self, generation: int) -> None:
        self._thread_id = threading.get_ident()
        while self._generation == generation and self.hz > 0.0:
            time.sleep(1.0 / self.hz)
            if self._generation != generation:
                break
            try:
                self._sample_once()
            except Exception:  # pragma: no cover - must never kill sampling
                pass

    def _sample_once(self) -> None:
        frames = sys._current_frames()
        own = self._thread_id
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == own:
                    continue
                folded = self._fold(frame)
                if not folded:
                    continue
                key = self._scopes.get(thread_id, _UNSCOPED)
                bucket = self._slices.get(key)
                if bucket is None:
                    bucket = self._slices[key] = {}
                bucket[folded] = bucket.get(folded, 0) + 1
                self.samples += 1

    def _fold(self, frame: Any) -> str:
        """One thread's stack as ``root;...;leaf``, depth-bounded at the root."""
        labels: List[str] = []
        cache = self._label_cache
        while frame is not None:
            code = frame.f_code
            label = cache.get(id(code))
            if label is None:
                label = _frame_label(code)
                cache[id(code)] = label
            labels.append(label)
            frame = frame.f_back
        if len(labels) > self.depth:
            del labels[self.depth:]  # trim root-end frames, keep the leaves
        labels.reverse()
        return ";".join(labels)

    # ------------------------------------------------------------------
    # attribution scopes
    # ------------------------------------------------------------------
    def set_scope(self, request_id: Optional[str],
                  action: Optional[str]) -> None:
        """Unconditionally scope the *current thread*'s future samples.

        Worker processes use this (via
        :func:`repro.obs.snapshot.begin_worker_capture`) where there is no
        enclosing action to restore; handler threads should prefer
        :func:`profile_action`.
        """
        with self._lock:
            self._scopes[threading.get_ident()] = (
                request_id or "", action or "",
            )

    def enter_action(self, name: str) -> Optional[Tuple[str, str]]:
        tid = threading.get_ident()
        with self._lock:
            previous = self._scopes.get(tid)
            self._scopes[tid] = (
                _requests.current_request_id() or "", name,
            )
        return previous

    def exit_action(self, previous: Optional[Tuple[str, str]]) -> None:
        tid = threading.get_ident()
        with self._lock:
            if previous is None:
                self._scopes.pop(tid, None)
            else:
                self._scopes[tid] = previous

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def mem_bracket_start(self) -> Optional[Any]:
        """Take the opening tracemalloc snapshot (``None`` when off)."""
        if not self.mem_topn:
            return None
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        return tracemalloc.take_snapshot()

    def mem_bracket_end(self, site: str, before: Optional[Any]) -> None:
        """Close a bracket: keep the top-N allocating lines for ``site``."""
        if before is None or not self.mem_topn:
            return
        import tracemalloc

        if not tracemalloc.is_tracing():  # turned off mid-bracket
            return
        after = tracemalloc.take_snapshot()
        current, peak = tracemalloc.get_traced_memory()
        top = []
        for stat in after.compare_to(before, "lineno")[:self.mem_topn]:
            top.append({
                "site": str(stat.traceback),
                "size_diff_bytes": stat.size_diff,
                "count_diff": stat.count_diff,
            })
        with self._lock:
            self._mem_sites[site] = {
                "top": top,
                "traced_bytes": current,
                "peak_bytes": peak,
            }

    def tracemalloc_peak_bytes(self) -> int:
        """Peak traced allocation since tracing started (0 when not tracing)."""
        import tracemalloc

        if not tracemalloc.is_tracing():
            return 0
        return tracemalloc.get_traced_memory()[1]

    # ------------------------------------------------------------------
    # snapshots, worker deltas, reset
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, Any]:
        """The accumulated profile as one JSON-able (and picklable) dict."""
        with self._lock:
            slices = [
                {
                    "request_id": request_id or None,
                    "action": action or None,
                    "stacks": dict(stacks),
                }
                for (request_id, action), stacks in self._slices.items()
            ]
            return {
                "hz": self.hz,
                "samples": self.samples,
                "slices": slices,
                "memory": {k: dict(v) for k, v in self._mem_sites.items()},
            }

    def merge(self, profile: Optional[Dict[str, Any]],
              source: Optional[str] = None) -> None:
        """Fold another process's :meth:`collect` output into this profile.

        Worker frames are prefixed with ``worker:<source>;`` so a flamegraph
        shows pool work as its own subtree while the slice keys (request id,
        action) still line up with the parent's — merged chunk samples land
        in the same request-scoped slice the action ran under.
        """
        if not profile:
            return
        prefix = f"worker:{source};" if source else ""
        with self._lock:
            for entry in profile.get("slices", ()):
                key = (
                    entry.get("request_id") or "",
                    entry.get("action") or "",
                )
                bucket = self._slices.get(key)
                if bucket is None:
                    bucket = self._slices[key] = {}
                for folded, count in entry.get("stacks", {}).items():
                    folded = prefix + folded
                    bucket[folded] = bucket.get(folded, 0) + int(count)
                    self.samples += int(count)
            for site, stats in profile.get("memory", {}).items():
                name = f"{site}.{source}" if source else site
                self._mem_sites[name] = dict(stats)

    def slice_for_request(self, request_id: str) -> Dict[str, int]:
        """All samples attributed to one request id, merged across actions."""
        merged: Dict[str, int] = {}
        with self._lock:
            for (rid, _action), stacks in self._slices.items():
                if rid != request_id:
                    continue
                for folded, count in stacks.items():
                    merged[folded] = merged.get(folded, 0) + count
        return merged

    def stacks(self) -> Dict[str, int]:
        """Every sample regardless of attribution, as one folded mapping."""
        merged: Dict[str, int] = {}
        with self._lock:
            for stacks in self._slices.values():
                for folded, count in stacks.items():
                    merged[folded] = merged.get(folded, 0) + count
        return merged

    def reset(self) -> None:
        """Drop all samples and scopes (test/bench/worker isolation)."""
        with self._lock:
            self._slices.clear()
            self._scopes.clear()
            self._mem_sites.clear()
            self.samples = 0


#: The process-wide profiler (sampling off until REPRO_PROFILE_HZ/force).
PROFILER = Profiler()


class _ActionScope:
    """Context manager scoping one engine action for the sampler."""

    __slots__ = ("_name", "_previous", "_mem_before")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> "_ActionScope":
        self._previous = (
            PROFILER.enter_action(self._name) if PROFILER.enabled else None
        )
        self._mem_before = PROFILER.mem_bracket_start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if PROFILER.enabled:
            PROFILER.exit_action(self._previous)
        PROFILER.mem_bracket_end(f"action.{self._name}", self._mem_before)


class _NoopScope:
    """Shared do-nothing scope for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopScope":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NOOP = _NoopScope()


def profile_action(name: str) -> Any:
    """Scope an engine action for sample attribution and memory brackets.

    Composes with the tracer's span on one line::

        with profile_action("new"), span("action.new") as sp:
            ...

    Costs two attribute loads and a branch when the profiling plane is
    entirely off.
    """
    if not PROFILER.enabled and not PROFILER.mem_topn:
        return _NOOP
    return _ActionScope(name)


def profile_block(site: str) -> Any:
    """Memory-bracket (and sample-scope) a non-action hot block.

    Used around arena and index builds: with the memory tier on, the top-N
    allocating lines of the build land in the profile keyed by ``site``.
    """
    if not PROFILER.enabled and not PROFILER.mem_topn:
        return _NOOP
    return _ActionScope(site)


# ----------------------------------------------------------------------
# rendering: collapsed stacks, top frames, flamegraph HTML
# ----------------------------------------------------------------------
def folded_lines(stacks: Dict[str, int]) -> List[str]:
    """``stack count`` lines, busiest stack first — flamegraph.pl input."""
    ordered = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
    return [f"{folded} {count}" for folded, count in ordered]


def top_frames(stacks: Dict[str, int], n: int = 10) -> List[Tuple[str, int]]:
    """The ``n`` hottest frames by *self* samples (leaf-frame attribution)."""
    self_counts: Dict[str, int] = {}
    for folded, count in stacks.items():
        leaf = folded.rsplit(";", 1)[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
    ordered = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ordered[:max(int(n), 0)]


def _escape_html(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _build_trie(stacks: Dict[str, int]) -> Dict[str, Any]:
    """Fold collapsed stacks into a nested ``{name, value, children}`` trie."""
    root: Dict[str, Any] = {"name": "all", "value": 0, "children": {}}
    for folded, count in stacks.items():
        root["value"] += count
        node = root
        for label in folded.split(";"):
            child = node["children"].get(label)
            if child is None:
                child = {"name": label, "value": 0, "children": {}}
                node["children"][label] = child
            child["value"] += count
            node = child
    return root


_FLAME_PALETTE = ("#e66", "#e96", "#ec6", "#d86", "#e77", "#da6")


def _render_node(node: Dict[str, Any], total: int, depth: int) -> str:
    width_pct = 100.0 * node["value"] / total
    if width_pct < 0.1:  # sub-pixel at any reasonable window width
        return ""
    color = _FLAME_PALETTE[depth % len(_FLAME_PALETTE)]
    label = _escape_html(node["name"])
    pct = f"{width_pct:.1f}"
    children = "".join(
        _render_node(child, node["value"] or 1, depth + 1)
        for child in sorted(
            node["children"].values(), key=lambda c: -c["value"]
        )
    )
    return (
        f'<div class="fr" style="width:{width_pct:.3f}%" '
        f'title="{label} — {node["value"]} samples ({pct}% of parent)">'
        f'<span class="lb" style="background:{color}">{label}</span>'
        f'<div class="ch">{children}</div></div>'
    )


def render_flamegraph_html(stacks: Dict[str, int],
                           title: str = "repro profile") -> str:
    """A self-contained (zero-dependency) flamegraph as one HTML page.

    Icicle layout: root at the top, callees nested below, box width
    proportional to sample share.  Pure HTML/CSS — no scripts to vendor, so
    the artifact is safe to attach to CI runs and open anywhere.
    """
    total = sum(stacks.values())
    if total <= 0:
        body = "<p>(no samples recorded)</p>"
    else:
        trie = _build_trie(stacks)
        children = "".join(
            _render_node(child, total, 1)
            for child in sorted(
                trie["children"].values(), key=lambda c: -c["value"]
            )
        )
        body = (
            f'<div class="fr" style="width:100%" '
            f'title="all — {total} samples">'
            f'<span class="lb" style="background:#ccc">all '
            f'({total} samples)</span>'
            f'<div class="ch">{children}</div></div>'
        )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{_escape_html(title)}</title>
<style>
body {{ font: 12px/1.4 monospace; margin: 16px; }}
.fr {{ display: inline-block; vertical-align: top; min-width: 1px;
      box-sizing: border-box; }}
.lb {{ display: block; overflow: hidden; white-space: nowrap;
      text-overflow: ellipsis; border: 1px solid #fff; padding: 1px 2px;
      box-sizing: border-box; }}
.ch {{ width: 100%; white-space: nowrap; }}
</style></head><body>
<h1>{_escape_html(title)}</h1>
{body}
</body></html>
"""


def profile_summary(profile: Dict[str, Any], top: int = 8) -> Dict[str, Any]:
    """A compact JSON summary of a :meth:`Profiler.collect` payload.

    What ``/obs`` and ``repro top`` carry: rate, totals, the hottest frames
    by self samples, and per-slice sample counts — not the full stack set.
    """
    merged: Dict[str, int] = {}
    slices = []
    for entry in profile.get("slices", ()):
        stacks = entry.get("stacks", {})
        for folded, count in stacks.items():
            merged[folded] = merged.get(folded, 0) + int(count)
        slices.append({
            "request_id": entry.get("request_id"),
            "action": entry.get("action"),
            "samples": sum(stacks.values()),
        })
    slices.sort(key=lambda s: -s["samples"])
    return {
        "hz": profile.get("hz", 0.0),
        "samples": profile.get("samples", 0),
        "top_frames": [
            {"frame": frame, "self_samples": count}
            for frame, count in top_frames(merged, top)
        ],
        "slices": slices[:top],
        "memory_sites": sorted(profile.get("memory", {})),
    }
