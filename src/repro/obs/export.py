"""Exporters: span trees, metrics and SRT ledgers as JSON or tables.

Two render targets, no dependencies:

* **JSON** — :func:`report_to_dict` bundles everything a traced session
  produced into one ``json.dump``-ready dict (what ``python -m repro trace
  --json`` writes);
* **human-readable** — :func:`render_span_tree`, :func:`render_metrics` and
  :func:`render_ledger` produce aligned monospace tables (what the CLI
  prints; ``docs/PERFORMANCE.md`` shows an annotated example).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.srt import SrtLedger
from repro.obs.tracer import Span

#: Current version of every JSON artifact ``repro.obs`` writes (trace
#: reports, post-mortem bundles, perf trajectories).  Version 1 is the
#: pre-envelope era: payloads with no ``"schema"`` key at all.
SCHEMA_VERSION = 2

#: Artifact kinds the loaders accept.  ``obs-event`` (one JSONL line of a
#: continuous export) and ``metrics-snapshot`` (the periodically rewritten
#: snapshot ``python -m repro top`` tails) joined in the cross-process
#: telemetry PR; earlier readers reject them loudly by kind, not silently.
#: ``service-response`` wraps every JSON body the session service returns
#: (:mod:`repro.service.protocol`), so clients version-check responses with
#: the same ``open_envelope`` the other artifact readers use.
#: ``profile`` is a sampled collapsed-stack profile (``python -m repro
#: profile --json`` and the exporter's ``profiles/profile.json``).
ENVELOPE_KINDS = (
    "trace-report", "postmortem", "trajectory",
    "obs-event", "metrics-snapshot", "service-response",
    "profile",
)


def envelope(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap ``payload`` in the schema-versioned envelope.

    The envelope is flat — ``{"schema": 2, "kind": ..., **payload}`` — so
    existing consumers keep indexing the payload keys directly while loaders
    gain a version to dispatch on as the formats evolve.
    """
    if kind not in ENVELOPE_KINDS:
        raise ValueError(f"unknown artifact kind {kind!r}")
    out: Dict[str, Any] = {"schema": SCHEMA_VERSION, "kind": kind}
    out.update(payload)
    return out


def open_envelope(
    data: Dict[str, Any], expect_kind: Optional[str] = None
) -> Dict[str, Any]:
    """Validate a loaded artifact and return it (round-trip of `envelope`).

    Artifacts written before versioning (no ``"schema"`` key) are accepted as
    version 1 and stamped accordingly; future major versions are rejected
    loudly rather than misread silently.
    """
    if not isinstance(data, dict):
        raise ValueError("artifact must be a JSON object")
    version = data.get("schema", 1)
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad schema version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema {version} is newer than supported "
            f"({SCHEMA_VERSION}); upgrade this checkout to read it"
        )
    out = dict(data)
    out["schema"] = version
    if expect_kind is not None:
        kind = out.get("kind")
        # Version-1 artifacts predate the kind tag; trust the caller then.
        if version >= 2 and kind != expect_kind:
            raise ValueError(
                f"expected a {expect_kind!r} artifact, got {kind!r}"
            )
        out.setdefault("kind", expect_kind)
    return out


def _fmt_ms(seconds: float) -> str:
    return f"{1000 * seconds:9.2f} ms"


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in attrs.items())


def render_span_tree(
    roots: Sequence[Span],
    min_seconds: float = 0.0,
) -> str:
    """The span forest as an indented tree with per-span durations.

    ``min_seconds`` prunes spans shorter than the threshold (their children
    are pruned with them) — useful on very chatty traces.
    """
    lines: List[str] = []
    width = 2 + max(
        (depth * 3 + len(span.name)
         for root in roots for span, depth in root.walk()),
        default=0,
    )
    for root in roots:
        _render_span(root, "", True, True, width, min_seconds, lines)
    return "\n".join(lines)


def _render_span(
    span: Span,
    prefix: str,
    is_last: bool,
    is_root: bool,
    width: int,
    min_seconds: float,
    lines: List[str],
) -> None:
    if span.duration_seconds < min_seconds:
        return
    if is_root:
        label = span.name
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        label = prefix + connector + span.name
        child_prefix = prefix + ("   " if is_last else "│  ")
    lines.append(
        f"{label:<{width}}{_fmt_ms(span.duration_seconds)}"
        f"{_fmt_attrs(span.attrs)}"
    )
    kept = [c for c in span.children if c.duration_seconds >= min_seconds]
    for i, child in enumerate(kept):
        _render_span(
            child, child_prefix, i == len(kept) - 1, False, width,
            min_seconds, lines,
        )


def render_metrics(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Counters and gauges as one aligned two-column table."""
    rows: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    names = list(sorted(counters)) + [f"{name} (gauge)" for name in sorted(gauges)]
    if not names:
        return "(no metrics recorded)"
    width = 2 + max(len(name) for name in names)
    for name in sorted(counters):
        rows.append(f"{name:<{width}}{counters[name]}")
    for name in sorted(gauges):
        rows.append(f"{name + ' (gauge)':<{width}}{gauges[name]}")
    return "\n".join(rows)


def render_histograms(summaries: Dict[str, Dict[str, Any]]) -> str:
    """Histogram summaries as one aligned table (count, percentiles, max).

    ``summaries`` is :func:`repro.obs.histogram.histogram_summaries` output
    (or the ``"histograms"`` section of a metrics snapshot).
    """
    if not summaries:
        return "(no latency observations recorded)"
    width = 2 + max(len(name) for name in summaries)
    header = (
        f"{'site':<{width}}{'count':>8}{'p50':>12}{'p90':>12}"
        f"{'p99':>12}{'max':>12}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(summaries):
        s = summaries[name]
        lines.append(
            f"{name:<{width}}{s['count']:>8}"
            f"{1000 * s['p50_s']:>9.2f} ms"
            f"{1000 * s['p90_s']:>9.2f} ms"
            f"{1000 * s['p99_s']:>9.2f} ms"
            f"{1000 * s['max_s']:>9.2f} ms"
        )
    return "\n".join(lines)


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """A metrics snapshot in Prometheus text exposition format.

    Three families carry everything: ``repro_counter{name=...}``,
    ``repro_gauge{name=...}`` and the summary-typed
    ``repro_latency_seconds{site=...,quantile=...}`` (plus the conventional
    ``_sum``/``_count`` series) for the latency histograms.  Dotted obs
    names ride in labels rather than being mangled into metric names, so
    the vocabulary documented in ``docs/PERFORMANCE.md`` survives scraping.
    """
    lines: List[str] = [
        "# HELP repro_counter repro.obs counters (dotted name in the label)",
        "# TYPE repro_counter counter",
    ]
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f'repro_counter{{name="{_prom_escape(name)}"}} {value}')
    lines += [
        "# HELP repro_gauge repro.obs gauges (dotted name in the label)",
        "# TYPE repro_gauge gauge",
    ]
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f'repro_gauge{{name="{_prom_escape(name)}"}} {value}')
    lines += [
        "# HELP repro_latency_seconds per-site latency distributions",
        "# TYPE repro_latency_seconds summary",
    ]
    for site, s in sorted(snapshot.get("histograms", {}).items()):
        label = _prom_escape(site)
        for p in (50, 90, 99):
            lines.append(
                f'repro_latency_seconds{{site="{label}",'
                f'quantile="0.{p}"}} {s[f"p{p}_s"]}'
            )
        lines.append(f'repro_latency_seconds_sum{{site="{label}"}} '
                     f'{s["sum_s"]}')
        lines.append(f'repro_latency_seconds_count{{site="{label}"}} '
                     f'{s["count"]}')
    slo = snapshot.get("slo", {})
    if slo:
        lines += [
            "# HELP repro_slo_attainment rolling-window good fraction "
            "per objective",
            "# TYPE repro_slo_attainment gauge",
        ]
        for name, state in sorted(slo.items()):
            if state.get("attainment") is not None:
                lines.append(
                    f'repro_slo_attainment{{objective="{_prom_escape(name)}"}} '
                    f'{state["attainment"]}'
                )
        lines += [
            "# HELP repro_slo_burn_rate error-budget burn rate per objective "
            "(1.0 = failing at exactly the budgeted rate)",
            "# TYPE repro_slo_burn_rate gauge",
        ]
        for name, state in sorted(slo.items()):
            if state.get("burn_rate") is not None:
                lines.append(
                    f'repro_slo_burn_rate{{objective="{_prom_escape(name)}"}} '
                    f'{state["burn_rate"]}'
                )
    return "\n".join(lines)


def _hit_rates(counters: Dict[str, Any]) -> List[str]:
    """``name: hits/total (rate)`` lines for every ``*.hit``/``*.miss`` pair
    plus the canonical-cache bridge."""
    lines: List[str] = []
    graph_hits = counters.get("canonical.graph_hits", 0)
    lru_hits = counters.get("canonical.lru_hits", 0)
    misses = counters.get("canonical.misses", 0)
    total = graph_hits + lru_hits + misses
    if total:
        lines.append(
            f"  canonical cache     {graph_hits + lru_hits}/{total} hits "
            f"({100 * (graph_hits + lru_hits) / total:.1f}%, "
            f"{lru_hits} via LRU)"
        )
    prefixes = sorted(
        name[: -len(".hit")] for name in counters if name.endswith(".hit")
    )
    for prefix in prefixes:
        hits = counters.get(f"{prefix}.hit", 0)
        total = hits + counters.get(f"{prefix}.miss", 0)
        if total:
            lines.append(
                f"  {prefix:<19} {hits}/{total} hits "
                f"({100 * hits / total:.1f}%)"
            )
    return lines


def render_top(
    bundle: Optional[Dict[str, Any]],
    events: Sequence[Dict[str, Any]] = (),
    directory: str = "",
    requests: Optional[Sequence[Dict[str, Any]]] = (),
) -> str:
    """One refresh of the ``python -m repro top`` live view.

    ``bundle`` is a loaded ``metrics-snapshot`` envelope (or ``None`` while
    the exporting session has not written one yet); ``events`` is the tail
    of ``events.jsonl``, newest last.  In ``--server`` mode the CLI builds
    the same bundle shape from a live ``/obs`` response and passes the
    server's slowest completed requests as ``requests``.

    Sections a source does not report degrade to an ``n/a`` label rather
    than a crash or silent omission: ``requests=None`` means the server did
    not return a requests section at all (as opposed to an empty one), and
    a ``metrics`` dict with no ``slo`` key marks an older exporter/server.
    """
    if bundle is None:
        target = directory or "the export directory"
        if str(target).startswith(("http://", "https://")):
            return f"repro top — waiting for {target}/obs (is the server up?)"
        return (
            f"repro top — waiting for {target}"
            f"/snapshot.json (is a session exporting?)"
        )
    metrics = bundle.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    lines = [
        f"repro top — pid {bundle.get('pid', '?')}, "
        f"snapshot #{bundle.get('sequence', '?')}, "
        f"{bundle.get('events_emitted', 0)} events streamed"
    ]
    actions = {n: s for n, s in histograms.items() if n.startswith("action.")}
    sites = {n: s for n, s in histograms.items() if not n.startswith("action.")}
    lines += ["", "actions:", render_histograms(actions)]
    if sites:
        lines += ["", "instrumented sites:", render_histograms(sites)]
    rates = _hit_rates(counters)
    if rates:
        lines += ["", "cache hit rates:"] + rates
    slo_section = metrics.get("slo")
    if slo_section is None:
        lines += ["", "SLOs (rolling window): n/a "
                      "(not reported by this source)"]
        slo = {}
    else:
        slo = {
            name: state for name, state in slo_section.items()
            if isinstance(state, dict) and state.get("samples")
        }
    if slo:
        lines += ["", "SLOs (rolling window):"]
        width = 2 + max(len(name) for name in slo)
        for name in sorted(slo):
            state = slo[name]
            attainment = state.get("attainment") or 0.0
            burn = state.get("burn_rate")
            burn_text = f"burn {burn:.2f}x" if burn is not None else "no budget"
            lines.append(
                f"  {name:<{width}}"
                f"{100 * attainment:6.2f}% of "
                f"{100 * state.get('objective', 0):g}% target  "
                f"({state.get('good', 0)}/{state.get('samples', 0)} good, "
                f"{burn_text}, "
                f"{'met' if state.get('met') else 'MISSED'})"
            )
    gauges = metrics.get("gauges", {})
    memory_keys = (
        ("proc.rss_bytes", "process RSS"),
        ("arena.segment_bytes", "arena segments"),
        ("tracemalloc.peak_bytes", "tracemalloc peak"),
    )
    memory = [(label, gauges[key]) for key, label in memory_keys
              if isinstance(gauges.get(key), (int, float)) and gauges[key]]
    if memory:
        lines += ["", "memory:"]
        for label, value in memory:
            lines.append(f"  {label:<18} {value / (1024 * 1024):10.1f} MiB")
    if requests is None:
        lines += ["", "slowest recent requests: n/a "
                      "(not reported by this source)"]
    elif requests:
        lines += ["", f"slowest recent requests (top {len(requests)}):"]
        for entry in requests:
            session = entry.get("session")
            lines.append(
                f"  {entry.get('duration_ms', 0):>9.2f} ms  "
                f"{entry.get('status', '?'):>3}  "
                f"{entry.get('method', '?'):<7}"
                f"{entry.get('path', '?'):<32}"
                f"id={entry.get('request_id', '?')}"
                + (f"  session={session}" if session else "")
            )
    profile = bundle.get("profile")
    if isinstance(profile, dict) and profile.get("samples"):
        lines += ["", f"profiler ({profile.get('hz', 0):g} Hz, "
                      f"{profile['samples']} samples):"]
        for frame in profile.get("top_frames", [])[:5]:
            lines.append(
                f"  {frame.get('self_samples', 0):>6}  "
                f"{frame.get('frame', '?')}"
            )
    runs = counters.get("verify.pool.runs", 0)
    chunk_hist = histograms.get("verify.chunk", {})
    if runs or chunk_hist:
        chunks = counters.get("verify.pool.chunks", 0) or \
            chunk_hist.get("count", 0)
        lines += ["", "verification pool:"]
        lines.append(
            f"  runs {runs}  chunks {chunks}  "
            f"fallbacks {counters.get('verify.pool.fallbacks', 0)}  "
            f"serial scans {counters.get('verify.serial', 0)}"
        )
        spawns = counters.get("verify.pool.spawns", 0)
        if spawns or counters.get("verify.pool.cold_spawns", 0):
            # Warm-pool health: reuses dwarfing spawns means dispatches hit
            # running workers; respawns/expired mark broken-pool recoveries
            # and idle-TTL recycles; cold spawns only appear with
            # REPRO_POOL_WARM=0.
            lines.append(
                f"  warm spawns {spawns}  "
                f"reuses {counters.get('verify.pool.reuses', 0)}  "
                f"respawns {counters.get('verify.pool.respawns', 0)}  "
                f"expired {counters.get('verify.pool.expired', 0)}  "
                f"cold spawns {counters.get('verify.pool.cold_spawns', 0)}"
            )
        builds = counters.get("arena.builds", 0)
        if builds:
            lines.append(
                f"  arena builds {builds}  "
                f"invalidations {counters.get('arena.invalidations', 0)}"
            )
        if chunk_hist:
            busy = chunk_hist.get("sum_s", 0.0)
            lines.append(
                f"  worker busy time {1000 * busy:.2f} ms across "
                f"{chunk_hist.get('count', 0)} chunks "
                f"(p99 {1000 * chunk_hist.get('p99_s', 0.0):.2f} ms)"
            )
    if events:
        lines += ["", f"recent events (last {len(events)}):"]
        for event in events:
            skip = {"schema", "kind", "event", "seq", "t_s", "traceback"}
            fields = " ".join(
                f"{k}={event[k]}" for k in event if k not in skip
            )
            lines.append(
                f"  #{event.get('seq', '?'):>5}  "
                f"{str(event.get('event', event.get('kind', '?'))):<18}"
                f"{fields}"
            )
    return "\n".join(lines)


def render_request_bundle(data: Dict[str, Any]) -> str:
    """A correlated request bundle (``GET /v1/requests/<id>``) as text.

    ``data`` carries the access-log entry (``request``), the recorder
    events stamped with the id (``events`` — including any merged from pool
    workers, recognisable by their ``src`` label), the root span trees
    whose ``request_id`` attribute matches (``spans``, in
    :meth:`~repro.obs.tracer.Span.to_dict` form) and, when the sampler is
    on, the request-scoped profile slice (``profile``: folded stacks to
    sample counts, pool-worker frames prefixed ``worker:<label>;``).
    """
    request_id = data.get("request_id", "?")
    lines = [f"request {request_id}"]
    entry = data.get("request")
    if entry:
        session = entry.get("session")
        lines.append(
            f"  {entry.get('method', '?')} {entry.get('path', '?')} -> "
            f"{entry.get('status', '?')} in "
            f"{entry.get('duration_ms', 0):.2f} ms"
            + (f"  (session {session})" if session else "")
        )
    spans = data.get("spans") or []
    if spans:
        lines += ["", f"correlated spans ({len(spans)} roots):"]
        for root in spans:
            _render_span_dict(root, 0, lines)
    elif "spans" not in data:
        lines += ["", "correlated spans: n/a (not reported by this server)"]
    events = data.get("events") or []
    if not events and "events" not in data:
        lines += ["", "correlated events: n/a (not reported by this server)"]
    if events:
        lines += ["", f"correlated events ({len(events)}):"]
        t0 = events[0].get("t_s", 0.0)
        skip = {"seq", "t_s", "kind", "traceback", "request_id"}
        for event in events:
            fields = " ".join(
                f"{k}={event[k]}" for k in event if k not in skip
            )
            offset_ms = 1000 * (event.get("t_s", t0) - t0)
            lines.append(
                f"  +{offset_ms:9.2f} ms  "
                f"{str(event.get('kind', '?')):<18}{fields}"
            )
    profile = data.get("profile") or {}
    if profile:
        from repro.obs.profiler import top_frames

        total = sum(profile.values())
        lines += ["", f"profile slice ({total} samples):"]
        for frame, count in top_frames(profile, 8):
            lines.append(f"  {count:>6}  {frame}")
    if not entry and not spans and not events and not profile:
        lines.append("  (nothing correlated — recorder/tracing off, "
                     "or the id aged out)")
    return "\n".join(lines)


def _render_span_dict(
    node: Dict[str, Any], depth: int, lines: List[str]
) -> None:
    """One dict-form span (plus children) as indented request-bundle lines."""
    attrs = {
        k: v for k, v in (node.get("attrs") or {}).items()
        if k != "request_id"
    }
    label = "  " * depth + str(node.get("name", "?"))
    lines.append(
        f"  {label:<{max(len(label) + 2, 32)}}"
        f"{_fmt_ms(node.get('seconds', 0.0))}{_fmt_attrs(attrs)}"
    )
    for child in node.get("children") or []:
        _render_span_dict(child, depth + 1, lines)


def diff_trace_reports(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    """Structured deltas between two ``trace-report`` artifacts (A → B).

    The before/after companion to ``python -m repro trace --json``: sites
    are matched by name, percentiles compared pairwise, counters
    subtracted.  Returns ``{"histograms": {...}, "counters": {...},
    "ledger": {...}}`` — rendering is :func:`render_report_diff`'s job.

    A site present in only one report (instrumentation added or removed
    between captures) is treated as zero on the missing side and flagged
    via ``in_a``/``in_b`` so the renderer can mark it ``(new)``/``(gone)``
    instead of reporting a meaningless percentage.
    """
    out: Dict[str, Any] = {"histograms": {}, "counters": {}, "ledger": {}}
    hists_a = a.get("metrics", {}).get("histograms", {}) or {}
    hists_b = b.get("metrics", {}).get("histograms", {}) or {}
    for site in sorted(set(hists_a) | set(hists_b)):
        sa, sb = hists_a.get(site, {}), hists_b.get(site, {})
        entry: Dict[str, Any] = {
            "count_a": sa.get("count", 0),
            "count_b": sb.get("count", 0),
            "in_a": site in hists_a,
            "in_b": site in hists_b,
        }
        for p in (50, 90, 99):
            va = sa.get(f"p{p}_s", 0.0)
            vb = sb.get(f"p{p}_s", 0.0)
            entry[f"p{p}_a_s"] = va
            entry[f"p{p}_b_s"] = vb
            entry[f"p{p}_delta_s"] = vb - va
            # A percentage needs a nonzero baseline *and* both sides
            # present; a one-sided site renders as (new)/(gone), not ±∞%.
            present = site in hists_a and site in hists_b
            entry[f"p{p}_pct"] = \
                100 * (vb - va) / va if va and present else None
        out["histograms"][site] = entry
    counters_a = a.get("metrics", {}).get("counters", {})
    counters_b = b.get("metrics", {}).get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name, 0), counters_b.get(name, 0)
        if va != vb:
            out["counters"][name] = {"a": va, "b": vb, "delta": vb - va}
    ledger_a, ledger_b = a.get("ledger"), b.get("ledger")
    if ledger_a and ledger_b:
        for key in ("total_processing", "srt_seconds", "hidden_seconds"):
            va, vb = ledger_a.get(key, 0.0), ledger_b.get(key, 0.0)
            out["ledger"][key] = {"a": va, "b": vb, "delta": vb - va}
    return out


def render_report_diff(
    diff: Dict[str, Any], label_a: str = "A", label_b: str = "B"
) -> str:
    """A :func:`diff_trace_reports` result as aligned tables.

    Sites present in only one report carry a ``(new)``/``(gone)`` mark next
    to their name (their missing side reads as zero).  All entry fields are
    read defensively — a diff computed by an older checkout (no presence
    flags) still renders.
    """
    lines: List[str] = [f"trace diff: {label_a} -> {label_b}"]
    histograms = diff.get("histograms", {})
    if histograms:
        marks = {}
        for site, e in histograms.items():
            in_a = e.get("in_a", e.get("count_a", 0) > 0)
            in_b = e.get("in_b", e.get("count_b", 0) > 0)
            if in_a and not in_b:
                marks[site] = f"{site} (gone)"
            elif in_b and not in_a:
                marks[site] = f"{site} (new)"
            else:
                marks[site] = site
        width = 2 + max(len(label) for label in marks.values())
        header = (
            f"{'site':<{width}}{'n: A->B':>12}"
            f"{'p50 A->B':>20}{'p90 A->B':>20}{'p99 A->B':>20}"
        )
        lines += ["", header, "-" * len(header)]
        for site in sorted(histograms):
            e = histograms[site]
            count_a, count_b = e.get("count_a", 0), e.get("count_b", 0)
            cells = [f"{marks[site]:<{width}}"
                     f"{str(count_a) + '->' + str(count_b):>12}"]
            for p in (50, 90, 99):
                pct = e.get(f"p{p}_pct")
                if pct is not None:
                    pct_text = f"{pct:+.0f}%"
                elif e.get("in_a", count_a > 0) and \
                        not e.get("in_b", count_b > 0):
                    pct_text = "gone"
                else:
                    pct_text = "new"
                cells.append(
                    f"{1000 * e.get(f'p{p}_a_s', 0.0):>7.2f}->"
                    f"{1000 * e.get(f'p{p}_b_s', 0.0):<7.2f}{pct_text:>5}"
                )
            lines.append("".join(cells))
    counters = diff.get("counters", {})
    if counters:
        lines += ["", "counters that changed:"]
        width = 2 + max(len(name) for name in counters)
        for name in sorted(counters):
            e = counters[name]
            lines.append(
                f"  {name:<{width}}{e['a']} -> {e['b']}  ({e['delta']:+g})"
            )
    else:
        lines += ["", "counters: no differences"]
    ledger = diff.get("ledger", {})
    if ledger:
        lines += ["", "SRT ledger:"]
        for key, e in ledger.items():
            lines.append(
                f"  {key:<18}{1000 * e['a']:9.2f} ms -> "
                f"{1000 * e['b']:9.2f} ms  ({1000 * e['delta']:+.2f} ms)"
            )
    return "\n".join(lines)


def render_ledger(ledger: SrtLedger) -> str:
    """The SRT ledger as a table plus its summary/reconciliation lines."""
    header = (
        f"{'#':>3}  {'action':<14}{'processing':>13}{'latency':>10}"
        f"{'hidden':>13}{'backlog':>13}"
    )
    lines = [header, "-" * len(header)]
    for e in ledger.entries:
        lines.append(
            f"{e.index:>3}  {e.action:<14}"
            f"{1000 * e.processing_seconds:>10.2f} ms"
            f"{e.latency_seconds:>8.2f} s"
            f"{1000 * e.hidden_seconds:>10.2f} ms"
            f"{1000 * e.backlog_after:>10.2f} ms"
        )
    lines.append("-" * len(header))
    lines.append(
        f"  Run residual        {1000 * ledger.run_seconds:>9.2f} ms"
    )
    lines.append(
        f"  SRT (backlog + Run) {1000 * ledger.srt_seconds:>9.2f} ms"
    )
    lines.append(
        f"  hidden in GUI gaps  {1000 * ledger.hidden_seconds:>9.2f} ms"
    )
    lines.append(
        f"  total processing    {1000 * ledger.total_processing:>9.2f} ms"
        f"  (= hidden + SRT, slack {1e6 * abs(ledger.residual_error()):.1f} µs)"
    )
    return "\n".join(lines)


def report_to_dict(
    roots: Iterable[Span],
    snapshot: Dict[str, Dict[str, Any]],
    ledger: Optional[SrtLedger] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """One JSON-ready bundle: spans + metrics (+ ledger, + extras)."""
    out: Dict[str, Any] = {
        "spans": [root.to_dict() for root in roots],
        "metrics": snapshot,
    }
    if ledger is not None:
        out["ledger"] = ledger.to_dict()
    out.update(extra)
    return out
