"""Exporters: span trees, metrics and SRT ledgers as JSON or tables.

Two render targets, no dependencies:

* **JSON** — :func:`report_to_dict` bundles everything a traced session
  produced into one ``json.dump``-ready dict (what ``python -m repro trace
  --json`` writes);
* **human-readable** — :func:`render_span_tree`, :func:`render_metrics` and
  :func:`render_ledger` produce aligned monospace tables (what the CLI
  prints; ``docs/PERFORMANCE.md`` shows an annotated example).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.srt import SrtLedger
from repro.obs.tracer import Span

#: Current version of every JSON artifact ``repro.obs`` writes (trace
#: reports, post-mortem bundles, perf trajectories).  Version 1 is the
#: pre-envelope era: payloads with no ``"schema"`` key at all.
SCHEMA_VERSION = 2

#: Artifact kinds the loaders accept.
ENVELOPE_KINDS = ("trace-report", "postmortem", "trajectory")


def envelope(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap ``payload`` in the schema-versioned envelope.

    The envelope is flat — ``{"schema": 2, "kind": ..., **payload}`` — so
    existing consumers keep indexing the payload keys directly while loaders
    gain a version to dispatch on as the formats evolve.
    """
    if kind not in ENVELOPE_KINDS:
        raise ValueError(f"unknown artifact kind {kind!r}")
    out: Dict[str, Any] = {"schema": SCHEMA_VERSION, "kind": kind}
    out.update(payload)
    return out


def open_envelope(
    data: Dict[str, Any], expect_kind: Optional[str] = None
) -> Dict[str, Any]:
    """Validate a loaded artifact and return it (round-trip of `envelope`).

    Artifacts written before versioning (no ``"schema"`` key) are accepted as
    version 1 and stamped accordingly; future major versions are rejected
    loudly rather than misread silently.
    """
    if not isinstance(data, dict):
        raise ValueError("artifact must be a JSON object")
    version = data.get("schema", 1)
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad schema version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema {version} is newer than supported "
            f"({SCHEMA_VERSION}); upgrade this checkout to read it"
        )
    out = dict(data)
    out["schema"] = version
    if expect_kind is not None:
        kind = out.get("kind")
        # Version-1 artifacts predate the kind tag; trust the caller then.
        if version >= 2 and kind != expect_kind:
            raise ValueError(
                f"expected a {expect_kind!r} artifact, got {kind!r}"
            )
        out.setdefault("kind", expect_kind)
    return out


def _fmt_ms(seconds: float) -> str:
    return f"{1000 * seconds:9.2f} ms"


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in attrs.items())


def render_span_tree(
    roots: Sequence[Span],
    min_seconds: float = 0.0,
) -> str:
    """The span forest as an indented tree with per-span durations.

    ``min_seconds`` prunes spans shorter than the threshold (their children
    are pruned with them) — useful on very chatty traces.
    """
    lines: List[str] = []
    width = 2 + max(
        (depth * 3 + len(span.name)
         for root in roots for span, depth in root.walk()),
        default=0,
    )
    for root in roots:
        _render_span(root, "", True, True, width, min_seconds, lines)
    return "\n".join(lines)


def _render_span(
    span: Span,
    prefix: str,
    is_last: bool,
    is_root: bool,
    width: int,
    min_seconds: float,
    lines: List[str],
) -> None:
    if span.duration_seconds < min_seconds:
        return
    if is_root:
        label = span.name
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        label = prefix + connector + span.name
        child_prefix = prefix + ("   " if is_last else "│  ")
    lines.append(
        f"{label:<{width}}{_fmt_ms(span.duration_seconds)}"
        f"{_fmt_attrs(span.attrs)}"
    )
    kept = [c for c in span.children if c.duration_seconds >= min_seconds]
    for i, child in enumerate(kept):
        _render_span(
            child, child_prefix, i == len(kept) - 1, False, width,
            min_seconds, lines,
        )


def render_metrics(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Counters and gauges as one aligned two-column table."""
    rows: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    names = list(sorted(counters)) + [f"{name} (gauge)" for name in sorted(gauges)]
    if not names:
        return "(no metrics recorded)"
    width = 2 + max(len(name) for name in names)
    for name in sorted(counters):
        rows.append(f"{name:<{width}}{counters[name]}")
    for name in sorted(gauges):
        rows.append(f"{name + ' (gauge)':<{width}}{gauges[name]}")
    return "\n".join(rows)


def render_histograms(summaries: Dict[str, Dict[str, Any]]) -> str:
    """Histogram summaries as one aligned table (count, percentiles, max).

    ``summaries`` is :func:`repro.obs.histogram.histogram_summaries` output
    (or the ``"histograms"`` section of a metrics snapshot).
    """
    if not summaries:
        return "(no latency observations recorded)"
    width = 2 + max(len(name) for name in summaries)
    header = (
        f"{'site':<{width}}{'count':>8}{'p50':>12}{'p90':>12}"
        f"{'p99':>12}{'max':>12}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(summaries):
        s = summaries[name]
        lines.append(
            f"{name:<{width}}{s['count']:>8}"
            f"{1000 * s['p50_s']:>9.2f} ms"
            f"{1000 * s['p90_s']:>9.2f} ms"
            f"{1000 * s['p99_s']:>9.2f} ms"
            f"{1000 * s['max_s']:>9.2f} ms"
        )
    return "\n".join(lines)


def render_ledger(ledger: SrtLedger) -> str:
    """The SRT ledger as a table plus its summary/reconciliation lines."""
    header = (
        f"{'#':>3}  {'action':<14}{'processing':>13}{'latency':>10}"
        f"{'hidden':>13}{'backlog':>13}"
    )
    lines = [header, "-" * len(header)]
    for e in ledger.entries:
        lines.append(
            f"{e.index:>3}  {e.action:<14}"
            f"{1000 * e.processing_seconds:>10.2f} ms"
            f"{e.latency_seconds:>8.2f} s"
            f"{1000 * e.hidden_seconds:>10.2f} ms"
            f"{1000 * e.backlog_after:>10.2f} ms"
        )
    lines.append("-" * len(header))
    lines.append(
        f"  Run residual        {1000 * ledger.run_seconds:>9.2f} ms"
    )
    lines.append(
        f"  SRT (backlog + Run) {1000 * ledger.srt_seconds:>9.2f} ms"
    )
    lines.append(
        f"  hidden in GUI gaps  {1000 * ledger.hidden_seconds:>9.2f} ms"
    )
    lines.append(
        f"  total processing    {1000 * ledger.total_processing:>9.2f} ms"
        f"  (= hidden + SRT, slack {1e6 * abs(ledger.residual_error()):.1f} µs)"
    )
    return "\n".join(lines)


def report_to_dict(
    roots: Iterable[Span],
    snapshot: Dict[str, Dict[str, Any]],
    ledger: Optional[SrtLedger] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """One JSON-ready bundle: spans + metrics (+ ledger, + extras)."""
    out: Dict[str, Any] = {
        "spans": [root.to_dict() for root in roots],
        "metrics": snapshot,
    }
    if ledger is not None:
        out["ledger"] = ledger.to_dict()
    out.update(extra)
    return out
