"""Cross-process telemetry: the worker-delta capture/merge protocol.

The verification pool is where PRAGUE's residual work actually runs — and a
``multiprocessing`` worker's observations used to die with the subprocess:
the parent logged chunk-level ``pool.run`` events while every counter,
histogram sample and recorder event produced *inside* ``_verify_chunk``
vanished.  This module closes that hole with a three-step protocol driven
by :func:`repro.core.verification._run_batch`:

1. **context** — :func:`worker_context` captures the parent's observability
   posture (tracing/recorder switches) into a small picklable dict that
   travels with every chunk payload, so workers observe exactly what the
   parent would have (env knobs propagate through fork anyway; programmatic
   ``obs.trace()`` overrides only propagate through the context);
2. **capture** — :func:`begin_worker_capture` runs first inside the worker:
   it applies the context, *resets* the worker-local registries (fork copies
   the parent's state; copy-on-write makes the reset invisible to the
   parent) and suspends the continuous exporter so the worker never writes
   the parent's files.  Everything the chunk then records is, by
   construction, the chunk's own delta;
3. **merge** — :func:`collect_worker_delta` freezes that delta (counters,
   gauges, histogram buckets, recorder events) with a per-worker provenance
   label, and the parent folds it back with :func:`merge_worker_delta`:
   counters sum exactly, histograms merge bucket-wise
   (:meth:`~repro.obs.histogram.Histogram.merge_snapshot`), gauges are
   namespaced by worker, and recorder events interleave into the parent
   ring by timestamp (:meth:`~repro.obs.recorder.FlightRecorder.merge`).

The result is the acceptance property pinned by
``tests/obs/test_worker_telemetry.py``: ``full_snapshot()`` reports
identical verification counter and histogram totals at any
``REPRO_WORKERS`` setting — no lost samples, answers byte-identical.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.obs.exporter import EXPORTER
from repro.obs.histogram import (
    merge_histograms,
    reset_histograms,
    snapshot_histograms,
)
from repro.obs.metrics import METRICS, count
from repro.obs.profiler import PROFILER
from repro.obs.recorder import RECORDER
from repro.obs.requests import current_request_id, set_request_id
from repro.obs.tracer import TRACER


def worker_context() -> Dict[str, Any]:
    """The parent's obs posture as a picklable dict for pool payloads.

    Includes the dispatching thread's request id (if an HTTP request scope
    is active), so events a pool worker records carry the same correlation
    id as the handler that triggered the batch, and the sampler rate so a
    profiled parent gets profiled workers (their samples merge home through
    :func:`merge_worker_delta`).
    """
    return {
        "trace": TRACER.enabled,
        "recorder": RECORDER.enabled,
        "request_id": current_request_id(),
        "profile_hz": PROFILER.hz,
    }


def begin_worker_capture(ctx: Dict[str, Any]) -> None:
    """Enter delta-capture mode inside a pool worker.

    Applies the parent's switches as overrides (fork inherits the env, but
    not programmatic ``force``/``trace()`` state), clears the inherited
    registries so subsequent observations form a clean delta, and suspends
    the exporter (the worker must not append to the parent's stream).
    Called at the top of every chunk — pool workers are reused across
    chunks, and each chunk returns only its own delta.
    """
    EXPORTER.suspend()
    TRACER.force(bool(ctx.get("trace")))
    RECORDER.force(bool(ctx.get("recorder")))
    PROFILER.force(float(ctx.get("profile_hz") or 0.0))
    TRACER.reset()
    METRICS.reset()
    reset_histograms()
    RECORDER.reset()
    PROFILER.reset()
    set_request_id(ctx.get("request_id"))
    # Attribute the worker's samples to the dispatching request: the chunk
    # runs on this very thread, so scoping it here covers the whole chunk.
    if PROFILER.enabled:
        PROFILER.set_scope(ctx.get("request_id"), "verify.chunk")


def collect_worker_delta(label: str = "") -> Dict[str, Any]:
    """Freeze everything recorded since :func:`begin_worker_capture`.

    The returned dict is plain JSON-able data (safe to pickle back through
    the pool).  ``label`` defaults to ``pid-<os.getpid()>`` — the provenance
    tag that ends up on merged gauges and recorder events.
    """
    snap = METRICS.snapshot()
    delta: Dict[str, Any] = {
        "worker": label or f"pid-{os.getpid()}",
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": snapshot_histograms(),
        "events": RECORDER.snapshot(),
    }
    if PROFILER.enabled and PROFILER.samples:
        delta["profile"] = PROFILER.collect()
    return delta


def merge_worker_delta(delta: Dict[str, Any]) -> None:
    """Fold one worker delta into the parent-process registries.

    Counter totals are exact (sums of sums); histogram merges are exact
    (shared buckets, bucket-wise sum); gauges land as
    ``<name>.<worker-label>``; events interleave by timestamp with a
    ``src`` label.  The ``obs.merge.deltas``/``obs.merge.events`` counters
    account for the merge traffic itself (gated like every counter).
    """
    if not isinstance(delta, dict):  # defensive: a worker returned junk
        return
    source = str(delta.get("worker") or "worker")
    METRICS.merge(
        {"counters": delta.get("counters", {}),
         "gauges": delta.get("gauges", {})},
        source=source,
    )
    merge_histograms(delta.get("histograms", {}))
    RECORDER.merge(delta.get("events", []), source=source)
    PROFILER.merge(delta.get("profile"), source=source)
    count("obs.merge.deltas")
    count("obs.merge.events", len(delta.get("events", [])))
