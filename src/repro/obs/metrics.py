"""Counters and gauges — the metrics half of ``repro.obs``.

A *counter* is a monotonically increasing integer (cache hits, pool
fallbacks, path-taken tallies); a *gauge* is a last-write-wins value
(candidate-set sizes, LRU occupancy).  Both live in the process-wide
:data:`METRICS` registry and share the tracing switch: :func:`count` and
:func:`gauge` record only while :data:`repro.obs.TRACER` is enabled, so the
disabled cost at an instrumentation site is one attribute load and a branch.

Names are dotted, lowercase, and stable — they are part of the observable
API (``docs/PERFORMANCE.md`` documents the vocabulary):

>>> from repro.obs import METRICS, count, gauge, trace
>>> with trace():
...     count("a2f.lookup.hit")
...     count("a2f.lookup.hit")
...     gauge("rq.size", 17)
>>> METRICS.snapshot()["counters"]["a2f.lookup.hit"]
2
>>> METRICS.snapshot()["gauges"]["rq.size"]
17

The canonical-code caches keep their own counters for historical reasons
(:func:`repro.graph.canonical.cache_stats`); :func:`full_snapshot` merges
them under the ``canonical.*`` prefix so one call sees everything.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.obs.tracer import TRACER

Number = Union[int, float]


class Metrics:
    """The process-wide counter/gauge registry."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}

    def inc(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def counter(self, name: str) -> Number:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """A sorted, copied view: ``{"counters": {...}, "gauges": {...}}``."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }

    def reset(self) -> None:
        """Zero everything (test/bench isolation)."""
        self._counters.clear()
        self._gauges.clear()


#: The process-wide registry every instrumentation site writes to.
METRICS = Metrics()


def count(name: str, amount: Number = 1) -> None:
    """Increment a counter — no-op while tracing is disabled."""
    if TRACER.enabled:
        METRICS.inc(name, amount)


def gauge(name: str, value: Number) -> None:
    """Set a gauge — no-op while tracing is disabled."""
    if TRACER.enabled:
        METRICS.set_gauge(name, value)


def full_snapshot() -> Dict[str, Dict[str, Any]]:
    """The metrics snapshot with the canonical-code cache stats merged in.

    The canonical module's counters predate ``repro.obs`` and record
    unconditionally (they cost nothing extra); they appear here under
    ``canonical.*``: ``graph_hits`` (per-graph invariant-store hits),
    ``lru_hits`` (process-wide structural LRU hits), ``misses`` (full
    recomputations) and ``size`` (current LRU occupancy, a gauge).
    """
    from repro.graph.canonical import cache_stats

    out = METRICS.snapshot()
    stats = cache_stats()
    for key in ("graph_hits", "lru_hits", "misses"):
        out["counters"][f"canonical.{key}"] = stats[key]
    out["gauges"]["canonical.lru_size"] = stats["size"]
    return out
