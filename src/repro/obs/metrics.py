"""Counters and gauges — the metrics half of ``repro.obs``.

A *counter* is a monotonically increasing integer (cache hits, pool
fallbacks, path-taken tallies); a *gauge* is a last-write-wins value
(candidate-set sizes, LRU occupancy).  Both live in the process-wide
:data:`METRICS` registry and share the tracing switch: :func:`count` and
:func:`gauge` record only while :data:`repro.obs.TRACER` is enabled, so the
disabled cost at an instrumentation site is one attribute load and a branch.

Names are dotted, lowercase, and stable — they are part of the observable
API (``docs/PERFORMANCE.md`` documents the vocabulary):

>>> from repro.obs import METRICS, count, gauge, trace
>>> with trace():
...     count("a2f.lookup.hit")
...     count("a2f.lookup.hit")
...     gauge("rq.size", 17)
>>> METRICS.snapshot()["counters"]["a2f.lookup.hit"]
2
>>> METRICS.snapshot()["gauges"]["rq.size"]
17

The canonical-code caches keep their own counters for historical reasons
(:func:`repro.graph.canonical.cache_stats`); :func:`full_snapshot` merges
them under the ``canonical.*`` prefix so one call sees everything.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.obs.tracer import TRACER

Number = Union[int, float]


class Metrics:
    """The process-wide counter/gauge registry."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}

    def inc(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def counter(self, name: str) -> Number:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """A sorted, copied view: ``{"counters": {...}, "gauges": {...}}``."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }

    def merge(self, delta: Dict[str, Dict[str, Number]],
              source: Optional[str] = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters are summed — merging worker deltas therefore preserves
        exact totals regardless of how work was chunked.  Gauges are
        last-write-wins in-process, but across processes "last" is
        meaningless, so a ``source`` provenance label (the worker id)
        namespaces them as ``<name>.<source>`` instead of overwriting the
        parent's value.

        >>> parent, worker = Metrics(), Metrics()
        >>> parent.inc("verify.tested", 3)
        >>> worker.inc("verify.tested", 5)
        >>> worker.set_gauge("rq.size", 9)
        >>> parent.merge(worker.snapshot(), source="w1")
        >>> parent.counter("verify.tested")
        8
        >>> parent.snapshot()["gauges"]
        {'rq.size.w1': 9}
        """
        for name, value in delta.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in delta.get("gauges", {}).items():
            if source is not None:
                name = f"{name}.{source}"
            self._gauges[name] = value

    def reset(self) -> None:
        """Zero everything (test/bench isolation)."""
        self._counters.clear()
        self._gauges.clear()


#: The process-wide registry every instrumentation site writes to.
METRICS = Metrics()


def count(name: str, amount: Number = 1) -> None:
    """Increment a counter — no-op while tracing is disabled."""
    if TRACER.enabled:
        METRICS.inc(name, amount)


def gauge(name: str, value: Number) -> None:
    """Set a gauge — no-op while tracing is disabled."""
    if TRACER.enabled:
        METRICS.set_gauge(name, value)


#: The canonical-cache bridge keys ``full_snapshot`` always reports —
#: consumers (exporters, the trace CLI, dashboards) index them
#: unconditionally, so the section must stay well-formed even when the LRU
#: tier is disabled (``REPRO_CANONICAL_CACHE=0``) or the stats source
#: changes shape.
_CANONICAL_COUNTER_KEYS = ("graph_hits", "lru_hits", "misses")


def _rss_bytes() -> int:
    """This process's resident set size in bytes (0 when unknowable).

    ``/proc/self/statm`` is the cheap, current-value source on Linux; the
    ``resource`` fallback reports the *peak* RSS (the best portable
    approximation), and any failure degrades to 0 rather than raising —
    memory gauges must never break a snapshot.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        import os as _os

        return resident_pages * _os.sysconf("SC_PAGE_SIZE")
    except Exception:
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


def full_snapshot() -> Dict[str, Dict[str, Any]]:
    """The metrics snapshot with canonical-cache stats and histograms merged.

    The canonical module's counters predate ``repro.obs`` and record
    unconditionally (they cost nothing extra); they appear here under
    ``canonical.*``: ``graph_hits`` (per-graph invariant-store hits),
    ``lru_hits`` (process-wide structural LRU hits), ``misses`` (full
    recomputations) and ``size`` (current LRU occupancy, a gauge).  With the
    LRU tier disabled (``REPRO_CANONICAL_CACHE=0``) the section is still
    emitted, zero-filled for whatever the stats source does not report — the
    shape of the snapshot is part of the observable API.

    The ``"histograms"`` section carries the latency-distribution summaries
    of :mod:`repro.obs.histogram` (always on, independent of the tracing
    switch), and ``"slo"`` the rolling-window objective state of
    :data:`repro.obs.slo.SLO` — both feed the Prometheus export.

    Process-level memory gauges (``proc.rss_bytes``,
    ``arena.segment_bytes``, ``tracemalloc.peak_bytes``) are sampled at
    snapshot time and always present (zero when the source is off or
    unavailable), independent of the tracing switch — like the canonical
    bridge, their shape is part of the observable API.
    """
    from repro.graph.canonical import cache_stats
    from repro.obs.histogram import histogram_summaries
    from repro.obs.slo import SLO

    out: Dict[str, Dict[str, Any]] = METRICS.snapshot()
    stats = cache_stats()
    if not isinstance(stats, dict):  # defensive: never mis-shape the bridge
        stats = {}
    for key in _CANONICAL_COUNTER_KEYS:
        value = stats.get(key, 0)
        out["counters"][f"canonical.{key}"] = value if \
            isinstance(value, (int, float)) else 0
    size = stats.get("size", 0)
    out["gauges"]["canonical.lru_size"] = size if \
        isinstance(size, (int, float)) else 0
    out["gauges"]["proc.rss_bytes"] = _rss_bytes()
    try:
        from repro.core.pool import arena_segment_bytes

        out["gauges"]["arena.segment_bytes"] = arena_segment_bytes()
    except Exception:
        out["gauges"]["arena.segment_bytes"] = 0
    from repro.obs.profiler import PROFILER

    out["gauges"]["tracemalloc.peak_bytes"] = PROFILER.tracemalloc_peak_bytes()
    out["histograms"] = histogram_summaries()
    out["slo"] = SLO.snapshot()
    return out
