"""Declarative service-level objectives with rolling-window burn rates.

PRAGUE's operational promise is a *latency* promise: per-action work hides
inside the ≥2 s GUI window (Section VIII-B), so the service's primary SLO
is "actions complete within the window", with error rate and admission
rate alongside.  Each objective is a target fraction of *good* samples
over a rolling time window (``REPRO_SLO_WINDOW``):

* ``attainment`` — good / total over the window (``None`` with no samples);
* ``burn_rate`` — ``(1 - attainment) / (1 - target)``: the speed at which
  the error budget is being spent.  1.0 means failures arrive exactly at
  the budgeted rate (the budget lasts the window); 2.0 burns it twice as
  fast; below 1.0 the objective is being met with room to spare.

The tracker takes explicit ``t``/``now`` timestamps (defaulting to
``time.monotonic``) so the math is property-testable against a brute-force
reference without clock control.  Feeds are one deque append under a lock —
cheap enough for the request hot path, bounded by ``bench_obs_overhead``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, Optional, Tuple

from collections import deque

from repro.config import slo_action_threshold, slo_window


@dataclass(frozen=True)
class SloObjective:
    """One objective: ``target`` fraction of samples must be *good*."""

    name: str
    description: str
    target: float


#: The service's default objectives.  ``request_errors`` deliberately treats
#: 503 as non-error: admission rejections are the ``admission`` objective's
#: budget, not a server fault.
DEFAULT_OBJECTIVES: Tuple[SloObjective, ...] = (
    SloObjective(
        "action_latency",
        "session actions complete within the GUI-latency window",
        0.99,
    ),
    SloObjective(
        "request_errors",
        "HTTP requests answered without a server error (5xx, excluding 503)",
        0.999,
    ),
    SloObjective(
        "admission",
        "session creates admitted under the capacity gate",
        0.99,
    ),
)


class SloTracker:
    """Rolling-window attainment + burn rate over declarative objectives."""

    def __init__(
        self,
        objectives: Iterable[SloObjective] = DEFAULT_OBJECTIVES,
        window_s: Optional[float] = None,
        max_samples: int = 4096,
    ) -> None:
        self._objectives: Dict[str, SloObjective] = {
            objective.name: objective for objective in objectives
        }
        self._window_override = window_s
        self._lock = threading.Lock()
        self._samples: Dict[str, Deque[Tuple[float, bool]]] = {
            name: deque(maxlen=max(int(max_samples), 1))
            for name in self._objectives
        }

    def window(self) -> float:
        if self._window_override is not None:
            return max(float(self._window_override), 1e-9)
        return slo_window()

    def objectives(self) -> Tuple[SloObjective, ...]:
        return tuple(self._objectives.values())

    def record(self, name: str, good: bool, t: Optional[float] = None) -> None:
        """Feed one sample; unknown objective names are ignored (hot path)."""
        samples = self._samples.get(name)
        if samples is None:
            return
        if t is None:
            t = time.monotonic()
        with self._lock:
            samples.append((float(t), bool(good)))

    def _window_counts_locked(self, name: str, now: float) -> Tuple[int, int]:
        """(good, total) inside the window; prunes aged-out samples."""
        samples = self._samples[name]
        horizon = now - self.window()
        while samples and samples[0][0] < horizon:
            samples.popleft()
        good = sum(1 for _, is_good in samples if is_good)
        return good, len(samples)

    def attainment(self, name: str, now: Optional[float] = None) -> Optional[float]:
        """Good fraction over the window, ``None`` without samples."""
        if name not in self._samples:
            return None
        if now is None:
            now = time.monotonic()
        with self._lock:
            good, total = self._window_counts_locked(name, now)
        return good / total if total else None

    def burn_rate(self, name: str, now: Optional[float] = None) -> Optional[float]:
        """Error-budget burn speed; ``None`` without samples or budget."""
        objective = self._objectives.get(name)
        if objective is None:
            return None
        attainment = self.attainment(name, now=now)
        if attainment is None:
            return None
        budget = 1.0 - objective.target
        if budget <= 0.0:
            return None  # a 100% objective has no budget to burn
        return (1.0 - attainment) / budget

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Dict[str, Any]]:
        """Per-objective state, the shape ``/obs`` and ``repro top`` render."""
        if now is None:
            now = time.monotonic()
        window = self.window()
        out: Dict[str, Dict[str, Any]] = {}
        for name, objective in self._objectives.items():
            with self._lock:
                good, total = self._window_counts_locked(name, now)
            attainment = good / total if total else None
            budget = 1.0 - objective.target
            burn = (
                (1.0 - attainment) / budget
                if attainment is not None and budget > 0.0
                else None
            )
            out[name] = {
                "description": objective.description,
                "objective": objective.target,
                "window_s": window,
                "samples": total,
                "good": good,
                "bad": total - good,
                "attainment": attainment,
                "burn_rate": burn,
                "budget_remaining": (1.0 - burn) if burn is not None else None,
                "met": (attainment >= objective.target)
                if attainment is not None
                else None,
            }
        return out

    def reset(self) -> None:
        with self._lock:
            for samples in self._samples.values():
                samples.clear()


#: Process-wide tracker over :data:`DEFAULT_OBJECTIVES`.
SLO = SloTracker()


def record_action_latency(elapsed_s: float) -> None:
    """Feed one session-action latency (threshold: ``REPRO_SLO_ACTION_SECONDS``)."""
    SLO.record("action_latency", elapsed_s <= slo_action_threshold())


def record_request(status: int) -> None:
    """Feed one completed HTTP request (5xx other than 503 burns budget)."""
    SLO.record("request_errors", status < 500 or status == 503)


def record_admission(admitted: bool) -> None:
    """Feed one session-create admission decision."""
    SLO.record("admission", admitted)
