"""Latency histograms — log-scale buckets with exact-rank percentiles.

PRAGUE's evaluation story is a latency *budget*, and budgets are about tails:
a p99 ``action.new`` that blows past the 2 s drawing gap breaks blending for
one user in a hundred even when the mean hides comfortably.  This module is
the distribution-recording half of ``repro.obs`` — counters say *how often*,
spans say *where in one session*, histograms say *how long, across every
session the process has served*.

Design constraints, in order:

* **always on.**  Unlike spans and counters, histograms record even when
  ``REPRO_TRACE=0`` — they are the only way to see tails in production-shaped
  runs, so they must be cheap enough to never turn off.  One
  :meth:`Histogram.record` is a bisect over ~130 precomputed boundaries plus
  four scalar updates; the cost is bounded (together with the flight
  recorder) by ``benchmarks/bench_obs_overhead.py``.
* **fixed log-scale buckets.**  Boundaries grow geometrically (ratio
  ``2**(1/4) ≈ 1.19``) from 100 ns to ~200 s, so relative resolution is
  constant (~19 %) across six decades and two histograms are mergeable
  bucket-by-bucket.
* **exact rank extraction.**  :meth:`percentile` computes the exact
  nearest-rank index ``⌈p/100·n⌉`` over the bucket counts — the returned
  value is the upper edge of the bucket holding that rank (clamped to the
  observed max), i.e. a certified upper bound that is within one bucket
  ratio of the true order statistic.  The property tests pin this against a
  brute-force sorted-list reference.

>>> h = Histogram("demo")
>>> for ms in (1, 2, 3, 100):
...     h.record(ms / 1000)
>>> h.count
4
>>> h.percentile(50) <= 0.0024  # within one bucket ratio of 2 ms
True
>>> h.percentile(99) == h.max   # top rank clamps to the observed maximum
True

The process-wide registry (:data:`HISTOGRAMS`) is keyed by dotted site
names; engine actions and instrumented sites feed it through
:func:`observe`, and :func:`repro.obs.metrics.full_snapshot` carries the
summaries to the exporters and ``python -m repro trace``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Tuple

#: Smallest resolvable latency (100 ns) and per-bucket growth ratio.
_BASE_SECONDS = 1e-7
_GROWTH = 2.0 ** 0.25

#: Percentiles every summary reports.
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)


def _boundaries() -> Tuple[float, ...]:
    bounds: List[float] = []
    edge = _BASE_SECONDS
    while edge < 200.0:  # ~130 buckets: 100 ns .. ~200 s
        bounds.append(edge)
        edge *= _GROWTH
    bounds.append(edge)
    return tuple(bounds)


#: Shared bucket upper edges; bucket ``i`` holds values in
#: ``(_BOUNDS[i-1], _BOUNDS[i]]`` (bucket 0: ``[0, _BOUNDS[0]]``).
_BOUNDS: Tuple[float, ...] = _boundaries()


def bucket_index(seconds: float) -> int:
    """The bucket a value falls into (shared scale across all histograms)."""
    if seconds <= _BASE_SECONDS:
        return 0
    return bisect_right(_BOUNDS, seconds)


class Histogram:
    """One site's latency distribution: log buckets + scalar accumulators."""

    __slots__ = ("name", "count", "sum", "min", "max", "_counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._counts: Dict[int, int] = {}

    def record(self, seconds: float) -> None:
        """Record one observation (negative inputs clamp to 0)."""
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        index = bucket_index(seconds)
        self._counts[index] = self._counts.get(index, 0) + 1

    def percentile(self, p: float) -> float:
        """Upper bound on the ``p``-th percentile (exact nearest-rank bucket).

        The rank is the exact nearest-rank index over all recorded values;
        the return value is the upper edge of the rank's bucket, clamped to
        the observed maximum — so it always lies in the same bucket as the
        true order statistic.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(-(-self.count * p // 100)))  # ceil(count*p/100)
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                edge = _BOUNDS[index] if index < len(_BOUNDS) else self.max
                return min(edge, self.max)
        return self.max  # pragma: no cover - ranks always land in a bucket

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready, mergeable copy of the full distribution state.

        Unlike :meth:`summary` (which collapses to percentiles) this keeps
        the raw bucket counts, so two snapshots taken in different
        *processes* can be combined without losing a sample — the basis of
        the cross-process worker-telemetry merge
        (:mod:`repro.obs.snapshot`).  Bucket keys are stringified indices
        (JSON objects only key on strings).
        """
        return {
            "count": self.count,
            "sum_s": self.sum,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "buckets": {str(i): n for i, n in sorted(self._counts.items())},
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one — exactly.

        Both sides share the fixed log-scale boundaries, so the merge is a
        bucket-wise sum: the merged histogram is *identical* (same buckets,
        count, min/max, hence same exact-rank percentiles) to one that
        observed the concatenation of both sample streams.  Pinned by the
        property test in ``tests/obs/test_snapshot_merge.py``.

        >>> a, b = Histogram("left"), Histogram("right")
        >>> for ms in (1, 2):
        ...     a.record(ms / 1000)
        >>> b.record(0.1)
        >>> a.merge_snapshot(b.snapshot())
        >>> a.count
        3
        >>> a.percentile(99) == 0.1  # the merged max is b's sample
        True
        """
        added = int(snap.get("count", 0))
        if added <= 0:
            return
        self.count += added
        self.sum += float(snap.get("sum_s", 0.0))
        self.min = min(self.min, float(snap.get("min_s", 0.0)))
        self.max = max(self.max, float(snap.get("max_s", 0.0)))
        for index, n in snap.get("buckets", {}).items():
            index = int(index)
            self._counts[index] = self._counts.get(index, 0) + int(n)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready scalar view: count/sum/min/max plus p50/p90/p99."""
        out: Dict[str, Any] = {
            "count": self.count,
            "sum_s": self.sum,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }
        for p in SUMMARY_PERCENTILES:
            out[f"p{p:g}_s"] = self.percentile(p)
        return out

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count})"


#: The process-wide registry every instrumented site records into.
HISTOGRAMS: Dict[str, Histogram] = {}


def observe(name: str, seconds: float) -> None:
    """Record ``seconds`` into histogram ``name`` (creating it on first use).

    Always on — this is deliberately *not* gated on :data:`repro.obs.TRACER`:
    distributions must survive production-shaped runs with tracing off.
    """
    h = HISTOGRAMS.get(name)
    if h is None:
        h = HISTOGRAMS[name] = Histogram(name)
    h.record(seconds)


def histogram_summaries() -> Dict[str, Dict[str, Any]]:
    """Name-sorted ``{site: summary}`` of every non-empty histogram."""
    return {
        name: HISTOGRAMS[name].summary()
        for name in sorted(HISTOGRAMS)
        if HISTOGRAMS[name].count
    }


def snapshot_histograms() -> Dict[str, Dict[str, Any]]:
    """Mergeable ``{site: Histogram.snapshot()}`` of every non-empty histogram."""
    return {
        name: HISTOGRAMS[name].snapshot()
        for name in sorted(HISTOGRAMS)
        if HISTOGRAMS[name].count
    }


def merge_histograms(snaps: Dict[str, Dict[str, Any]]) -> None:
    """Fold a :func:`snapshot_histograms` capture into the process registry.

    Sites missing locally are created; sites present on both sides merge
    bucket-wise (see :meth:`Histogram.merge_snapshot`).  This is how the
    parent process absorbs verification-worker telemetry — after the merge,
    :func:`histogram_summaries` accounts for every sample the workers
    recorded.
    """
    for name, snap in snaps.items():
        h = HISTOGRAMS.get(name)
        if h is None:
            h = HISTOGRAMS[name] = Histogram(name)
        h.merge_snapshot(snap)


def total_observations() -> int:
    """Total recorded samples across all histograms (overhead accounting)."""
    return sum(h.count for h in HISTOGRAMS.values())


def reset_histograms() -> None:
    """Drop every histogram (test/bench isolation)."""
    HISTOGRAMS.clear()
