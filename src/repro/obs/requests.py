"""Request-scoped correlation: one id stitches client → handler → worker.

The service mints (or honors) an ``X-Prague-Request`` id per HTTP request
and enters :func:`request_scope` for the duration of the dispatch.  While
the scope is active, every flight-recorder event and every *root* tracer
span created on that thread is stamped with the id — and because
:func:`repro.obs.snapshot.worker_context` forwards the current id into
pool-worker chunk payloads, events recorded *inside a worker process* carry
the same id home through the delta merge.  ``GET /v1/requests/<id>`` then
reassembles the whole story for a postmortem.

The scope is a plain ``threading.local`` — ``ThreadingHTTPServer`` gives
every connection its own thread, and the pool workers are separate
processes seeded explicitly via :func:`set_request_id`, so no further
plumbing is needed.

:class:`RequestLog` is the always-on completed-request ring behind the
``/obs`` slowest/recent surfacing: bounded (``REPRO_SLO_REQUEST_LOG``),
keyed by request id, cheap enough to run untraced (one lock + dict insert
per request, bounded by ``bench_obs_overhead``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.config import slo_request_log_size

_SCOPE = threading.local()

#: Latched to True the first time any thread in this process enters a scope
#: (and never reset).  The recorder and tracer read this *module attribute
#: directly* before paying the thread-local lookup: a ``threading.local``
#: getattr costs several hundred ns, and charging it on every recorder call
#: in processes that never serve HTTP (benches, batch replays, the default
#: posture measured by ``bench_obs_overhead``) would double the per-record
#: price for ids that are always ``None``.
_EVER_SCOPED = False


def current_request_id() -> Optional[str]:
    """The request id of the active scope on this thread (``None`` outside)."""
    return getattr(_SCOPE, "request_id", None)


def set_request_id(request_id: Optional[str]) -> None:
    """Unconditionally (re)seed this thread's request id.

    Used by :func:`repro.obs.snapshot.begin_worker_capture` where there is
    no enclosing scope to restore — worker processes are reset wholesale
    before every chunk.  Handler threads should prefer
    :func:`request_scope`.
    """
    global _EVER_SCOPED
    _EVER_SCOPED = True
    _SCOPE.request_id = request_id


@contextmanager
def request_scope(request_id: Optional[str]) -> Iterator[None]:
    """Make ``request_id`` the current id for the dynamic extent of the body."""
    global _EVER_SCOPED
    _EVER_SCOPED = True
    previous = current_request_id()
    _SCOPE.request_id = request_id
    try:
        yield
    finally:
        _SCOPE.request_id = previous


class RequestLog:
    """Thread-safe bounded ring of completed HTTP requests, keyed by id.

    Unlike the flight recorder this is *always on*: the slowest-requests
    view is exactly the thing an operator reaches for after the fact, when
    nobody thought to enable tracing beforehand.  A replayed (client-
    supplied) id overwrites its previous entry — last response wins, which
    is what a retry storm should look like in the log.
    """

    def __init__(self, size: Optional[int] = None) -> None:
        self._size_override = size
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._seq = 0

    def _capacity(self) -> int:
        if self._size_override is not None:
            return max(int(self._size_override), 1)
        return slo_request_log_size()

    def record(
        self,
        request_id: str,
        method: str,
        path: str,
        status: int,
        duration_s: float,
        session_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append one completed request; returns the stored entry."""
        entry: Dict[str, Any] = {
            "request_id": str(request_id),
            "method": str(method),
            "path": str(path),
            "status": int(status),
            "duration_ms": round(1000.0 * float(duration_s), 3),
            "session": session_id,
            "t_s": time.perf_counter(),
        }
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            self._entries.pop(entry["request_id"], None)
            self._entries[entry["request_id"]] = entry
            capacity = self._capacity()
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
        return dict(entry)

    def get(self, request_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._entries.get(request_id)
            return dict(entry) if entry is not None else None

    def recent(self, n: int = 8) -> List[Dict[str, Any]]:
        """The last ``n`` completed requests, oldest first."""
        with self._lock:
            tail = list(self._entries.values())[-max(int(n), 0):]
        return [dict(entry) for entry in tail]

    def slowest(self, n: int = 8) -> List[Dict[str, Any]]:
        """The ``n`` slowest requests still in the ring, slowest first."""
        with self._lock:
            entries = [dict(entry) for entry in self._entries.values()]
        entries.sort(key=lambda e: (-e["duration_ms"], -e["seq"]))
        return entries[:max(int(n), 0)]

    def for_session(self, session_id: str, limit: int = 16) -> List[Dict[str, Any]]:
        """The last ``limit`` requests that touched ``session_id``, oldest first."""
        with self._lock:
            matching = [
                dict(entry) for entry in self._entries.values()
                if entry["session"] == session_id
            ]
        return matching[-max(int(limit), 0):]

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide completed-request ring (the service's access log).
REQUEST_LOG = RequestLog()
