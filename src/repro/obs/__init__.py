"""``repro.obs`` — zero-dependency tracing, metrics and SRT accounting.

PRAGUE's whole premise is a latency budget: per-edge work must hide inside
GUI latency, and what does not hide becomes the SRT at *Run*.  This package
is the measurement substrate for that budget — it answers *where each
millisecond of a formulation session goes* without changing any answer:

* **spans** (:mod:`repro.obs.tracer`) — hierarchical timed regions.  The
  engine opens one ``action.*`` span per GUI gesture with children for SPIG
  construction, candidate algebra and verification;
* **metrics** (:mod:`repro.obs.metrics`) — counters/gauges for cache
  hits/misses (canonical LRU, A2F/A2I posting lists), bitset-vs-frozenset
  path taken, and verification-pool task counts and fallbacks;
* **histograms** (:mod:`repro.obs.histogram`) — always-on latency
  distributions (log-scale buckets, exact-rank p50/p90/p99) per engine
  action and per instrumented site, alive even with tracing off;
* **flight recorder** (:mod:`repro.obs.recorder`) — an always-on bounded
  ring of structured events (action boundaries, cache transitions, pool
  runs/fallbacks, exceptions), dumpable as a post-mortem bundle;
* **SRT ledger** (:mod:`repro.obs.srt`) — the per-action decomposition into
  *hidden-in-GUI-latency* vs *residual-at-Run* work;
* **exporters** (:mod:`repro.obs.export`) — JSON (schema-versioned
  envelopes), Prometheus text format and human-readable tables, consumed by
  the ``python -m repro trace``, ``postmortem`` and ``top`` CLIs;
* **continuous export** (:mod:`repro.obs.exporter`) — with
  ``REPRO_OBS_EXPORT`` set, events stream to ``events.jsonl`` and the
  metrics snapshot is periodically rewritten (``metrics.prom`` +
  ``snapshot.json``), so a live session can be watched with
  ``python -m repro top``;
* **continuous profiling** (:mod:`repro.obs.profiler`) — a statistical
  wall-clock sampler (``REPRO_PROFILE_HZ``) folding ``sys._current_frames()``
  into collapsed stacks attributed per engine action and request id, with a
  ``tracemalloc`` memory tier and collapsed-stack/flamegraph export via
  ``python -m repro profile``;
* **request correlation** (:mod:`repro.obs.requests`) — a thread-local
  request-id scope: while the service dispatches a request, every recorder
  event and root span is stamped with the id, worker deltas carry it home,
  and the always-on :data:`~repro.obs.requests.REQUEST_LOG` ring keeps the
  completed-request access log behind ``/obs`` and ``/v1/requests/<id>``;
* **SLOs** (:mod:`repro.obs.slo`) — rolling-window attainment and
  error-budget burn rates for declarative objectives (action latency under
  the GUI window, error rate, admission rate), surfaced in
  ``full_snapshot()`` and the Prometheus export;
* **cross-process merge** (:mod:`repro.obs.snapshot`) — verification-pool
  workers capture counter/histogram/recorder deltas locally and the parent
  merges them back (exact bucket-wise histogram sums, per-worker provenance
  labels, timestamp-interleaved events), so ``full_snapshot()`` accounts
  for every observation at any ``REPRO_WORKERS`` setting.

Tracing is **off by default** and controlled by ``REPRO_TRACE``; histograms
and the flight recorder are **on by default** (``REPRO_RECORDER=0`` turns
the recorder off) — see ``docs/CONFIGURATION.md``.  The combined always-on
cost is bounded by ``benchmarks/bench_obs_overhead.py``.  Programmatic use
needs no environment variable:

>>> from repro import obs
>>> with obs.trace() as tracer:
...     with obs.span("session", queries=1):
...         with obs.span("action.new"):
...             obs.count("candidates.path.bitset")
>>> print(obs.render_span_tree(tracer.roots).split()[0])
session
>>> obs.METRICS.snapshot()["counters"]
{'candidates.path.bitset': 1}

Instrumented modules never *require* tracing: with the tracer disabled the
engine behaves byte-for-byte identically (pinned by
``tests/obs/test_trace_noop_equivalence.py`` via the differential oracle,
and likewise for the recorder by ``tests/obs/test_recorder.py``).
"""

from repro.obs.export import (
    SCHEMA_VERSION,
    diff_trace_reports,
    envelope,
    open_envelope,
    render_histograms,
    render_ledger,
    render_metrics,
    render_prometheus,
    render_report_diff,
    render_request_bundle,
    render_span_tree,
    render_top,
    report_to_dict,
)
from repro.obs.exporter import EXPORTER, ContinuousExporter
from repro.obs.histogram import (
    HISTOGRAMS,
    Histogram,
    histogram_summaries,
    merge_histograms,
    observe,
    reset_histograms,
    snapshot_histograms,
)
from repro.obs.metrics import METRICS, Metrics, count, full_snapshot, gauge
from repro.obs.profiler import (
    PROFILER,
    Profiler,
    folded_lines,
    profile_action,
    profile_block,
    profile_summary,
    render_flamegraph_html,
    top_frames,
)
from repro.obs.recorder import RECORDER, FlightRecorder, render_postmortem
from repro.obs.requests import (
    REQUEST_LOG,
    RequestLog,
    current_request_id,
    request_scope,
    set_request_id,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLO,
    SloObjective,
    SloTracker,
    record_action_latency,
    record_admission,
    record_request,
)
from repro.obs.snapshot import (
    begin_worker_capture,
    collect_worker_delta,
    merge_worker_delta,
    worker_context,
)
from repro.obs.srt import (
    LedgerEntry,
    SrtLedger,
    build_ledger,
    events_from_reports,
)
from repro.obs.tracer import (
    TRACER,
    Span,
    Tracer,
    add_attrs,
    span,
    sync_env,
    trace,
)

__all__ = [
    "TRACER",
    "Tracer",
    "Span",
    "span",
    "add_attrs",
    "sync_env",
    "trace",
    "METRICS",
    "Metrics",
    "count",
    "gauge",
    "full_snapshot",
    "HISTOGRAMS",
    "Histogram",
    "observe",
    "histogram_summaries",
    "snapshot_histograms",
    "merge_histograms",
    "reset_histograms",
    "RECORDER",
    "FlightRecorder",
    "render_postmortem",
    "PROFILER",
    "Profiler",
    "profile_action",
    "profile_block",
    "profile_summary",
    "folded_lines",
    "top_frames",
    "render_flamegraph_html",
    "REQUEST_LOG",
    "RequestLog",
    "current_request_id",
    "request_scope",
    "set_request_id",
    "SLO",
    "SloTracker",
    "SloObjective",
    "DEFAULT_OBJECTIVES",
    "record_action_latency",
    "record_admission",
    "record_request",
    "EXPORTER",
    "ContinuousExporter",
    "worker_context",
    "begin_worker_capture",
    "collect_worker_delta",
    "merge_worker_delta",
    "LedgerEntry",
    "SrtLedger",
    "build_ledger",
    "events_from_reports",
    "SCHEMA_VERSION",
    "envelope",
    "open_envelope",
    "render_span_tree",
    "render_metrics",
    "render_histograms",
    "render_prometheus",
    "render_top",
    "render_request_bundle",
    "render_ledger",
    "report_to_dict",
    "diff_trace_reports",
    "render_report_diff",
]
