"""The per-action SRT ledger — the paper's response-time accounting as data.

Section VIII-B defines system response time (SRT) as the delay between
pressing *Run* and seeing results.  PRAGUE's claim is that blended
processing hides per-action work inside the GUI latency the user spends
drawing (≥ 2 s per edge), leaving only the *residual* at Run.  The ledger
makes that decomposition explicit, one row per engine-processed action:

* ``processing_seconds`` — engine work triggered by the action;
* ``latency_seconds``    — GUI latency the action offered as cover;
* ``hidden_seconds``     — work (including carried backlog) absorbed by
  that cover;
* ``backlog_after``      — work left over, carried to the next action.

The fold is exactly :func:`repro.core.session.formulate`'s timeline model
(``backlog' = max(0, backlog + processing − latency)``), so

``total_processing == hidden_total + srt_seconds``

always holds (:meth:`SrtLedger.residual_error` is the floating-point
remainder) — the invariant behind the acceptance check of
``python -m repro trace``, which additionally reconciles
``total_processing`` against the end-to-end wall time of the replay.

>>> from repro.obs.srt import build_ledger
>>> ledger = build_ledger(
...     [("new e1", 0.4, 2.0), ("new e2", 2.5, 2.0)], run_seconds=0.3)
>>> ledger.backlog_before_run  # 0.5 s of step-2 work did not fit
0.5
>>> ledger.srt_seconds         # felt at Run: backlog + Run work
0.8
>>> round(ledger.hidden_seconds, 6)  # hidden inside the 2 s drawing gaps
2.4
>>> round(ledger.total_processing, 6)
3.2
>>> abs(ledger.residual_error()) < 1e-9
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

#: One ledger input: (action label, processing seconds, offered GUI latency).
LedgerEvent = Tuple[str, float, float]


@dataclass(frozen=True)
class LedgerEntry:
    """One action's row in the SRT ledger."""

    index: int
    action: str
    processing_seconds: float
    latency_seconds: float
    hidden_seconds: float
    backlog_after: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "action": self.action,
            "processing_seconds": self.processing_seconds,
            "latency_seconds": self.latency_seconds,
            "hidden_seconds": self.hidden_seconds,
            "backlog_after": self.backlog_after,
        }


@dataclass(frozen=True)
class SrtLedger:
    """The full session decomposition: formulation rows plus the Run row."""

    entries: Tuple[LedgerEntry, ...]
    run_seconds: float

    @property
    def backlog_before_run(self) -> float:
        """Work still pending when Run is pressed."""
        return self.entries[-1].backlog_after if self.entries else 0.0

    @property
    def srt_seconds(self) -> float:
        """What the user feels at Run: carried backlog + Run-time work."""
        return self.backlog_before_run + self.run_seconds

    @property
    def hidden_seconds(self) -> float:
        """Total work absorbed by GUI latency across the session."""
        return sum(e.hidden_seconds for e in self.entries)

    @property
    def total_processing(self) -> float:
        """All engine work: every action's processing plus Run."""
        return sum(e.processing_seconds for e in self.entries) + self.run_seconds

    def residual_error(self) -> float:
        """Floating-point slack in ``total == hidden + srt`` (≈ 0)."""
        return self.total_processing - (self.hidden_seconds + self.srt_seconds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entries": [e.to_dict() for e in self.entries],
            "run_seconds": self.run_seconds,
            "backlog_before_run": self.backlog_before_run,
            "srt_seconds": self.srt_seconds,
            "hidden_seconds": self.hidden_seconds,
            "total_processing": self.total_processing,
        }


def build_ledger(
    events: Iterable[LedgerEvent],
    run_seconds: float,
    latency: Union[float, Sequence[float], None] = None,
) -> SrtLedger:
    """Fold ``events`` through the blended-timeline model into a ledger.

    ``events`` are ``(label, processing_seconds, latency_seconds)`` triples.
    ``latency`` optionally overrides the third element of every event —
    pass a scalar for a uniform per-action latency, or a sequence aligned
    with ``events``.
    """
    entries: List[LedgerEntry] = []
    backlog = 0.0
    for index, (label, processing, offered) in enumerate(events):
        if latency is not None:
            offered = (
                latency if isinstance(latency, (int, float))
                else latency[index]
            )
        available = backlog + processing
        hidden = min(available, offered)
        backlog = available - hidden
        entries.append(LedgerEntry(
            index=index,
            action=label,
            processing_seconds=processing,
            latency_seconds=offered,
            hidden_seconds=hidden,
            backlog_after=backlog,
        ))
    return SrtLedger(entries=tuple(entries), run_seconds=run_seconds)


def events_from_reports(
    reports: Iterable[Any],
    latency: float,
) -> List[LedgerEvent]:
    """Ledger events from engine :class:`~repro.core.prague.StepReport`\\ s.

    Each report is labelled ``"<action> e<edge_id>"`` and offered the uniform
    ``latency`` — the model of :func:`repro.core.session.formulate`, where
    every formulation gesture grants one drawing gap of cover.
    """
    events: List[LedgerEvent] = []
    for report in reports:
        label = report.action.value
        if report.edge_id is not None:
            label += f" e{report.edge_id}"
        events.append((label, report.processing_seconds, latency))
    return events
