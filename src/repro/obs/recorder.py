"""The flight recorder — an always-on bounded ring of structured events.

Spans and histograms tell you where time went; when a session *diverges* or
a verification pool falls over you instead need to know **what just
happened**, in order, with arguments.  The flight recorder is the black box
for that: a bounded ``deque`` of structured events that every interesting
site appends to — action boundaries, cache hit/miss *transitions* (recorded
only when the streak flips, so steady-state hits cost one dict probe),
bitset-vs-frozenset path switches, verification-pool runs and fallbacks, and
exceptions with their tracebacks.

It is on by default (``REPRO_RECORDER=0`` disables it; ``docs/``
``CONFIGURATION.md``) precisely because it only pays off for the failures
nobody planned to reproduce: the ring holds the last ``REPRO_RECORDER_SIZE``
events (default 512) at a per-event cost bounded by
``benchmarks/bench_obs_overhead.py``.

:meth:`FlightRecorder.dump` freezes the ring into a schema-versioned
post-mortem bundle (see :mod:`repro.obs.export`); the differential-oracle
harness embeds one in every divergence report, a pool fallback writes one to
``REPRO_POSTMORTEM_DIR`` when set, and ``python -m repro postmortem
<bundle>`` renders either back into a timeline:

>>> recorder = FlightRecorder(size=4)
>>> recorder.force(True)
>>> recorder.record("action.start", op="new")
>>> recorder.transition("a2f.lookup", "hit")
>>> recorder.transition("a2f.lookup", "hit")   # same streak: not recorded
>>> recorder.transition("a2f.lookup", "miss")  # flip: recorded
>>> [e["kind"] for e in recorder.snapshot()]
['action.start', 'transition', 'transition']
"""

from __future__ import annotations

import json
import os
import time
import traceback as _traceback
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.config import recorder_enabled, recorder_size
from repro.obs.exporter import EXPORTER as _EXPORTER
from repro.obs import requests as _requests


class FlightRecorder:
    """Process-wide bounded event ring (single-threaded, like the tracer)."""

    def __init__(self, size: Optional[int] = None) -> None:
        self.enabled: bool = recorder_enabled()
        self._override: Optional[bool] = None
        self._size: int = recorder_size() if size is None else size
        self._size_raw = os.environ.get("REPRO_RECORDER_SIZE")
        self._events: Deque[Dict[str, Any]] = deque(maxlen=self._size)
        self._seq: int = 0
        self._dumps: int = 0
        self._last_state: Dict[str, str] = {}
        #: Count of record/transition *invocations* while enabled — the
        #: per-session volume the overhead benchmark multiplies by per-call
        #: cost (deduplicated transitions still pay the probe, so they count).
        self.calls: int = 0

    # ------------------------------------------------------------------
    # switching (mirrors Tracer: env knob + programmatic override)
    # ------------------------------------------------------------------
    def sync_env(self) -> bool:
        """Refresh ``enabled``/capacity from the environment (per action)."""
        if self._override is None:
            self.enabled = recorder_enabled()
        # Re-parse the capacity only when the raw env string changed: this
        # runs at every engine action, and int()-in-try/except per call would
        # dominate sync_env's budget in bench_obs_overhead.
        raw = os.environ.get("REPRO_RECORDER_SIZE")
        if raw != self._size_raw:
            self._size_raw = raw
            size = recorder_size()
            if size != self._size:
                self._size = size
                self._events = deque(self._events, maxlen=size)
        return self.enabled

    def force(self, enabled: Optional[bool]) -> None:
        """Install (or with ``None`` remove) an override of the env knob."""
        self._override = enabled
        self.enabled = recorder_enabled() if enabled is None else enabled

    def reset(self) -> None:
        """Drop all events and transition memory (test/bench isolation)."""
        self._events.clear()
        self._last_state.clear()
        self._seq = 0
        self.calls = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Append one structured event (no-op while disabled)."""
        if not self.enabled:
            return
        self.calls += 1
        self._seq += 1
        event: Dict[str, Any] = {
            "seq": self._seq,
            "t_s": time.perf_counter(),
            "kind": kind,
        }
        event.update(fields)
        # Module-attribute guard before the thread-local lookup: processes
        # that never enter a request scope (benches, batch replays) keep the
        # pre-correlation record price.
        if _requests._EVER_SCOPED:
            request_id = getattr(_requests._SCOPE, "request_id", None)
            if request_id is not None:
                event.setdefault("request_id", request_id)
        self._events.append(event)
        if _EXPORTER.active:
            _EXPORTER.emit(event)
            if kind == "action.end":
                _EXPORTER.tick()

    def transition(self, name: str, state: str) -> None:
        """Record ``name``'s state only when it *changes* (streak compression).

        Cache sites call this per probe; a run of 10 000 hits costs 10 000
        dict probes but records exactly one event per flip, so the ring holds
        history instead of noise.
        """
        if not self.enabled:
            return
        self.calls += 1
        previous = self._last_state.get(name)
        if previous == state:
            return
        self._last_state[name] = state
        self._seq += 1
        event = {
            "seq": self._seq,
            "t_s": time.perf_counter(),
            "kind": "transition",
            "name": name,
            "from": previous,
            "to": state,
        }
        if _requests._EVER_SCOPED:
            request_id = getattr(_requests._SCOPE, "request_id", None)
            if request_id is not None:
                event["request_id"] = request_id
        self._events.append(event)
        if _EXPORTER.active:
            _EXPORTER.emit(event)

    def merge(self, events: List[Dict[str, Any]],
              source: Optional[str] = None) -> None:
        """Interleave another process's event snapshot into this ring.

        Events arrive from a verification worker's delta
        (:mod:`repro.obs.snapshot`): each is tagged with its ``source``
        provenance label (``src`` field) and slotted into the ring by its
        ``t_s`` timestamp — ``perf_counter`` is CLOCK_MONOTONIC, shared
        across forked processes, so parent and worker timelines are directly
        comparable.  Sequence numbers are reassigned over the merged order
        (they are per-ring, not global), and the ring bound still holds:
        oldest merged events fall off first.  Merged events also stream to
        the continuous exporter, so a tailing ``repro top`` sees worker
        activity as soon as the pool returns.
        """
        if not self.enabled or not events:
            return
        incoming: List[Dict[str, Any]] = []
        for event in events:
            event = dict(event)
            if source is not None:
                event.setdefault("src", source)
            incoming.append(event)
        combined = sorted(
            list(self._events) + incoming,
            key=lambda e: e.get("t_s", 0.0),
        )
        self._seq += len(incoming)
        retained = combined[-self._size:]
        for seq, event in enumerate(
            retained, start=self._seq - len(retained) + 1
        ):
            event["seq"] = seq
        self._events = deque(retained, maxlen=self._size)
        if _EXPORTER.active:
            for event in incoming:
                _EXPORTER.emit(event)

    def record_exception(self, kind: str, exc: BaseException,
                         **fields: Any) -> None:
        """Append an exception event carrying the full traceback text."""
        if not self.enabled:
            return
        self.record(
            kind,
            error=f"{type(exc).__name__}: {exc}",
            traceback="".join(_traceback.format_exception(
                type(exc), exc, exc.__traceback__
            )),
            **fields,
        )

    # ------------------------------------------------------------------
    # post-mortems
    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """The ring's current contents, oldest first (copied)."""
        return [dict(event) for event in self._events]

    def dump(self, reason: str = "manual", **extra: Any) -> Dict[str, Any]:
        """Freeze the ring into a schema-versioned post-mortem bundle."""
        from repro.obs.export import envelope

        self._dumps += 1
        payload: Dict[str, Any] = {
            "reason": reason,
            "dump_index": self._dumps,
            "capacity": self._size,
            "dropped": max(0, self._seq - len(self._events)),
            "events": self.snapshot(),
        }
        payload.update(extra)
        return envelope("postmortem", payload)

    def dump_to_dir(
        self,
        reason: str,
        directory: Union[str, Path, None] = None,
        **extra: Any,
    ) -> Optional[Path]:
        """Write a post-mortem bundle under ``directory`` (or the
        ``REPRO_POSTMORTEM_DIR`` knob); returns the path, or ``None`` when no
        directory is configured or the recorder is disabled."""
        from repro.config import postmortem_dir

        if not self.enabled:
            return None
        if directory is None:
            directory = postmortem_dir()
        if directory is None:
            return None
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        bundle = self.dump(reason=reason, **extra)
        slug = "".join(c if c.isalnum() else "-" for c in reason)
        path = directory / f"postmortem-{bundle['dump_index']:04d}-{slug}.json"
        path.write_text(json.dumps(bundle, indent=2, default=str) + "\n")
        return path


#: The process-wide recorder every instrumented site appends to.
RECORDER = FlightRecorder()


def render_postmortem(bundle: Dict[str, Any]) -> str:
    """A post-mortem bundle as a human-readable timeline.

    Accepts the bundle as loaded from JSON (schema-enveloped) and renders a
    header plus one line per event: sequence number, milliseconds since the
    first retained event, kind, and the event's fields.
    """
    events = bundle.get("events", [])
    lines = [
        f"post-mortem: {bundle.get('reason', '?')} "
        f"(schema {bundle.get('schema', 1)}, "
        f"{len(events)} events, {bundle.get('dropped', 0)} older dropped, "
        f"capacity {bundle.get('capacity', '?')})"
    ]
    if not events:
        lines.append("(recorder ring was empty)")
        return "\n".join(lines)
    t0 = events[0].get("t_s", 0.0)
    width = max(len(str(e.get("seq", ""))) for e in events)
    for event in events:
        skip = {"seq", "t_s", "kind", "traceback"}
        fields = " ".join(
            f"{k}={event[k]}" for k in event if k not in skip
        )
        offset_ms = 1000 * (event.get("t_s", t0) - t0)
        lines.append(
            f"  #{event.get('seq', 0):>{width}}  +{offset_ms:9.2f} ms  "
            f"{event.get('kind', '?'):<18}{fields}"
        )
        if "traceback" in event:
            for tb_line in str(event["traceback"]).rstrip().splitlines():
                lines.append(f"      | {tb_line}")
    return "\n".join(lines)
