"""Chunked corpus generation for the 10–100x scale sweep.

The serial generators (:func:`repro.datasets.aids.generate_aids_like`,
:func:`repro.datasets.synthetic.generate_graphgen_like`) thread one RNG
through the whole corpus, which makes them inherently sequential: graph *i*
cannot be produced without producing graphs ``0..i-1`` first.  At the
10–100x sizes the scale sweep targets (``benchmarks/bench_build_scaling.py``)
that is the second serial bottleneck after index construction.

:func:`generate_scaled` removes it by generating in **fixed-size chunks**
with per-chunk derived seeds: chunk boundaries depend only on
``(num_graphs, chunk_size)`` and each chunk's seed only on ``(seed, chunk
index)``, so the corpus is *identical at every worker count* — ``workers``
changes wall-clock time, never bytes.  A ``(kind, num_graphs, seed)`` triple
names a reproducible dataset, exactly like the serial generators — but note
it is a *different* dataset family: ``generate_scaled("aids", n, seed)`` does
not reproduce ``generate_aids_like(n, seed)`` graph-for-graph, because the
RNG restarts at every chunk boundary.  The statistical shape (atom mix,
degree caps, ring structure) is unchanged — only the stream partitioning
differs.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Tuple

from repro.datasets.aids import generate_aids_like
from repro.datasets.synthetic import generate_graphgen_like
from repro.graph.database import GraphDatabase

#: Graphs per generation chunk.  Part of the dataset identity — changing it
#: changes every ``generate_scaled`` corpus — so it is a constant, not a knob.
CHUNK_SIZE = 500

_GENERATORS: Dict[str, Callable[..., GraphDatabase]] = {
    "aids": generate_aids_like,
    "graphgen": generate_graphgen_like,
}


def chunk_plan(num_graphs: int, chunk_size: int = CHUNK_SIZE) -> List[int]:
    """Chunk sizes covering ``num_graphs`` — all full except a last remainder.

    >>> chunk_plan(1200)
    [500, 500, 200]
    >>> chunk_plan(3)
    [3]
    """
    if num_graphs <= 0:
        return []
    full, rest = divmod(num_graphs, chunk_size)
    return [chunk_size] * full + ([rest] if rest else [])


def chunk_seed(seed: int, index: int) -> int:
    """Derived seed for chunk ``index`` — a fixed integer mix, so the chunk
    streams are decorrelated but the mapping never changes across versions."""
    return (seed * 1_000_003 + index * 7_919 + 12_289) & 0x7FFF_FFFF


def _generate_chunk(task: Tuple[str, int, int, Dict[str, Any]]) -> GraphDatabase:
    kind, size, seed, kwargs = task
    return _GENERATORS[kind](size, seed=seed, **kwargs)


def generate_scaled(
    kind: str,
    num_graphs: int,
    seed: int = 2012,
    workers: int = 1,
    **kwargs: Any,
) -> GraphDatabase:
    """Generate a ``kind`` corpus (``"aids"`` | ``"graphgen"``) of
    ``num_graphs`` graphs in :data:`CHUNK_SIZE`-graph chunks.

    ``workers > 1`` generates chunks in parallel processes (``fork``
    platforms; silently serial elsewhere).  The output is identical at every
    worker count.  Extra ``kwargs`` pass through to the underlying generator
    (e.g. ``bond_labels=True`` for AIDS-like corpora).
    """
    if kind not in _GENERATORS:
        raise ValueError(f"unknown corpus kind {kind!r} (have: {sorted(_GENERATORS)})")
    tasks = [
        (kind, size, chunk_seed(seed, i), kwargs)
        for i, size in enumerate(chunk_plan(num_graphs))
    ]
    if (
        workers > 1
        and len(tasks) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    ):
        with multiprocessing.get_context("fork").Pool(
            processes=min(workers, len(tasks))
        ) as pool:
            chunks = pool.map(_generate_chunk, tasks)
    else:
        chunks = [_generate_chunk(t) for t in tasks]
    graphs = [g for chunk in chunks for _, g in chunk.items()]
    return GraphDatabase(graphs)
