"""Query workloads — the Q1-Q8 analogues of Figure 8.

The paper's queries were drawn by human volunteers over the AIDS and
synthetic datasets: up to ~9 edges, with containment queries for Figure 9(a)
and similarity queries whose ``Rq`` empties at a known ("bold") step.  Q1 is
the *best case* (every candidate verification-free, all in ``Rfree``) and
Q2-Q3, Q5-Q8 the *worst case* (all candidates in ``Rver``).

This module rebuilds that workload programmatically against whatever dataset
instance is in use:

* containment queries are connected subgraphs sampled from data graphs (so
  ``Rq`` stays non-empty through every step);
* similarity queries take a sampled subgraph and extend it with an
  in-vocabulary edge until the exact candidate set provably empties
  (``Rq = ∅`` is sound — Algorithm 3), at a controllable formulation step;
* queries are then *classified* by the fraction of verification-free
  candidates at the final step, and the generator picks the extremes to play
  the best-case/worst-case roles.

Everything is seeded and deterministic per (database, indexes, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.prague import PragueEngine
from repro.core.session import QuerySpec
from repro.graph.database import GraphDatabase
from repro.graph.generators import random_connected_subgraph
from repro.graph.labeled_graph import Graph, NodeId
from repro.index.builder import ActionAwareIndexes


def connected_edge_order(
    g: Graph, rng: Optional[random.Random] = None
) -> List[Tuple[NodeId, NodeId]]:
    """An edge order in which every prefix is connected (GUI-drawable)."""
    edges = list(g.edges())
    if not edges:
        return []
    if rng is not None:
        rng.shuffle(edges)
    order = [edges[0]]
    nodes: Set[NodeId] = set(edges[0])
    rest = edges[1:]
    while rest:
        for i, e in enumerate(rest):
            if e[0] in nodes or e[1] in nodes:
                order.append(e)
                nodes.update(e)
                del rest[i]
                break
        else:  # disconnected input graph
            order.append(rest.pop(0))
            nodes.update(order[-1])
    return order


def spec_from_graph(
    name: str,
    g: Graph,
    order: Optional[Sequence[Tuple[NodeId, NodeId]]] = None,
    rng: Optional[random.Random] = None,
) -> QuerySpec:
    """Wrap a query graph into a formulation script."""
    edges = tuple(order) if order is not None else tuple(connected_edge_order(g, rng))
    nodes = {n: g.label(n) for n in g.nodes()}
    edge_labels = {}
    for u, v in edges:
        label = g.edge_label(u, v)
        if label is not None:
            edge_labels[(u, v)] = label
    return QuerySpec(name=name, nodes=nodes, edges=edges, edge_labels=edge_labels)


@dataclass
class WorkloadQuery:
    """A query spec plus its measured role in the evaluation."""

    spec: QuerySpec
    empty_step: Optional[int]  # 1-based step at which Rq empties (bold edge)
    free_fraction: float       # |Rfree| / |Rfree ∪ Rver| at the final step

    @property
    def is_similarity(self) -> bool:
        return self.empty_step is not None


def _formulate_probe(
    db: GraphDatabase,
    indexes: ActionAwareIndexes,
    spec: QuerySpec,
    sigma: int,
) -> Optional[WorkloadQuery]:
    """Dry-run a spec, recording when Rq empties and the Rfree share."""
    engine = PragueEngine(db, indexes, sigma=sigma)
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    empty_step: Optional[int] = None
    for step, (u, v) in enumerate(spec.edges, start=1):
        report = engine.add_edge(u, v, spec.edge_labels.get((u, v)))
        if empty_step is None and report.rq_size == 0 and not engine.sim_flag:
            empty_step = step
        if empty_step is None and engine.sim_flag:
            empty_step = step
    if empty_step is not None and not engine.sim_flag:
        engine.enable_similarity()  # Rq emptied at the last step
    if engine.sim_flag and engine.similar_candidates is not None:
        cands = engine.similar_candidates
        free: Set[int] = set()
        for ids in cands.free.values():
            free |= ids
        total = cands.all_candidates()
        frac = len(free & total) / len(total) if total else 0.0
    else:
        frac = 1.0
    return WorkloadQuery(spec=spec, empty_step=empty_step, free_fraction=frac)


def sample_containment_query(
    db: GraphDatabase,
    rng: random.Random,
    num_edges: int,
    name: str = "Q",
) -> QuerySpec:
    """A query guaranteed to have exact matches (a sampled subgraph)."""
    while True:
        base = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, base, num_edges)
        if sub is not None:
            return spec_from_graph(name, sub, rng=rng)


def sample_similarity_query(
    db: GraphDatabase,
    indexes: ActionAwareIndexes,
    rng: random.Random,
    num_edges: int,
    sigma: int,
    name: str = "Q",
    max_attempts: int = 400,
) -> Optional[WorkloadQuery]:
    """A query whose ``Rq`` provably empties before the final step.

    Built by sampling a real subgraph and repeatedly attempting to extend it
    with an in-vocabulary edge (new labeled node, or a closure) so that the
    exact candidate set becomes empty mid-formulation.
    """
    labels = db.node_label_universe()
    for _ in range(max_attempts):
        base = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, base, num_edges - 1)
        if sub is None:
            continue
        g = sub.copy()
        anchors = list(g.nodes())
        anchor = anchors[rng.randrange(len(anchors))]
        if rng.random() < 0.3 and len(anchors) > 2:
            other = anchors[rng.randrange(len(anchors))]
            if other == anchor or g.has_edge(anchor, other):
                continue
            g.add_edge(anchor, other)
        else:
            new_id = max(int(n) for n in g.nodes()) + 1
            g.add_node(new_id, labels[rng.randrange(len(labels))])
            g.add_edge(anchor, new_id)
        spec = spec_from_graph(name, g, rng=rng)
        probe = _formulate_probe(db, indexes, spec, sigma)
        if probe is not None and probe.empty_step is not None:
            return probe
    return None


def sample_joined_similarity_query(
    db: GraphDatabase,
    indexes: ActionAwareIndexes,
    rng: random.Random,
    num_edges: int,
    sigma: int,
    name: str = "Q",
    max_attempts: int = 400,
    min_empty_step: int = 3,
) -> Optional[WorkloadQuery]:
    """A *worst-case-leaning* similarity query: two real motifs bridged.

    Sampling two motifs from different data graphs and joining them with one
    bridge edge tends to produce queries whose high SPIG levels hold NIF
    fragments with non-empty candidate intersections — exactly the paper's
    worst case, where every candidate lands in ``Rver`` and must be verified.
    """
    for _ in range(max_attempts):
        k1 = rng.randint(2, max(2, num_edges - 3))
        k2 = num_edges - 1 - k1
        if k2 < 1:
            continue
        g1 = db[rng.randrange(len(db))]
        g2 = db[rng.randrange(len(db))]
        a = random_connected_subgraph(rng, g1, k1)
        b = random_connected_subgraph(rng, g2, k2)
        if a is None or b is None:
            continue
        g = a.copy()
        offset = max(int(n) for n in g.nodes()) + 1
        b = b.relabel_nodes({n: int(n) + offset for n in b.nodes()})
        for node in b.nodes():
            g.add_node(node, b.label(node))
        for u, v in b.edges():
            g.add_edge(u, v, b.edge_label(u, v))
        a_nodes = list(a.nodes())
        b_nodes = list(b.nodes())
        g.add_edge(
            a_nodes[rng.randrange(len(a_nodes))],
            b_nodes[rng.randrange(len(b_nodes))],
        )
        # Draw the A motif first, then the bridge, then the B motif, so the
        # candidate set empties mid-formulation (the paper's bold edge).
        order = connected_edge_order(g)
        spec = spec_from_graph(name, g, order=order)
        probe = _formulate_probe(db, indexes, spec, sigma)
        if (
            probe is not None
            and probe.empty_step is not None
            and probe.empty_step >= min(min_empty_step, num_edges)
        ):
            return probe
    return None


def standard_similarity_workload(
    db: GraphDatabase,
    indexes: ActionAwareIndexes,
    seed: int = 2012,
    num_queries: int = 4,
    num_edges: int = 7,
    sigma: int = 3,
    pool_size: int = 24,
    prefix: str = "Q",
) -> Dict[str, WorkloadQuery]:
    """The Q1-Q4 (or Q5-Q8) analogue set.

    A pool of similarity queries is sampled and ranked by verification-free
    fraction; the first returned query plays the paper's best case (maximal
    ``Rfree`` share), the rest the worst cases (minimal share).
    """
    rng = random.Random(seed)
    pool: List[WorkloadQuery] = []
    for i in range(pool_size):
        # Mix both samplers: perturbed real subgraphs lean best-case, joined
        # motifs lean worst-case; the ranking below picks the extremes.
        if i % 2 == 0:
            q = sample_similarity_query(
                db, indexes, rng, num_edges, sigma, name=f"{prefix}cand{i}"
            )
        else:
            q = sample_joined_similarity_query(
                db, indexes, rng, num_edges, sigma, name=f"{prefix}cand{i}"
            )
        if q is not None:
            pool.append(q)
    if len(pool) < num_queries:
        raise RuntimeError(
            f"could only build {len(pool)} similarity queries; "
            "increase max_attempts or relax parameters"
        )
    pool.sort(key=lambda wq: -wq.free_fraction)
    chosen = [pool[0]] + pool[-(num_queries - 1):]
    out: Dict[str, WorkloadQuery] = {}
    for i, wq in enumerate(chosen, start=1):
        name = f"{prefix}{i}"
        spec = QuerySpec(
            name=name,
            nodes=wq.spec.nodes,
            edges=wq.spec.edges,
            edge_labels=wq.spec.edge_labels,
        )
        out[name] = WorkloadQuery(
            spec=spec, empty_step=wq.empty_step, free_fraction=wq.free_fraction
        )
    return out


def standard_containment_workload(
    db: GraphDatabase,
    seed: int = 2012,
    num_queries: int = 6,
    sizes: Sequence[int] = (3, 4, 5, 6, 7, 8),
    prefix: str = "C",
) -> Dict[str, QuerySpec]:
    """The six subgraph-containment queries of Figure 9(a) (from [6])."""
    rng = random.Random(seed)
    out: Dict[str, QuerySpec] = {}
    for i in range(num_queries):
        size = sizes[i % len(sizes)]
        name = f"{prefix}{i + 1}"
        out[name] = sample_containment_query(db, rng, size, name=name)
    return out
