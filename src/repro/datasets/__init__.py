"""Dataset builders: AIDS-like molecules, GraphGen-like synthetics, workloads."""

from repro.datasets.aids import ATOM_WEIGHTS, generate_aids_like
from repro.datasets.queries import (
    WorkloadQuery,
    connected_edge_order,
    sample_containment_query,
    sample_similarity_query,
    spec_from_graph,
    standard_containment_workload,
    standard_similarity_workload,
)
from repro.datasets.scale import CHUNK_SIZE, chunk_plan, chunk_seed, generate_scaled
from repro.datasets.synthetic import generate_graphgen_like

__all__ = [
    "generate_aids_like",
    "generate_graphgen_like",
    "generate_scaled",
    "chunk_plan",
    "chunk_seed",
    "CHUNK_SIZE",
    "ATOM_WEIGHTS",
    "WorkloadQuery",
    "connected_edge_order",
    "spec_from_graph",
    "sample_containment_query",
    "sample_similarity_query",
    "standard_containment_workload",
    "standard_similarity_workload",
]
