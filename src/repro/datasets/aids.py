"""AIDS-Antiviral-like molecular graph generator.

The paper evaluates on the AIDS Antiviral dataset: 40 000 chemical-compound
graphs, average 25 nodes / 27 edges, maxima 222 / 251.  The dataset itself is
not redistributable here, so this generator produces a corpus with the same
statistical shape (DESIGN.md documents the substitution):

* node labels follow a skewed atom distribution dominated by carbon;
* graphs are molecule-like: a random tree with valence-capped degrees plus a
  few ring-closing edges (5/6-rings preferred);
* node counts are right-skewed around the paper's average, truncated at the
  paper's maximum.

Everything is seeded, so a (size, seed) pair is a reproducible dataset.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph

#: Skewed atom frequencies (fractions of all atoms), carbon-dominated like
#: real small-molecule corpora.  Valence caps bound node degrees.
ATOM_WEIGHTS: Dict[str, float] = {
    "C": 0.720,
    "O": 0.105,
    "N": 0.095,
    "S": 0.030,
    "Cl": 0.020,
    "P": 0.010,
    "F": 0.008,
    "Br": 0.006,
    "Cu": 0.003,
    "Hg": 0.003,
}

_VALENCE: Dict[str, int] = {
    "C": 4, "O": 2, "N": 3, "S": 4, "Cl": 1, "P": 4, "F": 1, "Br": 1,
    "Cu": 3, "Hg": 2,
}


def _sample_num_nodes(rng: random.Random, avg_nodes: int, max_nodes: int) -> int:
    """Right-skewed node count: lognormal around the average, truncated."""
    mu = math.log(avg_nodes) - 0.08
    value = int(round(rng.lognormvariate(mu, 0.40)))
    return max(3, min(value, max_nodes))


#: Bond-type distribution used when ``bond_labels`` is requested: single
#: bonds dominate, double bonds are occasional, ring closures lean aromatic.
BOND_WEIGHTS = (("s", 0.82), ("d", 0.14), ("t", 0.04))


def _bond(rng: random.Random, ring_closure: bool) -> str:
    if ring_closure and rng.random() < 0.6:
        return "a"  # aromatic ring bond
    r = rng.random()
    cumulative = 0.0
    for label, weight in BOND_WEIGHTS:
        cumulative += weight
        if r < cumulative:
            return label
    return "s"


def _molecule(
    rng: random.Random,
    num_nodes: int,
    extra_ring_edges: int,
    bond_labels: bool = False,
) -> Graph:
    g = Graph()
    labels: List[str] = rng.choices(
        list(ATOM_WEIGHTS), weights=list(ATOM_WEIGHTS.values()), k=num_nodes
    )
    # Heavier atoms at the chain interior read better; ensure node 0 can bond.
    if _VALENCE[labels[0]] < 2:
        labels[0] = "C"
    for i, label in enumerate(labels):
        g.add_node(i, label)
    # Random tree with valence caps: attach each atom to an earlier atom
    # that still has free valence.
    for i in range(1, num_nodes):
        anchors = [
            j for j in range(i) if g.degree(j) < _VALENCE[g.label(j)]
        ]
        if not anchors:  # all valences saturated; bond to a carbon anyway
            anchors = [j for j in range(i) if g.label(j) == "C"] or [0]
        g.add_edge(
            i, anchors[rng.randrange(len(anchors))],
            _bond(rng, False) if bond_labels else None,
        )
    # Ring closures: connect atoms at tree distance 4-5 (5/6-member rings).
    for _ in range(extra_ring_edges):
        candidates = _ring_closure_candidates(g)
        if not candidates:
            break
        u, v = candidates[rng.randrange(len(candidates))]
        g.add_edge(u, v, _bond(rng, True) if bond_labels else None)
    return g


def _ring_closure_candidates(g: Graph) -> List[Tuple[int, int]]:
    """Non-adjacent atom pairs at distance 4-5 with free valence."""
    out: List[Tuple[int, int]] = []
    dist = _bfs_distances(g)
    for u in g.nodes():
        if g.degree(u) >= _VALENCE[g.label(u)]:
            continue
        for v, d in dist[u].items():
            if v <= u or d not in (4, 5):
                continue
            if g.degree(v) >= _VALENCE[g.label(v)] or g.has_edge(u, v):
                continue
            out.append((u, v))
    return out


def _bfs_distances(g: Graph) -> Dict[int, Dict[int, int]]:
    from collections import deque

    out: Dict[int, Dict[int, int]] = {}
    for start in g.nodes():
        dist = {start: 0}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            if dist[node] >= 5:
                continue
            for nbr in g.neighbors(node):
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    queue.append(nbr)
        out[start] = dist
    return out


def generate_aids_like(
    num_graphs: int,
    seed: int = 2012,
    avg_nodes: int = 25,
    max_nodes: int = 222,
    bond_labels: bool = False,
) -> GraphDatabase:
    """A molecule-like corpus with the AIDS dataset's reported shape.

    ``bond_labels`` adds chemical bond types (single/double/triple/aromatic)
    as edge labels — the paper's model supports labeled edges throughout, and
    this variant exercises that path end to end.
    """
    rng = random.Random(seed)
    graphs: List[Graph] = []
    for _ in range(num_graphs):
        n = _sample_num_nodes(rng, avg_nodes, max_nodes)
        # avg 25 nodes / 27 edges  =>  about 2-3 ring closures per molecule.
        rings = rng.choices((0, 1, 2, 3, 4, 5), weights=(8, 18, 30, 24, 14, 6))[0]
        graphs.append(_molecule(rng, n, rings, bond_labels=bond_labels))
    return GraphDatabase(graphs)
