"""GraphGen-style synthetic datasets (Section VIII-A).

The paper generates synthetic corpora "using the Graphgen of FG-Index [2]"
with sizes 10K-80K, average 30 edges per graph and average graph density 0.1.
GraphGen's density is ``D = 2·|E| / (|V|·(|V|−1))``; with E = 30 and D = 0.1
that fixes |V| ≈ 25.  Labels are drawn uniformly from a configurable label
alphabet.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.graph.database import GraphDatabase
from repro.graph.generators import random_connected_graph
from repro.graph.labeled_graph import Graph


def _nodes_for_density(num_edges: int, density: float) -> int:
    """Solve ``density = 2E / (V(V−1))`` for V."""
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    v = (1.0 + math.sqrt(1.0 + 8.0 * num_edges / density)) / 2.0
    return max(2, int(round(v)))


def generate_graphgen_like(
    num_graphs: int,
    seed: int = 2012,
    avg_edges: int = 30,
    density: float = 0.1,
    num_labels: int = 8,
) -> GraphDatabase:
    """A synthetic corpus matching the paper's GraphGen parameters."""
    rng = random.Random(seed)
    labels = [f"L{i}" for i in range(num_labels)]
    graphs: List[Graph] = []
    for _ in range(num_graphs):
        edges = max(2, int(round(rng.gauss(avg_edges, avg_edges * 0.2))))
        nodes = _nodes_for_density(edges, density)
        graphs.append(random_connected_graph(rng, nodes, edges, labels))
    return GraphDatabase(graphs)
