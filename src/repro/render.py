"""Rendering: text and Graphviz-DOT views of graphs, SPIGs and results.

The paper displays results with ZGRViewer [9], a GraphViz front-end.  This
module is the headless equivalent: it renders data graphs, query fragments,
SPIGs (with their Fragment Lists, like Figure 7) and ranked result panels
either as plain text for the terminal or as DOT source that any Graphviz
install can draw.  Similarity matches can highlight the MCCS — "It can be
easily depicted in the results by highlighting the MCCS in the matched data
graphs" (Section IV-A).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.results import QueryResults, SimilarityMatch
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import find_embedding
from repro.graph.labeled_graph import Graph, NodeId
from repro.graph.mccs import iter_connected_subgraph_levels
from repro.spig.spig import SPIG, SpigVertex


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def graph_to_text(g: Graph, title: str = "") -> str:
    """A compact adjacency listing: one ``label(id) - label(id)`` per edge."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if g.num_edges == 0:
        for node in sorted(g.nodes(), key=repr):
            lines.append(f"  {g.label(node)}({node})")
        return "\n".join(lines) if lines else "(empty graph)"
    for u, v in sorted(g.edges(), key=repr):
        label = g.edge_label(u, v)
        bond = f" -[{label}]- " if label else " - "
        lines.append(f"  {g.label(u)}({u}){bond}{g.label(v)}({v})")
    return "\n".join(lines)


def _fragment_list_text(vertex: SpigVertex) -> str:
    fl = vertex.fragment_list
    if fl.freq_id is not None:
        return f"freqId={fl.freq_id}"
    if fl.dif_id is not None:
        return f"difId={fl.dif_id}"
    if fl.dead:
        return "dead (label never occurs)"
    return (f"Phi={sorted(fl.phi)} Upsilon={sorted(fl.upsilon)}")


def spig_to_text(spig: SPIG) -> str:
    """A per-level listing of a SPIG, in the spirit of Figure 7."""
    lines = [f"SPIG S{spig.edge_id} ({spig.num_vertices} vertices)"]
    for level in spig.levels():
        lines.append(f"  level {level}:")
        for vertex in spig.vertices_at(level):
            sets = " ".join(
                "{" + ",".join(str(e) for e in sorted(es)) + "}"
                for es in sorted(vertex.edge_sets, key=sorted)
            )
            lines.append(
                f"    v({vertex.spig_id},{vertex.position}) "
                f"edges={sets}  [{_fragment_list_text(vertex)}]"
            )
    return "\n".join(lines)


def results_to_text(
    results: QueryResults, db: Optional[GraphDatabase] = None, limit: int = 10
) -> str:
    """The Panel 4 view: exact matches, or ranked approximate matches."""
    if results.is_empty:
        return "no matches"
    lines: List[str] = []
    if results.exact_ids:
        shown = results.exact_ids[:limit]
        suffix = " ..." if len(results.exact_ids) > limit else ""
        lines.append(
            f"{len(results.exact_ids)} exact matches: {shown}{suffix}"
        )
    for match in sorted(results.similar)[:limit]:
        tag = " (verification-free)" if match.verification_free else ""
        lines.append(
            f"  #{match.graph_id}: {match.distance} edge(s) missing{tag}"
        )
    if len(results.similar) > limit:
        lines.append(f"  ... {len(results.similar) - limit} more")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# DOT rendering
# ----------------------------------------------------------------------
def _dot_id(prefix: str, node: NodeId) -> str:
    return f"{prefix}{str(node).replace('-', '_').replace(' ', '_')}"


def graph_to_dot(
    g: Graph,
    name: str = "G",
    highlight_nodes: Iterable[NodeId] = (),
    highlight_edges: Iterable[Tuple[NodeId, NodeId]] = (),
) -> str:
    """Graphviz source for one graph; highlights render the MCCS overlay."""
    hn = set(highlight_nodes)
    he = {frozenset(e) for e in highlight_edges}
    lines = [f'graph "{name}" {{', "  node [shape=circle];"]
    for node in sorted(g.nodes(), key=repr):
        style = ' style=filled fillcolor="gold"' if node in hn else ""
        lines.append(
            f'  {_dot_id("n", node)} [label="{g.label(node)}"{style}];'
        )
    for u, v in sorted(g.edges(), key=repr):
        label = g.edge_label(u, v)
        attrs = []
        if label:
            attrs.append(f'label="{label}"')
        if frozenset((u, v)) in he:
            attrs.append('color="red" penwidth=2')
        attr_text = f" [{' '.join(attrs)}]" if attrs else ""
        lines.append(f'  {_dot_id("n", u)} -- {_dot_id("n", v)}{attr_text};')
    lines.append("}")
    return "\n".join(lines)


def spig_to_dot(spig: SPIG, name: Optional[str] = None) -> str:
    """Graphviz source for a SPIG: ranked levels, Fragment Lists as labels."""
    name = name or f"S{spig.edge_id}"
    lines = [f'digraph "{name}" {{', "  rankdir=TB;", "  node [shape=box];"]
    for level in spig.levels():
        ids = []
        for vertex in spig.vertices_at(level):
            vid = f"v{vertex.spig_id}_{vertex.position}"
            ids.append(vid)
            label = (
                f"v({vertex.spig_id},{vertex.position})\\n"
                f"{_fragment_list_text(vertex)}"
            )
            lines.append(f'  {vid} [label="{label}"];')
        lines.append("  { rank=same; " + "; ".join(ids) + "; }")
    for level in spig.levels():
        for vertex in spig.vertices_at(level):
            vid = f"v{vertex.spig_id}_{vertex.position}"
            for child in sorted(
                vertex.children, key=lambda c: (c.spig_id, c.position)
            ):
                cid = f"v{child.spig_id}_{child.position}"
                lines.append(f"  {vid} -> {cid};")
    lines.append("}")
    return "\n".join(lines)


def mccs_highlight(
    query: Graph, data_graph: Graph, mccs_edges: int
) -> Tuple[List[NodeId], List[Tuple[NodeId, NodeId]]]:
    """Data-graph nodes/edges realising a maximum connected common subgraph.

    Finds a connected ``mccs_edges``-edge subgraph of ``query`` that embeds
    in ``data_graph`` and maps it over — the highlight the GUI draws on an
    approximate match.  Returns two empty lists when none exists.
    """
    for level, subsets in iter_connected_subgraph_levels(query):
        if level != mccs_edges:
            continue
        for subset in subsets:
            fragment = query.edge_subgraph(subset)
            embedding = find_embedding(fragment, data_graph)
            if embedding is None:
                continue
            nodes = sorted(embedding.values(), key=repr)
            edges = [
                (embedding[u], embedding[v]) for u, v in fragment.edges()
            ]
            return nodes, edges
        break
    return [], []


def match_to_dot(
    query: Graph,
    db: GraphDatabase,
    match: SimilarityMatch,
) -> str:
    """DOT of a matched data graph with its MCCS highlighted (Section IV-A)."""
    data_graph = db[match.graph_id]
    nodes, edges = mccs_highlight(
        query, data_graph, query.num_edges - match.distance
    )
    return graph_to_dot(
        data_graph,
        name=f"match_{match.graph_id}_dist{match.distance}",
        highlight_nodes=nodes,
        highlight_edges=edges,
    )
