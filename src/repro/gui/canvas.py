"""A headless model of the paper's visual interface (Figure 2).

The four panels:

* Panel 1 — database chooser / new-canvas control (:meth:`VisualInterface.open_database`);
* Panel 2 — the label palette: unique node labels of the dataset in
  lexicographic order (:class:`LabelPalette`);
* Panel 3 — the query canvas where nodes are dropped and edges drawn
  (:class:`QueryCanvas`);
* Panel 4 — the results panel (:class:`ResultsPanel`).

The canvas wires user gestures to a :class:`~repro.core.prague.PragueEngine`,
so every drawn edge triggers the blended processing of Algorithm 1, and the
option dialogue of Section IV-B pops up (``pending_dialogue``) when ``Rq``
empties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.actions import QueryStatus
from repro.core.modify import DeletionSuggestion
from repro.core.prague import PragueEngine, RunReport, StepReport
from repro.core.results import QueryResults
from repro.exceptions import SessionError
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import NodeId
from repro.index.builder import ActionAwareIndexes


class LabelPalette:
    """Panel 2: the dataset's node labels, lexicographically ordered."""

    def __init__(self, db: GraphDatabase) -> None:
        self._labels = db.node_label_universe()

    def labels(self) -> List[str]:
        return list(self._labels)

    def __contains__(self, label: str) -> bool:
        return label in self._labels


@dataclass
class CanvasNode:
    """A node dropped on Panel 3, with its display position."""

    node_id: int
    label: str
    position: Tuple[float, float]


class ResultsPanel:
    """Panel 4: whatever the last *Run* produced."""

    def __init__(self) -> None:
        self.results: Optional[QueryResults] = None

    def display(self, results: QueryResults) -> None:
        self.results = results

    def clear(self) -> None:
        self.results = None


class QueryCanvas:
    """Panel 3: node drops and edge draws, delegating to the engine."""

    def __init__(self, engine: PragueEngine, palette: LabelPalette) -> None:
        self.engine = engine
        self.palette = palette
        self.nodes: Dict[int, CanvasNode] = {}
        self._next_node_id = 1
        self._selected: Optional[int] = None

    def drop_node(
        self, label: str, position: Tuple[float, float] = (0.0, 0.0)
    ) -> int:
        """Drag a label from Panel 2 and drop it on the canvas."""
        if label not in self.palette:
            raise SessionError(
                f"label {label!r} is not in the palette (Panel 2 only offers "
                "labels that appear in the dataset)"
            )
        node_id = self._next_node_id
        self._next_node_id += 1
        self.nodes[node_id] = CanvasNode(node_id, label, position)
        self.engine.add_node(node_id, label)
        return node_id

    def left_click(self, node_id: int) -> None:
        """Select the first endpoint of the edge being drawn."""
        if node_id not in self.nodes:
            raise SessionError(f"no node {node_id} on the canvas")
        self._selected = node_id

    def right_click(self, node_id: int) -> StepReport:
        """Complete the edge from the selected node (left+right click idiom)."""
        if self._selected is None:
            raise SessionError("left-click a node first")
        if node_id not in self.nodes:
            raise SessionError(f"no node {node_id} on the canvas")
        report = self.engine.add_edge(self._selected, node_id)
        self._selected = None
        return report

    def draw_edge(self, u: int, v: int) -> StepReport:
        """Convenience for the left-click/right-click pair."""
        self.left_click(u)
        return self.right_click(v)

    def delete_edge(self, edge_id: Optional[int] = None) -> StepReport:
        """Delete an edge (``None`` accepts PRAGUE's suggestion)."""
        return self.engine.delete_edge(edge_id)

    def drop_pattern(
        self,
        pattern,
        position: Tuple[float, float] = (0.0, 0.0),
        attach: Optional[Dict[object, int]] = None,
    ) -> List[StepReport]:
        """Drag-and-drop a canned pattern (footnote 1's advanced GUI).

        Pattern labels must all be in the palette; ``attach`` maps pattern
        nodes onto canvas nodes (fusion points).  New pattern nodes appear on
        the canvas around ``position``.
        """
        graph = getattr(pattern, "graph", pattern)
        for label in graph.node_labels():
            if label not in self.palette:
                raise SessionError(
                    f"pattern label {label!r} is not in the palette"
                )
        before = set(self.engine.query.graph().nodes()) if \
            self.engine.query.num_edges else set()
        reports = self.engine.add_pattern(pattern, attach=attach)
        # Mirror the engine's new nodes onto the canvas view.
        x, y = position
        for offset, node in enumerate(
            n for n in self.engine.query.graph().nodes() if n not in before
        ):
            if node not in self.nodes:
                self.nodes[node] = CanvasNode(
                    node, self.engine.query.node_label(node),
                    (x + 10.0 * offset, y),
                )
        # Keep the canvas id counter clear of engine-generated node ids.
        int_ids = [n for n in self.nodes if isinstance(n, int)]
        if int_ids:
            self._next_node_id = max(self._next_node_id, max(int_ids) + 1)
        return reports

    @property
    def status(self) -> QueryStatus:
        """The Status indicator of Figure 3."""
        return self.engine.status


class VisualInterface:
    """The whole GUI: panels plus the option dialogue of Algorithm 1."""

    def __init__(self) -> None:
        self.palette: Optional[LabelPalette] = None
        self.canvas: Optional[QueryCanvas] = None
        self.results_panel = ResultsPanel()
        self._engine: Optional[PragueEngine] = None
        self._db: Optional[GraphDatabase] = None
        self._indexes: Optional[ActionAwareIndexes] = None
        self._sigma = 3

    # ------------------------------------------------------------------
    def open_database(
        self, db: GraphDatabase, indexes: ActionAwareIndexes, sigma: int = 3
    ) -> None:
        """Panel 1: choose the query target."""
        self._db = db
        self._indexes = indexes
        self._sigma = sigma
        self.palette = LabelPalette(db)
        self.new_canvas()

    def new_canvas(self) -> QueryCanvas:
        """Panel 1: start a fresh query canvas."""
        if self._db is None or self._indexes is None or self.palette is None:
            raise SessionError("open a database first (Panel 1)")
        self._engine = PragueEngine(
            self._db, self._indexes, sigma=self._sigma, auto_similarity=False
        )
        self.canvas = QueryCanvas(self._engine, self.palette)
        self.results_panel.clear()
        return self.canvas

    # ------------------------------------------------------------------
    @property
    def engine(self) -> PragueEngine:
        if self._engine is None:
            raise SessionError("open a database first (Panel 1)")
        return self._engine

    @property
    def pending_dialogue(self) -> bool:
        """True when the Section IV-B option dialogue is on screen."""
        return self.engine.option_pending

    def dialogue_suggestion(self) -> Optional[DeletionSuggestion]:
        return self.engine.suggestion()

    def answer_modify(self, edge_id: Optional[int] = None) -> StepReport:
        """Dialogue answer: modify the query (delete an edge)."""
        return self.engine.delete_edge(edge_id)

    def answer_similarity(self) -> StepReport:
        """Dialogue answer: continue as a similarity query."""
        return self.engine.enable_similarity()

    def run(self) -> RunReport:
        """The Run icon in the query toolbar."""
        report = self.engine.run()
        self.results_panel.display(report.results)
        return report
