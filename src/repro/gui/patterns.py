"""Canned visual patterns — the paper's footnote 1 extension.

"A more advanced and domain-dependent GUI may support drag and drop of canned
patterns or subgraphs (e.g., benzene ring) for composing visual queries."
The paper leaves this out of scope; we implement it as future work: a pattern
is a small labeled graph that the canvas drops in one gesture, while the
engine still processes it edge-at-a-time underneath — every pattern edge gets
its own formulation id and SPIG, so all of Algorithms 1-6 work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.labeled_graph import Graph


@dataclass(frozen=True)
class CannedPattern:
    """A named, drag-and-droppable subgraph."""

    name: str
    description: str
    graph: Graph

    @property
    def size(self) -> int:
        return self.graph.num_edges

    def labels_used(self) -> set:
        return set(self.graph.node_labels())


def _ring(labels: str) -> Graph:
    g = Graph()
    n = len(labels)
    for i, label in enumerate(labels):
        g.add_node(i, label)
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def _chain(labels: str) -> Graph:
    g = Graph()
    for i, label in enumerate(labels):
        g.add_node(i, label)
    for i in range(len(labels) - 1):
        g.add_edge(i, i + 1)
    return g


def benzene_ring() -> CannedPattern:
    """The paper's own example: a six-carbon ring."""
    return CannedPattern(
        name="benzene ring",
        description="six-membered all-carbon ring",
        graph=_ring("CCCCCC"),
    )


def pyridine_ring() -> CannedPattern:
    return CannedPattern(
        name="pyridine ring",
        description="six-membered ring with one nitrogen",
        graph=_ring("CCCCCN"),
    )


def carboxyl_group() -> CannedPattern:
    g = Graph()
    g.add_node(0, "C")
    g.add_node(1, "O")
    g.add_node(2, "O")
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    return CannedPattern(
        name="carboxyl group",
        description="C bonded to two oxygens",
        graph=g,
    )


def thioether_bridge() -> CannedPattern:
    return CannedPattern(
        name="thioether bridge",
        description="C-S-C chain",
        graph=_chain("CSC"),
    )


def amine_group() -> CannedPattern:
    return CannedPattern(
        name="amine group",
        description="C-N bond",
        graph=_chain("CN"),
    )


def default_pattern_library() -> List[CannedPattern]:
    """The built-in chemistry-flavoured palette."""
    return [
        benzene_ring(),
        pyridine_ring(),
        carboxyl_group(),
        thioether_bridge(),
        amine_group(),
    ]


def pattern_library_for(db) -> List[CannedPattern]:
    """Patterns whose labels all occur in the dataset (Panel 2's constraint)."""
    universe = set(db.node_label_universe())
    return [
        p for p in default_pattern_library() if p.labels_used() <= universe
    ]
