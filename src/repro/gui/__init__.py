"""Headless GUI substrate: panels, canvas, and simulated participants."""

from repro.gui.canvas import (
    CanvasNode,
    LabelPalette,
    QueryCanvas,
    ResultsPanel,
    VisualInterface,
)
from repro.gui.patterns import (
    CannedPattern,
    default_pattern_library,
    pattern_library_for,
)
from repro.gui.simulator import (
    SimulatedFormulation,
    SimulatedUser,
    UserProfile,
    average_srt,
    participant_panel,
)

__all__ = [
    "VisualInterface",
    "QueryCanvas",
    "LabelPalette",
    "ResultsPanel",
    "CanvasNode",
    "SimulatedUser",
    "SimulatedFormulation",
    "UserProfile",
    "participant_panel",
    "average_srt",
    "CannedPattern",
    "default_pattern_library",
    "pattern_library_for",
]
