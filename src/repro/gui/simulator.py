"""Simulated users — the stand-in for the paper's eight volunteers.

Section VIII-A: participants drew each query five times, averaging ~30 s per
query (≥ 2 s per edge); the first reading was discarded.  A
:class:`SimulatedUser` reproduces that protocol: it draws a
:class:`~repro.core.session.QuerySpec` on the :class:`VisualInterface` with a
randomised per-edge drawing latency (normal around the configured mean,
truncated at the paper's 2 s lower bound), answers the option dialogue
according to its *intent*, and presses Run.

The timeline model mirrors :func:`repro.core.session.formulate`: per-step
engine work overlaps the drawing latency; leftovers accumulate as backlog and
surface in the SRT.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.prague import RunReport
from repro.core.session import QuerySpec
from repro.gui.canvas import VisualInterface
from repro.obs.srt import LedgerEvent, SrtLedger, build_ledger


@dataclass
class UserProfile:
    """Drawing-speed characteristics of one simulated participant."""

    name: str = "volunteer"
    mean_edge_seconds: float = 3.3   # ~30 s for a 9-edge query
    stddev_edge_seconds: float = 0.8
    min_edge_seconds: float = 2.0    # the paper's stated lower bound
    seed: int = 0


@dataclass
class SimulatedFormulation:
    """One full formulation by one user: latencies, backlog, SRT."""

    user: str
    query: str
    edge_latencies: List[float]
    backlog_before_run: float
    run_report: RunReport
    srt_seconds: float
    #: Per-action SRT decomposition (:mod:`repro.obs.srt`).  Dialogue
    #: answers appear as zero-latency rows: the option dialogue blocks the
    #: user, so its processing has no drawing gap to hide in.
    ledger: Optional[SrtLedger] = None

    @property
    def formulation_seconds(self) -> float:
        """QFT — the query formulation time reported in Figure 8."""
        return sum(self.edge_latencies)


class SimulatedUser:
    """Drives the GUI like a trained participant."""

    def __init__(self, profile: UserProfile) -> None:
        self.profile = profile
        self._rng = random.Random(profile.seed)

    def _draw_latency(self) -> float:
        lat = self._rng.gauss(
            self.profile.mean_edge_seconds, self.profile.stddev_edge_seconds
        )
        return max(self.profile.min_edge_seconds, lat)

    def formulate(
        self,
        interface: VisualInterface,
        spec: QuerySpec,
        accept_similarity: bool = True,
    ) -> SimulatedFormulation:
        """Draw ``spec`` edge by edge, answer dialogues, press Run.

        With ``accept_similarity`` the user answers the option dialogue by
        continuing as a similarity query; otherwise they accept PRAGUE's
        deletion suggestion (the Modify path).
        """
        canvas = interface.new_canvas()
        node_ids = {}
        for node, label in spec.nodes.items():
            node_ids[node] = canvas.drop_node(label)
        # Dialogue answers block the user, so they offer zero latency cover;
        # drawn edges offer this user's randomised drawing gap.
        events: List[LedgerEvent] = []
        latencies: List[float] = []
        for u, v in spec.edges:
            if interface.pending_dialogue:
                if accept_similarity:
                    report = interface.answer_similarity()
                else:
                    report = interface.answer_modify()
                events.append(
                    (report.action.value, report.processing_seconds, 0.0)
                )
            report = canvas.draw_edge(node_ids[u], node_ids[v])
            latency = self._draw_latency()
            latencies.append(latency)
            events.append(
                (f"new e{report.edge_id}", report.processing_seconds, latency)
            )
        if interface.pending_dialogue:
            if accept_similarity:
                report = interface.answer_similarity()
            else:
                report = interface.answer_modify()
            events.append(
                (report.action.value, report.processing_seconds, 0.0)
            )
        run_report = interface.run()
        ledger = build_ledger(
            events, run_seconds=run_report.processing_seconds
        )
        return SimulatedFormulation(
            user=self.profile.name,
            query=spec.name,
            edge_latencies=latencies,
            backlog_before_run=ledger.backlog_before_run,
            run_report=run_report,
            srt_seconds=ledger.srt_seconds,
            ledger=ledger,
        )


def participant_panel(
    count: int = 8, seed: int = 2012, mean_edge_seconds: float = 3.3
) -> List[SimulatedUser]:
    """The paper's eight-volunteer panel, as simulated users."""
    rng = random.Random(seed)
    users = []
    for i in range(count):
        profile = UserProfile(
            name=f"volunteer-{i + 1}",
            mean_edge_seconds=max(2.2, rng.gauss(mean_edge_seconds, 0.5)),
            stddev_edge_seconds=max(0.2, rng.gauss(0.8, 0.2)),
            seed=rng.randrange(10**9),
        )
        users.append(SimulatedUser(profile))
    return users


def average_srt(
    interface_factory,
    spec: QuerySpec,
    users: List[SimulatedUser],
    repetitions: int = 5,
    discard_first: bool = True,
) -> float:
    """The paper's protocol: 5 formulations each, first reading ignored."""
    srts: List[float] = []
    for user in users:
        for rep in range(repetitions):
            interface = interface_factory()
            outcome = user.formulate(interface, spec)
            if discard_first and rep == 0:
                continue
            srts.append(outcome.srt_seconds)
    return sum(srts) / len(srts) if srts else 0.0
