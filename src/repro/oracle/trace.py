"""The action-trace model: sessions as replayable, shrinkable data.

A :class:`SessionTrace` is a pure-data description of one formulation
session — the corpus spec, the similarity budget ``σ`` and a tuple of
:class:`TraceAction` gestures.  Everything downstream (config-matrix replay,
the independent oracles, delta-debugging shrinks, paste-able reproducers)
operates on this one representation.

An *observation* is what replay records after each action: candidate sets,
statuses and results — **never timings**, which legitimately vary between
configurations.  Observations are plain dicts of hashable, ordered values so
that two replays can be compared with ``==`` key by key.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.core.prague import PragueEngine, RunReport, StepReport
from repro.graph.labeled_graph import Graph
from repro.oracle.corpus import CorpusSpec

#: Gesture names the fuzzer may emit — the monitored GUI action set plus the
#: canned-pattern and multi-deletion extensions.
ACTION_OPS = (
    "add_node",
    "add_edge",
    "add_pattern",
    "delete_edge",
    "delete_edges",
    "relabel_node",
    "enable_similarity",
    "run",
)


@dataclass(frozen=True)
class TraceAction:
    """One GUI gesture: an op name plus its (literal, hashable) arguments."""

    op: str
    args: Tuple[Any, ...] = ()

    def render(self) -> str:
        """Python-literal form, used verbatim inside generated reproducers."""
        return f"TraceAction({self.op!r}, {self.args!r})"


@dataclass(frozen=True)
class SessionTrace:
    """A fully self-describing session: corpus + σ + the gesture sequence."""

    spec: CorpusSpec
    sigma: int
    actions: Tuple[TraceAction, ...]
    seed: Optional[int] = None  # fuzzer seed, for provenance only

    def without(self, indices: Iterable[int]) -> "SessionTrace":
        """The trace with the given action positions removed (for shrinking)."""
        drop = set(indices)
        return replace(
            self,
            actions=tuple(
                a for i, a in enumerate(self.actions) if i not in drop
            ),
        )

    def __len__(self) -> int:
        return len(self.actions)


# ----------------------------------------------------------------------
# JSON persistence
# ----------------------------------------------------------------------
def _tuplify(value: Any) -> Any:
    """Recursively turn JSON lists back into the tuples replay expects.

    Action arguments must stay hashable (observations are compared with
    ``==`` over tuples), so the list/tuple distinction that JSON erases is
    restored on load.
    """
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def trace_to_dict(trace: SessionTrace) -> Dict[str, Any]:
    """``trace`` as a JSON-ready dict (tuples degrade to lists on dump)."""
    return {
        "spec": asdict(trace.spec),
        "sigma": trace.sigma,
        "seed": trace.seed,
        "actions": [
            {"op": a.op, "args": list(a.args)} for a in trace.actions
        ],
    }


def trace_from_dict(payload: Dict[str, Any]) -> SessionTrace:
    """Rebuild a :class:`SessionTrace` from :func:`trace_to_dict` output."""
    return SessionTrace(
        spec=CorpusSpec(**payload["spec"]),
        sigma=payload["sigma"],
        seed=payload.get("seed"),
        actions=tuple(
            TraceAction(a["op"], _tuplify(a["args"]))
            for a in payload["actions"]
        ),
    )


def save_trace(trace: SessionTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` as pretty-printed JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_dict(trace), indent=2) + "\n")
    return path


def load_trace(path: Union[str, Path]) -> SessionTrace:
    """Read a trace saved by :func:`save_trace` (or written by hand)."""
    return trace_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# applying actions to an engine
# ----------------------------------------------------------------------
def _pattern_graph(nodes, edges) -> Graph:
    g = Graph()
    for node, label in nodes:
        g.add_node(node, label)
    for u, v, elabel in edges:
        g.add_edge(u, v, elabel)
    return g


def apply_action(engine: PragueEngine, action: TraceAction):
    """Perform one gesture on ``engine``; returns the engine's report (if any)."""
    op, args = action.op, action.args
    if op == "add_node":
        node, label = args
        return engine.add_node(node, label)
    if op == "add_edge":
        u, v, elabel = args
        return engine.add_edge(u, v, elabel)
    if op == "add_pattern":
        nodes, edges, attach = args
        return engine.add_pattern(
            _pattern_graph(nodes, edges), attach=dict(attach)
        )
    if op == "delete_edge":
        (edge_id,) = args
        return engine.delete_edge(edge_id)
    if op == "delete_edges":
        (edge_ids,) = args
        return engine.delete_edges(list(edge_ids))
    if op == "relabel_node":
        node, new_label = args
        return engine.relabel_node(node, new_label)
    if op == "enable_similarity":
        return engine.enable_similarity()
    if op == "run":
        return engine.run()
    raise ValueError(f"unknown trace op {op!r}")


# ----------------------------------------------------------------------
# observations
# ----------------------------------------------------------------------
def _fragment_snapshot(engine: PragueEngine):
    """An id-normalised literal of the current query fragment.

    Node ids are ``repr``-ed so the snapshot is orderable and hashable no
    matter what ids the session used; the naive oracle rebuilds a graph from
    it (isomorphic to the real fragment by construction).
    """
    g = engine.query.graph()
    nodes = tuple(sorted((repr(n), g.label(n)) for n in g.nodes()))
    edges = []
    for u, v in g.edges():
        a, b = sorted((repr(u), repr(v)))
        edges.append((a, b, g.edge_label(u, v)))
    return nodes, tuple(sorted(edges, key=lambda e: (e[0], e[1], e[2] or "")))


def snapshot_to_graph(snapshot) -> Graph:
    """Rebuild the (isomorphic) fragment a ``fragment`` observation recorded."""
    nodes, edges = snapshot
    g = Graph()
    for node, label in nodes:
        g.add_node(node, label)
    for u, v, elabel in edges:
        g.add_edge(u, v, elabel)
    return g


def _buckets(engine: PragueEngine):
    sc = engine.similar_candidates
    if sc is None:
        return None
    return {
        level: (
            tuple(sorted(sc.free_at(level))),
            tuple(sorted(sc.ver_at(level))),
        )
        for level in sc.levels()
    }


def observe_step(
    engine: PragueEngine,
    action: TraceAction,
    result,
    error: Optional[BaseException],
) -> Dict[str, Any]:
    """The comparable record of one replay step (state + report, no timings)."""
    obs: Dict[str, Any] = {
        "op": action.op,
        "args": action.args,
        "error": None if error is None else
        f"{type(error).__name__}: {error}",
        "status": engine.status.value,
        "sim_flag": engine.sim_flag,
        "option_pending": engine.option_pending,
        "num_edges": engine.query.num_edges,
        "rq": tuple(sorted(engine.rq)),
        "buckets": _buckets(engine),
        "fragment": _fragment_snapshot(engine),
    }
    if isinstance(result, StepReport):
        obs["report"] = _step_report_obs(result)
    elif isinstance(result, list) and result and \
            isinstance(result[0], StepReport):
        obs["report"] = tuple(_step_report_obs(r) for r in result)
    elif isinstance(result, RunReport):
        obs["run"] = {
            "exact": tuple(result.results.exact_ids),
            "similar": tuple(
                (m.distance, m.graph_id, m.verification_free)
                for m in result.results.similar
            ),
            "verification_free": result.verification_free,
            "candidate_count": result.candidate_count,
        }
    return obs


def _step_report_obs(report: StepReport):
    return (
        report.action.value,
        report.status.value,
        report.edge_id,
        report.rq_size,
        report.candidate_count,
        None if report.suggestion is None else (
            report.suggestion.edge_id,
            tuple(sorted(report.suggestion.candidates)),
        ),
    )
