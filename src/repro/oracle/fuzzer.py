"""The seeded session fuzzer: random-but-valid formulation sessions.

Actions are generated against a live *scratch engine* (replayed under the
reference configuration): a candidate gesture is performed, and only gestures
the engine accepts are recorded.  That keeps traces valid by construction —
connectivity, duplicate-edge and canvas rules are enforced by the engine
itself, not re-implemented here — while still probing the interesting state
space: dead labels, the option dialogue (implicit similarity opt-in),
suggestion-driven deletions, multi-deletions, relabels, mid-session runs.

Everything derives from one ``random.Random(seed)``, so a seed fully
determines a trace (given the corpus spec) and every divergence is
reproducible from ``(spec, seed)`` alone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.core.modify import deletable_edges
from repro.core.prague import PragueEngine
from repro.exceptions import ReproError
from repro.oracle.corpus import DEFAULT_SPEC, CorpusSpec, corpus_for
from repro.oracle.replay import REFERENCE_CONFIG, applied
from repro.oracle.trace import SessionTrace, TraceAction, apply_action

#: A node label no generated corpus uses — exercises the ``dead`` fragment path.
DEAD_LABEL = "ZZ"

_MAX_QUERY_EDGES = 8


def generate_trace(
    seed: int,
    spec: CorpusSpec = DEFAULT_SPEC,
    sigma: Optional[int] = None,
    length: Optional[int] = None,
) -> SessionTrace:
    """A deterministic random session over ``spec``'s corpus."""
    rng = random.Random(seed)
    corpus = corpus_for(spec)
    labels = list(corpus.label_universe)
    if sigma is None:
        sigma = rng.choice((1, 2, 3))
    if length is None:
        length = rng.randint(6, 14)

    recorded: List[TraceAction] = []
    next_node = [0]

    with applied(REFERENCE_CONFIG):
        engine = PragueEngine(
            corpus.db, corpus.indexes, sigma=sigma, auto_similarity=True
        )

        def attempt(action: TraceAction) -> bool:
            try:
                apply_action(engine, action)
            except ReproError:
                return False
            recorded.append(action)
            return True

        def fresh_node() -> str:
            node = f"n{next_node[0]}"
            next_node[0] += 1
            return node

        def pick_label() -> str:
            if rng.random() < 0.04:
                return DEAD_LABEL
            return rng.choice(labels)

        def add_node() -> bool:
            return attempt(
                TraceAction("add_node", (fresh_node(), pick_label()))
            )

        def add_edge() -> bool:
            pair = _edge_candidate(rng, engine)
            if pair is None:
                return False
            return attempt(TraceAction("add_edge", (*pair, None)))

        def add_pattern() -> bool:
            size = rng.randint(2, 3)
            chain = [pick_label() for _ in range(size + 1)]
            attach: Tuple = ()
            if engine.query.num_edges > 0:
                anchor = rng.choice(sorted(
                    engine.query.graph().nodes(), key=repr
                ))
                chain[0] = engine.query.node_label(anchor)
                attach = ((0, anchor),)
            nodes = tuple(enumerate(chain))
            edges = tuple((i, i + 1, None) for i in range(size))
            return attempt(TraceAction("add_pattern", (nodes, edges, attach)))

        def delete_edge() -> bool:
            if engine.query.num_edges == 0:
                return False
            if engine.query.num_edges >= 2 and rng.random() < 0.3:
                # Accept the engine's own suggestion (Algorithm 6, lines 3-8);
                # which edge that is becomes part of the observations.
                return attempt(TraceAction("delete_edge", (None,)))
            choices = deletable_edges(engine.query)
            if not choices:
                return False
            return attempt(
                TraceAction("delete_edge", (rng.choice(choices),))
            )

        def delete_edges() -> bool:
            ids = engine.query.edge_ids()
            if len(ids) < 3:
                return False
            picked = tuple(sorted(rng.sample(ids, 2)))
            return attempt(TraceAction("delete_edges", (picked,)))

        def relabel_node() -> bool:
            if engine.query.num_edges == 0:
                return False
            node = rng.choice(sorted(engine.query.graph().nodes(), key=repr))
            return attempt(
                TraceAction("relabel_node", (node, pick_label()))
            )

        def enable_similarity() -> bool:
            if engine.sim_flag or engine.query.num_edges == 0:
                return False
            return attempt(TraceAction("enable_similarity", ()))

        def run() -> bool:
            if engine.query.num_edges == 0:
                return False
            return attempt(TraceAction("run", ()))

        # Seed the canvas so the session always gets off the ground.
        add_node()
        add_node()
        add_edge()

        moves = (
            (add_node, 2),
            (add_edge, 5),
            (add_pattern, 1),
            (delete_edge, 2),
            (delete_edges, 1),
            (relabel_node, 1),
            (enable_similarity, 1),
            (run, 1),
        )
        while len(recorded) < length:
            fn = _weighted_choice(rng, [
                (fn, w) for fn, w in moves
                if fn not in (add_edge, add_pattern)
                or engine.query.num_edges < _MAX_QUERY_EDGES
            ])
            fn()

        # Every session ends with Run on a non-empty query.
        while engine.query.num_edges == 0:
            add_node()
            add_node()
            add_edge()
        run()

    return SessionTrace(
        spec=spec, sigma=sigma, actions=tuple(recorded), seed=seed
    )


def _edge_candidate(
    rng: random.Random, engine: PragueEngine
) -> Optional[Tuple[str, str]]:
    """A random drawable (u, v): on-canvas, fresh, keeps the fragment connected."""
    query = engine.query
    fragment_nodes: Set = set()
    existing: Set[frozenset] = set()
    for eid in query.edge_ids():
        u, v, _ = query.edge(eid)
        fragment_nodes.update((u, v))
        existing.add(frozenset((u, v)))
    canvas = sorted(query.nodes(), key=repr)
    pairs = []
    for i, u in enumerate(canvas):
        for v in canvas[i + 1:]:
            if frozenset((u, v)) in existing:
                continue
            if fragment_nodes and u not in fragment_nodes \
                    and v not in fragment_nodes:
                continue
            pairs.append((u, v))
    if not pairs:
        return None
    return rng.choice(pairs)


def _weighted_choice(rng: random.Random, moves):
    total = sum(w for _, w in moves)
    roll = rng.random() * total
    acc = 0.0
    for fn, w in moves:
        acc += w
        if roll < acc:
            return fn
    return moves[-1][0]
