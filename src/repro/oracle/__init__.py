"""Differential-testing oracle for the blended formulation/processing engine.

PR 1 gave every hot path a reference twin (bitset candidates vs frozensets,
memoized canonical codes vs recomputation, pooled verification vs serial) —
exactly the configuration matrix where silent divergence bugs hide, and
Algorithm 1's per-edge blending means one wrong candidate set corrupts every
later action of a session.  This package systematically hunts such bugs:

* :mod:`repro.oracle.fuzzer` generates randomized-but-valid formulation
  sessions (seeded, hence reproducible) over small synthetic corpora;
* :mod:`repro.oracle.replay` replays a session under each hot-path
  configuration (``REPRO_BITSET`` on/off × canonical cache on/off ×
  ``REPRO_WORKERS`` 1/N) and captures an observation per step — candidate
  sets, statuses, results; timings are deliberately excluded;
* :mod:`repro.oracle.oracles` adds two independent ground truths: the naive
  scan baseline (no index, no SPIG) and a from-scratch re-formulation of the
  final query (incremental SPIG state must equal fresh state);
* :mod:`repro.oracle.diff` pinpoints the first diverging step;
* :mod:`repro.oracle.shrink` reduces a diverging trace to a minimal
  reproducer and renders it as a paste-able regression test;
* :mod:`repro.oracle.harness` ties it together; ``python -m repro
  oracle-smoke`` runs a bounded seeded sweep for CI.

See docs/CORRECTNESS.md for the workflow.
"""

from repro.oracle.corpus import OracleCorpus, corpus_for
from repro.oracle.diff import Divergence, first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.harness import (
    SessionResult,
    SweepReport,
    check_session,
    run_sweep,
)
from repro.oracle.oracles import fresh_replay_check, naive_baseline_check
from repro.oracle.replay import (
    CONFIG_MATRIX,
    REFERENCE_CONFIG,
    OracleConfig,
    replay_trace,
)
from repro.oracle.shrink import format_reproducer, shrink_trace
from repro.oracle.trace import SessionTrace, TraceAction

__all__ = [
    "CONFIG_MATRIX",
    "Divergence",
    "OracleConfig",
    "OracleCorpus",
    "REFERENCE_CONFIG",
    "SessionResult",
    "SessionTrace",
    "SweepReport",
    "TraceAction",
    "check_session",
    "corpus_for",
    "first_divergence",
    "format_reproducer",
    "fresh_replay_check",
    "generate_trace",
    "naive_baseline_check",
    "replay_trace",
    "run_sweep",
    "shrink_trace",
]
