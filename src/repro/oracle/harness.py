"""The harness: one trace → full verdict; many seeds → sweep report.

:func:`check_session` replays a trace under the reference configuration,
diffs every other matrix cell against it step by step, then runs the two
independent oracles (naive scan, fresh replay) on the reference session.

:func:`run_sweep` fuzzes ``sessions`` seeded traces and checks each one; any
divergence is shrunk to a minimal trace and rendered as a paste-able
regression test.  The sweep's manifest (a plain dict) is what
``python -m repro oracle-smoke`` prints/persists for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.recorder import RECORDER
from repro.oracle.corpus import DEFAULT_SPEC, CorpusSpec, corpus_for
from repro.oracle.diff import Divergence, first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.oracles import fresh_replay_check, naive_baseline_check
from repro.oracle.replay import (
    CONFIG_MATRIX,
    REFERENCE_CONFIG,
    OracleConfig,
    replay_trace,
)
from repro.oracle.shrink import format_reproducer, shrink_trace
from repro.oracle.trace import SessionTrace


@dataclass
class SessionResult:
    """The verdict on one trace across the matrix and both oracles."""

    trace: SessionTrace
    divergences: List[Divergence] = field(default_factory=list)
    steps: int = 0
    replays: int = 0
    shrunk: Optional[SessionTrace] = None
    reproducer: Optional[str] = None
    #: Flight-recorder post-mortem frozen at the moment the first divergence
    #: was detected (``None`` for clean sessions or a disabled recorder).
    flight_recording: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.divergences


def check_session(
    trace: SessionTrace,
    configs: Sequence[OracleConfig] = CONFIG_MATRIX,
    naive: bool = True,
    fresh: bool = True,
) -> SessionResult:
    """Replay ``trace`` everywhere and collect every disagreement."""
    corpus = corpus_for(trace.spec)
    reference = replay_trace(trace, REFERENCE_CONFIG, corpus)
    result = SessionResult(trace=trace, steps=len(trace), replays=1)
    for config in configs:
        if config == REFERENCE_CONFIG:
            continue
        other = replay_trace(trace, config, corpus)
        result.replays += 1
        divergence = first_divergence(
            reference.observations,
            other.observations,
            left=REFERENCE_CONFIG.name,
            right=config.name,
        )
        if divergence is not None:
            result.divergences.append(divergence)
    if naive:
        result.divergences.extend(naive_baseline_check(reference))
    if fresh:
        result.divergences.extend(fresh_replay_check(reference))
    if result.divergences and RECORDER.enabled:
        # Freeze the event ring the moment the verdict turns: the bundle
        # rides in the sweep manifest so a CI divergence arrives with its
        # own post-mortem attached.
        result.flight_recording = RECORDER.dump(
            reason="oracle-divergence",
            seed=trace.seed,
            divergences=[d.describe() for d in result.divergences],
        )
    return result


@dataclass
class SweepReport:
    """Aggregate outcome of a seeded multi-session sweep."""

    spec: CorpusSpec
    base_seed: int
    sessions: int = 0
    total_steps: int = 0
    total_replays: int = 0
    failures: List[SessionResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def manifest(self) -> Dict:
        """The JSON-able summary persisted by ``oracle-smoke``."""
        from dataclasses import asdict

        return {
            "suite": "oracle-smoke",
            "spec": asdict(self.spec),
            "base_seed": self.base_seed,
            "sessions": self.sessions,
            "total_steps": self.total_steps,
            "total_replays": self.total_replays,
            "configs": [c.name for c in CONFIG_MATRIX],
            "oracles": ["naive-baseline", "fresh-replay"],
            "divergence_free": self.ok,
            "failures": [
                {
                    "seed": r.trace.seed,
                    "divergences": [d.describe() for d in r.divergences],
                    "flight_recording": r.flight_recording,
                }
                for r in self.failures
            ],
        }


def run_sweep(
    sessions: int = 50,
    base_seed: int = 0,
    spec: CorpusSpec = DEFAULT_SPEC,
    sigma: Optional[int] = None,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Fuzz + check ``sessions`` seeded traces; shrink whatever diverges."""
    corpus_for(spec)  # build once, up front (shared by all replays)
    report = SweepReport(spec=spec, base_seed=base_seed)
    for offset in range(sessions):
        seed = base_seed + offset
        trace = generate_trace(seed, spec=spec, sigma=sigma)
        result = check_session(trace)
        report.sessions += 1
        report.total_steps += result.steps
        report.total_replays += result.replays
        if result.ok:
            if progress is not None and (offset + 1) % 10 == 0:
                progress(
                    f"{offset + 1}/{sessions} sessions clean "
                    f"({report.total_steps} steps)"
                )
            continue
        if shrink:
            result.shrunk = shrink_trace(
                trace,
                lambda t: not check_session(t).ok,
            )
            result.reproducer = format_reproducer(
                result.shrunk, check_session(result.shrunk).divergences
            )
        else:
            result.reproducer = format_reproducer(trace, result.divergences)
        report.failures.append(result)
        if progress is not None:
            progress(f"seed {seed} DIVERGED "
                     f"({len(result.divergences)} divergence(s))")
    return report
