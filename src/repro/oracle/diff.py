"""Observation diffing: locate the first step where two replays disagree.

Divergences are reported at the *earliest* diverging step — Algorithm 1's
per-edge blending means a wrong candidate set at step ``k`` corrupts every
step after it, so later mismatches are usually echoes of the first one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Divergence:
    """One disagreement between two views of the same trace."""

    kind: str               # "config" | "naive-baseline" | "fresh-replay"
    step: Optional[int]     # action index, None for whole-session oracles
    op: Optional[str]       # the gesture at that step
    left: str               # name of the reference view
    right: str              # name of the disagreeing view
    details: List[str] = field(default_factory=list)

    def describe(self) -> str:
        where = "final state" if self.step is None else \
            f"step {self.step} ({self.op})"
        head = f"[{self.kind}] {self.left} vs {self.right} at {where}"
        return "\n".join([head] + [f"  {line}" for line in self.details])


def _fmt(value: Any, limit: int = 200) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def diff_observations(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[str]:
    """Human-readable ``key: left != right`` lines for one step pair."""
    lines: List[str] = []
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key), b.get(key)
        if left != right:
            lines.append(f"{key}: {_fmt(left)} != {_fmt(right)}")
    return lines


def first_divergence(
    reference: Sequence[Dict[str, Any]],
    other: Sequence[Dict[str, Any]],
    left: str,
    right: str,
    kind: str = "config",
) -> Optional[Divergence]:
    """The earliest step at which the two observation streams disagree."""
    for step, (a, b) in enumerate(zip(reference, other)):
        lines = diff_observations(a, b)
        if lines:
            return Divergence(
                kind=kind,
                step=step,
                op=a.get("op"),
                left=left,
                right=right,
                details=lines,
            )
    if len(reference) != len(other):
        return Divergence(
            kind=kind,
            step=min(len(reference), len(other)),
            op=None,
            left=left,
            right=right,
            details=[
                f"length: {len(reference)} steps != {len(other)} steps"
            ],
        )
    return None
