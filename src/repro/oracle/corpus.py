"""Small synthetic corpora the oracle fuzzes against.

A corpus is a (database, indexes) pair plus the spec that built it.  Specs are
value objects so a :class:`~repro.oracle.trace.SessionTrace` can embed one and
stay fully self-describing: a trace printed into a regression test rebuilds
the exact world it diverged in.

The default spec is deliberately *harsher* than the unit-test fixtures: the
mining bound (``max_fragment_edges``) is low relative to the query sizes the
fuzzer draws, so sessions routinely push fragments past the indexed envelope
and exercise the no-index-information fallback of Algorithm 3 — the path
where the stale-``db_ids`` and empty-intersection bugs lived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.config import MiningParams
from repro.graph.database import GraphDatabase
from repro.index import build_indexes
from repro.index.builder import ActionAwareIndexes
from repro.testing import small_database


@dataclass(frozen=True)
class CorpusSpec:
    """Everything needed to rebuild a fuzzing corpus deterministically."""

    seed: int = 0
    num_graphs: int = 24
    labels: str = "ABC"
    min_nodes: int = 3
    max_nodes: int = 7
    min_support: float = 0.25
    size_threshold: int = 3
    max_fragment_edges: int = 4

    def mining_params(self) -> MiningParams:
        return MiningParams(
            min_support=self.min_support,
            size_threshold=self.size_threshold,
            max_fragment_edges=self.max_fragment_edges,
        )


DEFAULT_SPEC = CorpusSpec()


@dataclass(frozen=True)
class OracleCorpus:
    """A built corpus: immutable during replays, shared across configs."""

    spec: CorpusSpec
    db: GraphDatabase
    indexes: ActionAwareIndexes

    @property
    def label_universe(self) -> Tuple[str, ...]:
        return tuple(self.db.node_label_universe())


_CACHE: Dict[CorpusSpec, OracleCorpus] = {}


def corpus_for(spec: CorpusSpec = DEFAULT_SPEC) -> OracleCorpus:
    """Build (or fetch) the corpus for ``spec``.

    Replays never mutate the database or the indexes, so one built corpus is
    shared by every configuration and every session over the same spec —
    index mining is by far the most expensive part of a sweep.
    """
    cached = _CACHE.get(spec)
    if cached is not None:
        return cached
    db = small_database(
        seed=spec.seed,
        num_graphs=spec.num_graphs,
        labels=spec.labels,
        min_nodes=spec.min_nodes,
        max_nodes=spec.max_nodes,
    )
    corpus = OracleCorpus(
        spec=spec, db=db, indexes=build_indexes(db, spec.mining_params())
    )
    _CACHE[spec] = corpus
    return corpus
