"""Config-matrix replay: one trace, every hot-path configuration.

The hot-path layer reads its knobs from the environment at call time
(:func:`repro.config.bitset_candidates`, :func:`canonical_cache_size`,
:func:`verification_workers`), so a configuration is just an environment
patch.  :func:`replay_trace` applies one, replays a trace on a fresh engine
and records an observation per step; the harness diffs those observation
streams across the matrix.

Engine-raised :class:`~repro.exceptions.ReproError`\\ s (and any crash) are
*recorded into the observation* rather than propagated: a trace therefore
replays to completion under every configuration, which keeps divergence
defined step-wise and makes delta-debugging shrinks total.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.prague import PragueEngine
from repro.graph import canonical
from repro.obs.recorder import RECORDER
from repro.oracle.corpus import OracleCorpus, corpus_for
from repro.oracle.trace import SessionTrace, apply_action, observe_step


@dataclass(frozen=True)
class OracleConfig:
    """One cell of the hot-path configuration matrix."""

    bitset: bool = True
    canonical_cache: bool = True
    workers: int = 1
    arena: bool = True
    warm_pool: bool = True

    @property
    def name(self) -> str:
        return (
            f"bitset={int(self.bitset)},"
            f"cache={int(self.canonical_cache)},"
            f"workers={self.workers},"
            f"arena={int(self.arena)},"
            f"warm={int(self.warm_pool)}"
        )

    def env(self) -> Dict[str, str]:
        return {
            "REPRO_BITSET": "1" if self.bitset else "0",
            "REPRO_CANONICAL_CACHE": "8192" if self.canonical_cache else "0",
            "REPRO_WORKERS": str(self.workers),
            "REPRO_ARENA": "1" if self.arena else "0",
            "REPRO_POOL_WARM": "1" if self.warm_pool else "0",
            # The oracle corpora are small; pin the pool floor down so the
            # workers>1 cells actually exercise the pooled path instead of
            # silently degenerating to the serial one.
            "REPRO_POOL_MIN_CANDIDATES": "16",
        }


#: The reference cell every other cell is diffed against: bitset algebra on,
#: canonical LRU on, serial verification — the CI default.
REFERENCE_CONFIG = OracleConfig(bitset=True, canonical_cache=True, workers=1)

#: Matrix: REPRO_BITSET on/off × canonical cache on/off × workers 1/3 (at the
#: arena/warm-pool defaults), plus the pool-plane cells — arena on/off ×
#: warm/cold at workers 3, where the pool actually runs.  The full
#: 5-dimensional product would be 32 replays per trace for no extra
#: coverage: arena and pool knobs are inert on the serial cells.
CONFIG_MATRIX: Tuple[OracleConfig, ...] = tuple(
    OracleConfig(bitset=b, canonical_cache=c, workers=w)
    for b, c, w in itertools.product((True, False), (True, False), (1, 3))
) + tuple(
    OracleConfig(workers=3, arena=a, warm_pool=wp)
    for a, wp in ((True, False), (False, True), (False, False))
)


#: Knobs every matrix cell pins *off* regardless of the ambient environment:
#: a replay sweep must never stream telemetry into a live session's export
#: directory (interleaved JSONL from dozens of replays would poison it), and
#: the extra file I/O would skew the step timings the oracles compare.
_ISOLATED_ENV = {"REPRO_OBS_EXPORT": ""}


@contextmanager
def applied(config: OracleConfig):
    """Temporarily install ``config``'s environment (and isolate the LRU)."""
    patch = {**config.env(), **_ISOLATED_ENV}
    saved = {key: os.environ.get(key) for key in patch}
    os.environ.update(patch)
    canonical.clear_cache()  # no memo carry-over between replays
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@dataclass
class ReplaySession:
    """A completed replay: the per-step observations plus the final engine."""

    trace: SessionTrace
    config: OracleConfig
    corpus: OracleCorpus
    observations: List[Dict[str, Any]] = field(default_factory=list)
    engine: Optional[PragueEngine] = None


def replay_trace(
    trace: SessionTrace,
    config: OracleConfig = REFERENCE_CONFIG,
    corpus: Optional[OracleCorpus] = None,
) -> ReplaySession:
    """Replay ``trace`` under ``config`` on a fresh engine, start to finish."""
    if corpus is None:
        corpus = corpus_for(trace.spec)
    session = ReplaySession(trace=trace, config=config, corpus=corpus)
    with applied(config):
        engine = PragueEngine(
            corpus.db, corpus.indexes, sigma=trace.sigma, auto_similarity=True
        )
        for action in trace.actions:
            result, error = None, None
            try:
                result = apply_action(engine, action)
            except Exception as exc:  # recorded, not raised — see module doc
                error = exc
                RECORDER.record_exception(
                    "replay.exception", exc,
                    config=config.name, step=len(session.observations),
                )
            session.observations.append(
                observe_step(engine, action, result, error)
            )
    session.engine = engine
    return session
