"""Two independent ground truths, beyond cross-configuration agreement.

Config-matrix replay only proves the hot-path variants agree *with each
other* — they could all share a bug.  These oracles anchor the comparison:

* :func:`naive_baseline_check` — the index-free scan baselines
  (:mod:`repro.baselines.naive`).  At every step the exact candidate set
  ``Rq`` must be a superset of the true answer (candidates are sound
  over-approximations), and every *Run*'s final results must equal the
  naive answers exactly.

* :func:`fresh_replay_check` — re-formulate the session's *final* query from
  scratch on a fresh engine and require the incrementally-maintained state to
  equal the fresh state: same per-level fragment classes (SPIG completeness),
  same ``Rq``, same ``Rfree``/``Rver`` buckets, same final results.  This is
  the invariant that makes PRAGUE's "virtually zero" modification cost sound:
  deletion upkeep must leave exactly what a fresh formulation would build.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.baselines.naive import (
    naive_containment_search,
    naive_similarity_search,
)
from repro.core.exact import exact_sub_candidates
from repro.core.prague import PragueEngine
from repro.core.similar import similar_results_gen, similar_sub_candidates
from repro.core.verification import exact_verification
from repro.oracle.diff import Divergence, _fmt
from repro.oracle.replay import ReplaySession, applied
from repro.oracle.trace import snapshot_to_graph
from repro.testing import connected_order


# ----------------------------------------------------------------------
# naive-baseline oracle
# ----------------------------------------------------------------------
def naive_baseline_check(session: ReplaySession) -> List[Divergence]:
    """Check every step's candidates and every Run's results against the scan."""
    out: List[Divergence] = []
    db = session.corpus.db
    sigma = session.trace.sigma
    for step, obs in enumerate(session.observations):
        if obs["error"] is not None or obs["num_edges"] == 0:
            continue
        fragment = snapshot_to_graph(obs["fragment"])
        truth = naive_containment_search(fragment, db)
        lines: List[str] = []
        if not obs["sim_flag"]:
            missing = sorted(set(truth) - set(obs["rq"]))
            if missing:
                lines.append(
                    f"Rq is unsound: true matches {missing} not in "
                    f"candidates {_fmt(obs['rq'])}"
                )
        run = obs.get("run")
        if run is not None:
            if run["exact"]:
                if list(run["exact"]) != truth:
                    lines.append(
                        f"exact results {_fmt(run['exact'])} != naive "
                        f"{_fmt(tuple(truth))}"
                    )
            else:
                got = {gid: dist for dist, gid, _free in run["similar"]}
                expected = naive_similarity_search(fragment, db, sigma)
                if not obs["sim_flag"]:
                    # Exact-mode Run fell back to similarity with exact
                    # matches proven absent — distance 0 cannot occur.
                    expected = {
                        g: d for g, d in expected.items() if d > 0
                    }
                if got != expected:
                    lines.append(
                        f"similar results {_fmt(sorted(got.items()))} != "
                        f"naive {_fmt(sorted(expected.items()))}"
                    )
        if lines:
            out.append(Divergence(
                kind="naive-baseline",
                step=step,
                op=obs["op"],
                left="engine",
                right="naive-scan",
                details=lines,
            ))
    return out


# ----------------------------------------------------------------------
# fresh-replay oracle
# ----------------------------------------------------------------------
def _edge_set_codes(engine: PragueEngine, level: int) -> Dict[Tuple, Any]:
    """Map each connected ``level``-edge subset (as endpoint pairs, which are
    stable across formulations) to the canonical code its vertex carries."""
    out: Dict[Tuple, Any] = {}
    for vertex in engine.manager.vertices_at_level(level):
        for edge_set in vertex.edge_sets:
            pairs = frozenset(
                frozenset(engine.query.edge(eid)[:2]) for eid in edge_set
            )
            out[pairs] = vertex.code
    return out


def _buckets_for(engine: PragueEngine, sigma: int):
    candidates = similar_sub_candidates(
        engine.query, sigma, engine.manager, engine.indexes, engine.db_ids,
        include_exact_level=True,
    )
    return candidates, {
        level: (
            tuple(sorted(candidates.free_at(level))),
            tuple(sorted(candidates.ver_at(level))),
        )
        for level in candidates.levels()
    }


def fresh_replay_check(session: ReplaySession) -> List[Divergence]:
    """Incremental SPIG/candidate state must equal a from-scratch build.

    A crash while *inspecting* the incremental state (stale edge ids, missing
    target vertex, …) is itself a finding — the state is inconsistent — so it
    is reported as a divergence rather than propagated.
    """
    try:
        lines = _fresh_replay_lines(session)
    except Exception as exc:
        lines = [
            "incremental state is internally inconsistent — the check "
            f"itself crashed: {type(exc).__name__}: {exc}"
        ]
    if not lines:
        return []
    return [Divergence(
        kind="fresh-replay",
        step=None,
        op=None,
        left="incremental",
        right="from-scratch",
        details=lines,
    )]


def _fresh_replay_lines(session: ReplaySession) -> List[str]:
    engine = session.engine
    assert engine is not None, "session was not replayed"
    if engine.query.num_edges == 0:
        return []
    lines: List[str] = []
    with applied(session.config):
        final = engine.query.graph()
        fresh = PragueEngine(
            session.corpus.db, session.corpus.indexes,
            sigma=session.trace.sigma, auto_similarity=True,
        )
        for node in final.nodes():
            fresh.add_node(node, final.label(node))
        for u, v in connected_order(final):
            fresh.add_edge(u, v, final.edge_label(u, v))

        n = final.num_edges
        for level in range(1, n + 1):
            incr = _edge_set_codes(engine, level)
            scratch = _edge_set_codes(fresh, level)
            if incr != scratch:
                only_incr = sorted(map(_fmt, set(incr) - set(scratch)))
                only_fresh = sorted(map(_fmt, set(scratch) - set(incr)))
                recoded = [
                    _fmt(k) for k in set(incr) & set(scratch)
                    if incr[k] != scratch[k]
                ]
                lines.append(
                    f"level {level} SPIG state differs: "
                    f"incremental-only={only_incr}, "
                    f"fresh-only={only_fresh}, code-mismatch={recoded}"
                )

        t_incr = engine.manager.target_vertex(engine.query)
        t_fresh = fresh.manager.target_vertex(fresh.query)
        for attr in ("freq_id", "dif_id", "dead"):
            a, b = getattr(t_incr.fragment_list, attr), \
                getattr(t_fresh.fragment_list, attr)
            if a != b:
                lines.append(f"target {attr}: {a!r} != {b!r}")
        for attr in ("phi", "upsilon"):
            a = sorted(getattr(t_incr.fragment_list, attr))
            b = sorted(getattr(t_fresh.fragment_list, attr))
            if a != b:
                lines.append(f"target {attr}: {a} != {b}")

        rq_incr = exact_sub_candidates(t_incr, engine.indexes, engine.db_ids)
        rq_fresh = exact_sub_candidates(t_fresh, fresh.indexes, fresh.db_ids)
        if rq_incr != rq_fresh:
            lines.append(
                f"target Rq: {sorted(rq_incr)} != {sorted(rq_fresh)}"
            )
        if not engine.sim_flag and engine.rq != rq_incr:
            lines.append(
                f"cached Rq {sorted(engine.rq)} != recomputed "
                f"{sorted(rq_incr)}"
            )

        # Rfree/Rver over *all* levels (σ = |q| reaches level 1).
        _, incr_buckets = _buckets_for(engine, n)
        _, fresh_buckets = _buckets_for(fresh, n)
        if incr_buckets != fresh_buckets:
            for level in sorted(set(incr_buckets) | set(fresh_buckets)):
                a, b = incr_buckets.get(level), fresh_buckets.get(level)
                if a != b:
                    lines.append(
                        f"level {level} buckets: {_fmt(a)} != {_fmt(b)}"
                    )

        # Final results, computed component-wise in the session's σ.
        exact_a = exact_verification(
            final, rq_incr, session.corpus.db,
            t_incr.fragment_list.is_indexed,
        )
        exact_b = exact_verification(
            final, rq_fresh, session.corpus.db,
            t_fresh.fragment_list.is_indexed,
        )
        if exact_a != exact_b:
            lines.append(f"exact results: {exact_a} != {exact_b}")
        sim_a, _ = _buckets_for(engine, session.trace.sigma)
        sim_b, _ = _buckets_for(fresh, session.trace.sigma)
        matches_a = similar_results_gen(
            engine.query, sim_a, session.trace.sigma, engine.manager,
            session.corpus.db,
        )
        matches_b = similar_results_gen(
            fresh.query, sim_b, session.trace.sigma, fresh.manager,
            session.corpus.db,
        )
        if matches_a != matches_b:
            lines.append(
                f"similar results: {_fmt(matches_a)} != {_fmt(matches_b)}"
            )
    return lines
