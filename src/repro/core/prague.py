"""The PRAGUE engine — Algorithm 1 as an interactive state machine.

One :class:`PragueEngine` instance backs one query-formulation session on the
GUI.  The four monitored actions map to methods:

==============  =====================================================
GUI action      Engine method
==============  =====================================================
``New``         :meth:`PragueEngine.add_edge`
``Modify``      :meth:`PragueEngine.delete_edge`
``SimQuery``    :meth:`PragueEngine.enable_similarity`
``Run``         :meth:`PragueEngine.run`
==============  =====================================================

After every new edge the engine builds the edge's SPIG (Algorithm 2) and
refreshes the candidate state: exact candidates ``Rq`` while the query still
has exact matches, per-level ``Rfree``/``Rver`` buckets once it is a
similarity query.  When ``Rq`` first becomes empty the engine raises the
option dialogue (``option_pending``); the caller either deletes an edge
(possibly the engine's suggestion) or continues — by default, continuing to
draw implicitly opts into similarity search, matching Figure 3's flow where
the status simply turns "Similar" and formulation proceeds.

All per-action processing is timed (``perf_counter``); the session layer
overlays these timings on the GUI-latency timeline to compute SRT
(:mod:`repro.obs.srt`), and every action records a span plus counters
through :mod:`repro.obs` when ``REPRO_TRACE`` is on.

Example — formulate a two-edge path query over a small seeded corpus and
run it (ids are deterministic because the corpus is)::

    >>> from repro.oracle.corpus import corpus_for
    >>> corpus = corpus_for()                      # 24 seeded graphs + indexes
    >>> engine = PragueEngine(corpus.db, corpus.indexes, sigma=1)
    >>> engine.add_node("a", "A")
    'a'
    >>> engine.add_node("b", "B")
    'b'
    >>> engine.add_node("c", "C")
    'c'
    >>> report = engine.add_edge("a", "b")         # New: SPIG + Rq refresh
    >>> (report.status.value, report.rq_size)
    ('frequent', 15)
    >>> report = engine.add_edge("b", "c")
    >>> (report.status.value, report.rq_size)
    ('frequent', 7)
    >>> run = engine.run()                         # Run: verification + results
    >>> sorted(run.results.exact_ids)
    [0, 6, 14, 17, 19, 22, 23]
    >>> run.verification_free                      # the A-B-C path is indexed
    True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.plane import SharedPlane

from repro.config import DEFAULT_SUBGRAPH_DISTANCE
from repro.core.actions import Action, QueryStatus
from repro.core.exact import exact_sub_candidates
from repro.core.modify import DeletionSuggestion, apply_deletion, suggest_deletion
from repro.core.pool import register_index_plane
from repro.core.results import QueryResults, SimilarCandidates
from repro.core.similar import similar_results_gen, similar_sub_candidates
from repro.core.verification import exact_verification
from repro.exceptions import SessionError
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import NodeId
from repro.index.builder import ActionAwareIndexes
from repro.obs.histogram import observe
from repro.obs.profiler import profile_action
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER
from repro.obs.tracer import span, sync_env
from repro.query_graph import VisualQuery
from repro.spig.manager import SpigManager


@dataclass
class StepReport:
    """What the engine did in response to one GUI action."""

    action: Action
    status: QueryStatus
    edge_id: Optional[int] = None
    rq_size: Optional[int] = None
    candidate_count: Optional[int] = None
    processing_seconds: float = 0.0
    spig_seconds: float = 0.0
    suggestion: Optional[DeletionSuggestion] = None


@dataclass
class RunReport:
    """Timing and bookkeeping of the final *Run* action."""

    results: QueryResults = field(default_factory=QueryResults)
    processing_seconds: float = 0.0
    verification_free: bool = False
    candidate_count: int = 0


class PragueEngine:
    """Blended formulation/processing of one visual subgraph query."""

    def __init__(
        self,
        db: Optional[GraphDatabase] = None,
        indexes: Optional[ActionAwareIndexes] = None,
        sigma: int = DEFAULT_SUBGRAPH_DISTANCE,
        auto_similarity: bool = True,
        *,
        plane: Optional["SharedPlane"] = None,
    ) -> None:
        if plane is not None:
            db, indexes = plane.db, plane.indexes
        if db is None or indexes is None:
            raise ValueError("PragueEngine needs (db, indexes) or a plane")
        self.db = db
        self.indexes = indexes
        self.sigma = sigma
        self.auto_similarity = auto_similarity
        self.plane = plane
        if plane is None:
            # Declare the shared half of the session state: if a Run action
            # needs the verification pool, the published arena for this db
            # will carry these A2F/A2I tables (built lazily, nothing happens
            # now).
            register_index_plane(db, indexes)
            self._db_ids: FrozenSet[int] = frozenset(db.ids())
        else:
            # The plane registered the indexes and snapshotted the universe
            # once for every session — construction stays O(1).
            self._db_ids = plane.db_ids
        self._db_ids_size = len(self._db_ids)
        self._candidates_db_size = len(db)
        self.query = VisualQuery()
        self.manager = SpigManager(indexes)
        self.sim_flag = False
        self.option_pending = False
        self.rq: FrozenSet[int] = frozenset()
        self.similar_candidates: Optional[SimilarCandidates] = None
        self.history: List[StepReport] = []

    @classmethod
    def from_plane(
        cls,
        plane: "SharedPlane",
        sigma: int = DEFAULT_SUBGRAPH_DISTANCE,
        auto_similarity: bool = True,
    ) -> "PragueEngine":
        """A per-session engine over a process-wide :class:`SharedPlane`."""
        return cls(sigma=sigma, auto_similarity=auto_similarity, plane=plane)

    @property
    def db_ids(self) -> FrozenSet[int]:
        """The current id universe, version-guarded against ``db.add()``.

        Graphs appended mid-session (``GraphDatabase.add`` — e.g. through
        :class:`~repro.index.maintenance.IncrementalIndexMaintainer`) must be
        visible to every later candidate computation; a snapshot taken at
        ``__init__`` silently hid them from ``Rq``/``Rfree``/``Rver``.
        """
        if self._db_ids_size != len(self.db):
            self._db_ids = frozenset(self.db.ids())
            self._db_ids_size = len(self.db)
        return self._db_ids

    # ------------------------------------------------------------------
    # formulation actions
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: str) -> NodeId:
        """Drop a node on the canvas (no processing is triggered)."""
        return self.query.add_node(node, label)

    def add_edge(
        self, u: NodeId, v: NodeId, label: Optional[str] = None
    ) -> StepReport:
        """Action ``New``: draw an edge, build its SPIG, refresh candidates."""
        if self.option_pending:
            if not self.auto_similarity:
                raise SessionError(
                    "option dialogue pending: call delete_edge or "
                    "enable_similarity first"
                )
            # Continuing to draw = implicitly opting into similarity search.
            self.enable_similarity()
        sync_env()
        start = time.perf_counter()
        RECORDER.record("action.start", op="new")
        with profile_action("new"), span("action.new") as sp:
            count("engine.action.new")
            edge_id = self.query.add_edge(u, v, label)
            spig_start = time.perf_counter()
            self.manager.on_new_edge(self.query, edge_id)
            spig_seconds = time.perf_counter() - spig_start
            report = StepReport(
                action=Action.NEW,
                status=QueryStatus.FREQUENT,
                edge_id=edge_id,
                spig_seconds=spig_seconds,
            )
            if not self.sim_flag:
                target = self.manager.target_vertex(self.query)
                self._refresh_rq(target)
                report.rq_size = len(self.rq)
                if self.rq:
                    report.status = (
                        QueryStatus.FREQUENT
                        if target.fragment_list.freq_id is not None
                        else QueryStatus.INFREQUENT
                    )
                else:
                    report.status = QueryStatus.SIMILAR
                    self.option_pending = True  # Alg 1, line 8: dialogue pops up
            else:
                self._refresh_similar_candidates()
                assert self.similar_candidates is not None
                report.status = QueryStatus.SIMILAR
                report.candidate_count = self.similar_candidates.candidate_count
            report.processing_seconds = time.perf_counter() - start
            sp.set(edge=edge_id, status=report.status.value)
        observe("action.new", report.processing_seconds)
        RECORDER.record(
            "action.end", op="new", edge=edge_id,
            status=report.status.value, seconds=report.processing_seconds,
        )
        self.history.append(report)
        return report

    def add_pattern(
        self,
        pattern,
        attach: Optional[dict] = None,
    ) -> List[StepReport]:
        """Drop a canned pattern (footnote 1's future-work extension).

        ``pattern`` is a connected labeled :class:`~repro.graph.Graph` (or a
        :class:`~repro.gui.patterns.CannedPattern`); ``attach`` optionally
        maps pattern nodes onto existing canvas nodes (fusion points, with
        matching labels).  The gesture is one drag-and-drop on the GUI, but
        the engine still processes edge-at-a-time: each pattern edge gets its
        own formulation id and SPIG, so candidate maintenance, the option
        dialogue and modification all work unchanged.
        """
        from repro.exceptions import QueryError

        graph = getattr(pattern, "graph", pattern)
        if graph.num_edges == 0 or not graph.is_connected():
            raise QueryError("patterns must be connected with >= 1 edge")
        attach = dict(attach or {})
        if self.query.num_edges > 0 and not attach:
            raise QueryError(
                "attach the pattern to an existing node to keep the query "
                "connected (pass attach={pattern_node: canvas_node})"
            )
        node_map: dict = {}
        for p_node, canvas_node in attach.items():
            if not graph.has_node(p_node):
                raise QueryError(f"pattern has no node {p_node!r}")
            if self.query.node_label(canvas_node) != graph.label(p_node):
                raise QueryError(
                    f"fusion point label mismatch at {canvas_node!r}"
                )
            node_map[p_node] = canvas_node
        for p_node in graph.nodes():
            if p_node not in node_map:
                fresh = self.query.fresh_node_id(0)
                self.query.add_node(fresh, graph.label(p_node))
                node_map[p_node] = fresh
        # Draw edges so every prefix stays connected, starting at a fusion
        # point when the query is non-empty.
        connected = set(attach) if attach else set()
        pending = list(graph.edges())
        reports: List[StepReport] = []
        while pending:
            for i, (u, v) in enumerate(pending):
                if not connected or u in connected or v in connected:
                    connected.update((u, v))
                    del pending[i]
                    reports.append(
                        self.add_edge(
                            node_map[u], node_map[v], graph.edge_label(u, v)
                        )
                    )
                    break
            else:  # pragma: no cover - unreachable for connected patterns
                raise QueryError("pattern is not connected")
        return reports

    def enable_similarity(self) -> StepReport:
        """Action ``SimQuery``: switch to substructure similarity search."""
        sync_env()
        start = time.perf_counter()
        RECORDER.record("action.start", op="simquery")
        with profile_action("simquery"), span("action.simquery") as sp:
            count("engine.action.simquery")
            self.sim_flag = True
            self.option_pending = False
            self._refresh_similar_candidates()
            assert self.similar_candidates is not None
            report = StepReport(
                action=Action.SIM_QUERY,
                status=QueryStatus.SIMILAR,
                candidate_count=self.similar_candidates.candidate_count,
                processing_seconds=time.perf_counter() - start,
            )
            sp.set(candidates=report.candidate_count)
        observe("action.simquery", report.processing_seconds)
        RECORDER.record(
            "action.end", op="simquery",
            candidates=report.candidate_count,
            seconds=report.processing_seconds,
        )
        self.history.append(report)
        return report

    def suggestion(self) -> Optional[DeletionSuggestion]:
        """The edge PRAGUE recommends deleting to make ``Rq`` non-empty."""
        return suggest_deletion(self.query, self.manager, self.indexes, self.db_ids)

    def delete_edge(self, edge_id: Optional[int] = None) -> StepReport:
        """Action ``Modify``: delete an edge (``None`` accepts the suggestion)."""
        sync_env()
        start = time.perf_counter()
        RECORDER.record("action.start", op="modify")
        with profile_action("modify"), span("action.modify") as sp:
            count("engine.action.modify")
            suggestion = None
            if edge_id is None:
                suggestion = self.suggestion()
                if suggestion is None:
                    raise SessionError("nothing can be deleted from this query")
                edge_id = suggestion.edge_id
            apply_deletion(self.query, self.manager, edge_id)
            self.option_pending = False
            report = StepReport(
                action=Action.MODIFY,
                status=QueryStatus.SIMILAR,
                edge_id=edge_id,
                suggestion=suggestion,
            )
            self._refresh_after_modification(report)
            report.processing_seconds = time.perf_counter() - start
            sp.set(edge=edge_id, suggested=suggestion is not None)
        observe("action.modify", report.processing_seconds)
        RECORDER.record(
            "action.end", op="modify", edge=edge_id,
            status=report.status.value, seconds=report.processing_seconds,
        )
        self.history.append(report)
        return report

    def delete_edges(self, edge_ids) -> StepReport:
        """Action ``Modify`` with several edges in one gesture.

        The paper notes single-edge deletion extends trivially to multiple
        deletions; the SPIG set is pruned once per deleted edge and the
        candidate state refreshed once at the end.
        """
        from repro.core.modify import apply_multi_deletion

        sync_env()
        start = time.perf_counter()
        RECORDER.record("action.start", op="modify")
        with profile_action("modify"), span("action.modify") as sp:
            count("engine.action.modify")
            applied = apply_multi_deletion(self.query, self.manager, edge_ids)
            self.option_pending = False
            report = StepReport(
                action=Action.MODIFY,
                status=QueryStatus.SIMILAR,
                edge_id=applied[-1] if applied else None,
            )
            self._refresh_after_modification(report)
            report.processing_seconds = time.perf_counter() - start
            sp.set(edges=len(applied))
        observe("action.modify", report.processing_seconds)
        RECORDER.record(
            "action.end", op="modify", edges=len(applied),
            status=report.status.value, seconds=report.processing_seconds,
        )
        self.history.append(report)
        return report

    def relabel_node(self, node: NodeId, new_label: str) -> StepReport:
        """Relabel a node (footnote 5: deletions plus re-insertions).

        The incident edges are deleted and re-drawn against a fresh node with
        the new label; each re-drawn edge gets its own SPIG, so the resulting
        state is exactly what a fresh formulation would have produced.
        """
        from repro.core.modify import relabel_node as _relabel

        sync_env()
        start = time.perf_counter()
        RECORDER.record("action.start", op="modify")
        with profile_action("modify"), span("action.modify") as sp:
            count("engine.action.modify")
            new_ids = _relabel(self.query, self.manager, node, new_label)
            self.option_pending = False
            report = StepReport(
                action=Action.MODIFY,
                status=QueryStatus.SIMILAR,
                edge_id=new_ids[-1] if new_ids else None,
            )
            self._refresh_after_modification(report)
            report.processing_seconds = time.perf_counter() - start
            sp.set(relabel=str(node), edges=len(new_ids))
        observe("action.modify", report.processing_seconds)
        RECORDER.record(
            "action.end", op="modify", relabel=str(node), edges=len(new_ids),
            status=report.status.value, seconds=report.processing_seconds,
        )
        self.history.append(report)
        return report

    def _refresh_after_modification(self, report: StepReport) -> None:
        """Recompute the candidate state after any Modify gesture."""
        if self.query.num_edges == 0:
            self.sim_flag = False
            self.rq = frozenset()
            self.similar_candidates = None
            report.rq_size = 0
        elif self.sim_flag:
            self._refresh_similar_candidates()
            assert self.similar_candidates is not None
            report.candidate_count = self.similar_candidates.candidate_count
        else:
            target = self.manager.target_vertex(self.query)
            self._refresh_rq(target)
            report.rq_size = len(self.rq)
            if self.rq:
                report.status = (
                    QueryStatus.FREQUENT
                    if target.fragment_list.freq_id is not None
                    else QueryStatus.INFREQUENT
                )
                self.option_pending = False
            else:
                report.status = QueryStatus.SIMILAR
                self.option_pending = True

    def run(self) -> RunReport:
        """Action ``Run``: produce the final results (Alg 1, lines 16-23)."""
        if self.query.num_edges == 0:
            raise SessionError("cannot run an empty query")
        sync_env()
        start = time.perf_counter()
        RECORDER.record("action.start", op="run")
        with profile_action("run"), span("action.run") as sp:
            count("engine.action.run")
            self._ensure_current_candidates()
            report = RunReport()
            if not self.sim_flag:
                target = self.manager.target_vertex(self.query)
                verification_free = target.fragment_list.is_indexed
                exact_ids = exact_verification(
                    self.query.graph(), self.rq, self.db, verification_free
                )
                report.verification_free = verification_free
                report.candidate_count = len(self.rq)
                if exact_ids:
                    report.results = QueryResults(exact_ids=exact_ids)
                else:
                    # Alg 1, lines 19-21: fall back to similarity search.  Exact
                    # matches are now proven absent, so skip the |q| level.
                    candidates = similar_sub_candidates(
                        self.query, self.sigma, self.manager, self.indexes,
                        self.db_ids, include_exact_level=False,
                    )
                    matches = similar_results_gen(
                        self.query, candidates, self.sigma, self.manager, self.db
                    )
                    report.results = QueryResults(similar=matches)
                    report.candidate_count = candidates.candidate_count
            else:
                if self.similar_candidates is None:
                    self._refresh_similar_candidates()
                assert self.similar_candidates is not None
                matches = similar_results_gen(
                    self.query, self.similar_candidates, self.sigma, self.manager,
                    self.db,
                )
                report.results = QueryResults(similar=matches)
                report.candidate_count = self.similar_candidates.candidate_count
            report.processing_seconds = time.perf_counter() - start
            sp.set(
                similar=self.sim_flag,
                candidates=report.candidate_count,
                verification_free=report.verification_free,
            )
        observe("action.run", report.processing_seconds)
        RECORDER.record(
            "action.end", op="run", candidates=report.candidate_count,
            verification_free=report.verification_free,
            seconds=report.processing_seconds,
        )
        return report

    # ------------------------------------------------------------------
    @property
    def status(self) -> QueryStatus:
        if self.history:
            return self.history[-1].status
        return QueryStatus.FREQUENT

    def _refresh_rq(self, target) -> None:
        rq_start = time.perf_counter()
        with span("candidates.exact") as sp:
            self.rq = exact_sub_candidates(target, self.indexes, self.db_ids)
            sp.set(rq=len(self.rq))
        observe("candidates.exact", time.perf_counter() - rq_start)
        self._candidates_db_size = len(self.db)

    def _refresh_similar_candidates(self) -> None:
        self.similar_candidates = similar_sub_candidates(
            self.query, self.sigma, self.manager, self.indexes, self.db_ids
        )
        self._candidates_db_size = len(self.db)

    def _ensure_current_candidates(self) -> None:
        """Re-derive the candidate state if the database grew since the last
        refresh (``db.add`` after the final formulation action): *Run* must
        consult the universe as of the button press, not of the last edge."""
        if self._candidates_db_size == len(self.db) or self.query.num_edges == 0:
            return
        if self.sim_flag:
            self._refresh_similar_candidates()
        else:
            self._refresh_rq(self.manager.target_vertex(self.query))
