"""Exact substructure candidate generation — Algorithm 3 (ExactSubCandidates).

Given the SPIG vertex of a query fragment:

* a frequent fragment's candidates are its exact FSG ids from the A2F-index;
* a DIF's candidates are its exact FSG ids from the A2I-index;
* a NIF intersects the FSG ids of its frequent largest-proper subgraphs (Φ)
  and of all its DIF subgraphs (Υ) — a superset of the true answer that the
  final *Run* verification filters.

Emptiness of the returned set is *sound*: an empty ``Rq`` proves the fragment
has no exact match in the database (the trigger for PRAGUE's modify/similar
option dialogue).

The Φ/Υ intersection runs on int bitmasks (:mod:`repro.core.candidates`) —
graph ids are dense, so each AND is word-parallel — ordered smallest
candidate list first with an early exit on empty.  ``REPRO_BITSET=0`` selects
:func:`exact_sub_candidates_sets`, the frozenset reference implementation the
equivalence tests compare against.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.config import bitset_candidates
from repro.core.candidates import bits_of, ids_of, intersect_all
from repro.index.builder import ActionAwareIndexes
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER
from repro.spig.spig import SpigVertex


def exact_sub_candidates(
    vertex: SpigVertex,
    indexes: ActionAwareIndexes,
    db_ids: FrozenSet[int],
) -> FrozenSet[int]:
    """``Rq`` for the fragment represented by ``vertex``."""
    fl = vertex.fragment_list
    if fl.dead:
        # The fragment uses a label absent from the database: no match.
        return frozenset()
    if fl.freq_id is not None:
        return indexes.a2f.fsg_ids(fl.freq_id)
    if fl.dif_id is not None:
        return indexes.a2i.fsg_ids(fl.dif_id)
    if not fl.phi and not fl.upsilon:
        # Fragment larger than the mining bound with no indexed subgraph
        # information at all — no pruning is possible (cannot happen for
        # queries within the paper's ≤ 10-edge envelope).
        return db_ids
    if bitset_candidates():
        count("candidates.path.bitset")
        RECORDER.transition("candidates.path", "bitset")
        return ids_of(_phi_upsilon_bits(vertex, indexes, bits_of(db_ids)))
    count("candidates.path.frozenset")
    RECORDER.transition("candidates.path", "frozenset")
    return exact_sub_candidates_sets(vertex, indexes, db_ids)


def exact_sub_candidates_bits(
    vertex: SpigVertex,
    indexes: ActionAwareIndexes,
    db_bits: int,
) -> int:
    """``Rq`` as an int bitmask — the word-parallel form of Algorithm 3.

    ``db_bits`` plays the role of ``db_ids`` for the no-information fallback
    (``full_mask(len(db))``).
    """
    fl = vertex.fragment_list
    if fl.dead:
        return 0
    if fl.freq_id is not None:
        return indexes.a2f.fsg_bits(fl.freq_id)
    if fl.dif_id is not None:
        return indexes.a2i.fsg_bits(fl.dif_id)
    if not fl.phi and not fl.upsilon:
        return db_bits
    return _phi_upsilon_bits(vertex, indexes, db_bits)


def _phi_upsilon_bits(
    vertex: SpigVertex, indexes: ActionAwareIndexes, db_bits: int
) -> int:
    fl = vertex.fragment_list
    masks = [indexes.a2f.fsg_bits(a2f_id) for a2f_id in fl.phi]
    masks += [indexes.a2i.fsg_bits(a2i_id) for a2i_id in fl.upsilon]
    return intersect_all(masks, db_bits)


def exact_sub_candidates_sets(
    vertex: SpigVertex,
    indexes: ActionAwareIndexes,
    db_ids: FrozenSet[int],
) -> FrozenSet[int]:
    """The frozenset reference path (pre-bitset Algorithm 3).

    Kept for A/B equivalence checks and ``REPRO_BITSET=0``; intersects
    smallest list first without copying the initial frozenset.
    """
    fl = vertex.fragment_list
    if fl.dead:
        return frozenset()
    if fl.freq_id is not None:
        return indexes.a2f.fsg_ids(fl.freq_id)
    if fl.dif_id is not None:
        return indexes.a2i.fsg_ids(fl.dif_id)
    if not fl.phi and not fl.upsilon:
        return db_ids
    id_lists: List[FrozenSet[int]] = [
        indexes.a2f.fsg_ids(a2f_id) for a2f_id in fl.phi
    ]
    id_lists += [indexes.a2i.fsg_ids(a2i_id) for a2i_id in fl.upsilon]
    id_lists.sort(key=len)
    # Neutral element of the AND-fold over constraints: the full universe
    # (zero constraints prune nothing) — kept in lock-step with
    # ``intersect_all``'s ``universe`` argument on the bitset path.
    rq: Optional[FrozenSet[int]] = None
    for ids in id_lists:
        rq = ids if rq is None else rq & ids  # frozenset & -> frozenset
        if not rq:
            return frozenset()
    return db_ids if rq is None else rq
