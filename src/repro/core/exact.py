"""Exact substructure candidate generation — Algorithm 3 (ExactSubCandidates).

Given the SPIG vertex of a query fragment:

* a frequent fragment's candidates are its exact FSG ids from the A2F-index;
* a DIF's candidates are its exact FSG ids from the A2I-index;
* a NIF intersects the FSG ids of its frequent largest-proper subgraphs (Φ)
  and of all its DIF subgraphs (Υ) — a superset of the true answer that the
  final *Run* verification filters.

Emptiness of the returned set is *sound*: an empty ``Rq`` proves the fragment
has no exact match in the database (the trigger for PRAGUE's modify/similar
option dialogue).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from repro.index.builder import ActionAwareIndexes
from repro.spig.spig import SpigVertex


def exact_sub_candidates(
    vertex: SpigVertex,
    indexes: ActionAwareIndexes,
    db_ids: FrozenSet[int],
) -> FrozenSet[int]:
    """``Rq`` for the fragment represented by ``vertex``."""
    fl = vertex.fragment_list
    if fl.dead:
        # The fragment uses a label absent from the database: no match.
        return frozenset()
    if fl.freq_id is not None:
        return indexes.a2f.fsg_ids(fl.freq_id)
    if fl.dif_id is not None:
        return indexes.a2i.fsg_ids(fl.dif_id)
    if not fl.phi and not fl.upsilon:
        # Fragment larger than the mining bound with no indexed subgraph
        # information at all — no pruning is possible (cannot happen for
        # queries within the paper's ≤ 10-edge envelope).
        return db_ids
    rq: Optional[Set[int]] = None
    for a2f_id in fl.phi:
        ids = indexes.a2f.fsg_ids(a2f_id)
        rq = set(ids) if rq is None else rq & ids
        if not rq:
            return frozenset()
    for a2i_id in fl.upsilon:
        ids = indexes.a2i.fsg_ids(a2i_id)
        rq = set(ids) if rq is None else rq & ids
        if not rq:
            return frozenset()
    assert rq is not None
    return frozenset(rq)
