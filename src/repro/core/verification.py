"""Verification: exact subgraph-isomorphism tests and MCCS SimVerify.

* Exact verification (Algorithm 1, line 18): when the full query fragment is
  itself indexed (frequent or DIF) its candidate set is already exact —
  verification-free, the FG-Index insight the action-aware indexes inherit.
  Otherwise each candidate undergoes a VF2 subgraph-isomorphism test.

* ``SimVerify`` (Algorithm 5, line 4): a candidate attached to SPIG level
  ``i`` is an approximate match at distance ``|q| − i`` iff some connected
  i-edge subgraph of the query embeds in it.  Across the SPIG set, the
  level-i vertices enumerate exactly those subgraphs, so VF2 against the
  level-i fragments realises MCCS verification without computing a full MCCS
  (the paper's "we extend VF2 [3] to handle MCCS-based similarity
  verification").  Only NIF fragments need testing: had the candidate
  contained an *indexed* level-i fragment it would already sit in
  ``Rfree(i)``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import Graph
from repro.spig.manager import SpigManager
from repro.spig.spig import SpigVertex


def exact_verification(
    query_fragment: Graph,
    candidates: FrozenSet[int],
    db: GraphDatabase,
    verification_free: bool,
) -> List[int]:
    """Final exact results from ``Rq`` (sorted ids)."""
    if verification_free:
        return sorted(candidates)
    return sorted(
        gid for gid in candidates if is_subgraph_isomorphic(query_fragment, db[gid])
    )


def level_fragments_to_verify(
    manager: SpigManager, level: int
) -> List[SpigVertex]:
    """The NIF vertices at ``level`` — the only fragments SimVerify must test."""
    return [
        v
        for v in manager.vertices_at_level(level)
        if not v.fragment_list.is_indexed
    ]


def sim_verify(
    vertices: Iterable[SpigVertex],
    target: Graph,
) -> bool:
    """True iff any of the given fragments embeds in ``target``."""
    return any(is_subgraph_isomorphic(v.fragment, target) for v in vertices)
