"""Verification: exact subgraph-isomorphism tests and MCCS SimVerify.

* Exact verification (Algorithm 1, line 18): when the full query fragment is
  itself indexed (frequent or DIF) its candidate set is already exact —
  verification-free, the FG-Index insight the action-aware indexes inherit.
  Otherwise each candidate undergoes a VF2 subgraph-isomorphism test.

* ``SimVerify`` (Algorithm 5, line 4): a candidate attached to SPIG level
  ``i`` is an approximate match at distance ``|q| − i`` iff some connected
  i-edge subgraph of the query embeds in it.  Across the SPIG set, the
  level-i vertices enumerate exactly those subgraphs, so VF2 against the
  level-i fragments realises MCCS verification without computing a full MCCS
  (the paper's "we extend VF2 [3] to handle MCCS-based similarity
  verification").  Only NIF fragments need testing: had the candidate
  contained an *indexed* level-i fragment it would already sit in
  ``Rfree(i)``.

Both verification flavours run through batch APIs (:func:`verify_batch`,
:func:`sim_verify_scan`): patterns are compiled once per scan against
corpus-wide label statistics, and large candidate lists are chunked across
the **warm** verification pool (:mod:`repro.core.pool`) — long-lived workers
that attach to the database's shared-memory arena once at spawn, so chunk
payloads carry ``(arena_version, chunk_ids)`` instead of pickled graphs.
The worker count comes from :func:`repro.config.verification_workers`
(``REPRO_WORKERS``; ``1`` = the serial path, deterministic and pool-free —
what CI pins), and batches below
:func:`repro.config.pool_min_candidates` candidates skip the pool entirely.
Worker count, warm-vs-cold pool and arena-vs-inline payloads never affect
*results*, only wall-clock: every path returns the same id sets.

Telemetry is cross-process: every chunk runs under worker-local observation
capture (:mod:`repro.obs.snapshot`) and returns its counter/histogram/
recorder delta alongside its ids, which the parent merges back — so the
per-candidate ``verify.tested`` counters and ``verify.candidate`` latency
histograms report identical totals whether the batch ran serially or across
any pool size (``tests/obs/test_worker_telemetry.py``).
"""

from __future__ import annotations

import os
import time
import warnings
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.config import pool_min_candidates, verification_workers
from repro.core.pool import ARENA_REF, POOL, arena_for, resolve_items
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import CompiledPattern, compile_pattern
from repro.graph.labeled_graph import Graph
from repro.obs.histogram import observe
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER
from repro.obs.snapshot import (
    begin_worker_capture,
    collect_worker_delta,
    merge_worker_delta,
    worker_context,
)
from repro.obs.tracer import span
from repro.spig.manager import SpigManager
from repro.spig.spig import SpigVertex

def _chunks(ids: Sequence[int], size: int) -> List[Sequence[int]]:
    return [ids[i:i + size] for i in range(0, len(ids), size)]


def _test_pattern(compiled: CompiledPattern, items) -> List[int]:
    """Ids among ``items`` whose graph contains the compiled pattern.

    The single shared inner loop of exact verification — the serial path,
    the pool workers and the pool fallback all run through it, so its
    instrumentation (one ``verify.candidate`` histogram sample per VF2 test,
    the ``verify.tested`` counter) is *path-invariant*: totals match across
    every ``REPRO_WORKERS`` setting by construction.
    """
    out: List[int] = []
    for gid, graph in items:
        test_start = time.perf_counter()
        hit = compiled.embeds_in(graph)
        observe("verify.candidate", time.perf_counter() - test_start)
        if hit:
            out.append(gid)
    count("verify.tested", len(items))
    return out


def _test_fragments(compiled: List[CompiledPattern], items) -> List[int]:
    """Ids among ``items`` whose graph contains *any* compiled fragment.

    SimVerify's shared inner loop; one ``verify.sim.candidate`` sample and
    one ``verify.sim.tested`` unit per candidate graph (not per fragment —
    the ``any`` short-circuit makes fragment counts path-dependent, graph
    counts are not).
    """
    out: List[int] = []
    for gid, graph in items:
        test_start = time.perf_counter()
        hit = any(c.embeds_in(graph) for c in compiled)
        observe("verify.sim.candidate", time.perf_counter() - test_start)
        if hit:
            out.append(gid)
    count("verify.sim.tested", len(items))
    return out


def _verify_chunk(payload) -> List[int]:
    """Worker: ids of the chunk's graphs that contain the pattern.

    ``items`` is either inline ``(gid, graph)`` pairs or an
    ``(arena_version, chunk_ids)`` reference that
    :func:`repro.core.pool.resolve_items` materializes from the worker's
    attached shared-memory arena.
    """
    pattern, items, label_freq = payload
    return _test_pattern(
        CompiledPattern(pattern, label_freq), resolve_items(items)
    )


def _sim_verify_chunk(payload) -> List[int]:
    """Worker: ids of the chunk's graphs containing *any* of the fragments."""
    fragments, items, label_freq = payload
    compiled = [CompiledPattern(f, label_freq) for f in fragments]
    return _test_fragments(compiled, resolve_items(items))


def _obs_chunk(args) -> Tuple[List[int], dict]:
    """Pool entry point: one chunk under worker-local telemetry capture.

    Receives ``(ctx, worker, payload)``: the parent's observability context
    is applied, the inherited registries are reset to start a clean delta
    (:func:`repro.obs.snapshot.begin_worker_capture`), the real worker runs,
    and the chunk's ids come back *with* the worker's observation delta for
    the parent to merge.  The ``pool.chunk`` recorder event gives merged
    timelines a per-chunk anchor (pid, duration, hits) — and because the
    context carries the dispatching HTTP request's id, the worker-local
    recorder stamps it onto every event here, so a merged ``pool.chunk``
    is attributable to the exact request that triggered the batch.
    """
    ctx, worker, payload = args
    begin_worker_capture(ctx)
    chunk_start = time.perf_counter()
    result = worker(payload)
    seconds = time.perf_counter() - chunk_start
    observe("verify.chunk", seconds)
    RECORDER.record(
        "pool.chunk", pid=os.getpid(), hits=len(result), seconds=seconds,
    )
    return result, collect_worker_delta()


def _worker_traceback(exc: BaseException) -> Optional[str]:
    """The worker-side traceback text, when the pool preserved one.

    ``multiprocessing.pool`` re-raises worker exceptions in the parent with
    ``__cause__`` set to a ``RemoteTraceback`` whose string is the *worker's*
    formatted traceback.  Parent-side failures (unpicklable payloads, broken
    pools) have no remote frame — ``None`` then.
    """
    cause = getattr(exc, "__cause__", None)
    if cause is not None and type(cause).__name__ == "RemoteTraceback":
        return str(cause)
    return None


#: Exception type names whose pool-fallback postmortem bundle was already
#: written this session — one bundle per distinct failure mode, not one per
#: fallback, so a hot loop that keeps tripping the same error can't flood
#: ``REPRO_POSTMORTEM_DIR``.
_FALLBACK_DUMPED: Set[str] = set()


def reset_postmortem_limiter() -> None:
    """Forget which fallback exception types already dumped a bundle."""
    _FALLBACK_DUMPED.clear()


def _run_batch(
    worker,
    make_payload,
    ids: List[int],
    workers: int,
    arena=None,
) -> List[int]:
    """Chunk ``ids`` across the warm pool, falling back to in-process runs.

    Pool failures (unpicklable payloads on spawn platforms, broken workers,
    fork unavailability) must degrade a *Run* action to the slower serial
    path, not abort it: the answer is computable without a pool, so compute
    it.  The fallback executes the same worker on the same payloads, hence
    returns the identical id list — arena references resolve in-process
    against the parent-side registry.

    On the pool path every chunk's observation delta is merged back here,
    so nothing a worker recorded is lost (see :mod:`repro.obs.snapshot`);
    on the fallback path the worker runs in-process and its observations
    land in the parent registries directly.  Either way the current
    request-id scope propagates: :func:`worker_context` snapshots it into
    the chunk payloads, and in-process fallbacks inherit the thread's
    scope, so correlation survives the degradation.
    """
    chunk_size = max(1, -(-len(ids) // (workers * 4)))  # ~4 chunks per worker
    payloads = [make_payload(chunk) for chunk in _chunks(ids, chunk_size)]
    count("verify.pool.runs")
    count("verify.pool.chunks", len(payloads))
    RECORDER.record(
        "pool.run", chunks=len(payloads), workers=workers,
        candidates=len(ids),
        arena=arena.version if arena is not None else "off",
    )
    ctx = worker_context()
    try:
        outputs = POOL.map(
            _obs_chunk,
            [(ctx, worker, payload) for payload in payloads],
            workers,
            arena=arena,
        )
        parts = []
        for part, delta in outputs:
            parts.append(part)
            merge_worker_delta(delta)
    except Exception as exc:  # pickling/OS/pool-management failures
        count("verify.pool.fallbacks")
        worker_tb = _worker_traceback(exc)
        # The pool re-raises worker errors with a generic parent-side frame;
        # the last traceback line is the worker's actual exception (e.g. an
        # arena version mismatch), which is what the postmortem should lead
        # with.
        provenance = {"cause": f"{type(exc).__name__}: {exc}"}
        if worker_tb is not None:
            provenance["worker_traceback"] = worker_tb
            lines = [l for l in worker_tb.strip().splitlines() if l.strip()]
            if lines:
                provenance["cause"] = lines[-1].strip()
        RECORDER.record_exception(
            "pool.fallback", exc, chunks=len(payloads), workers=workers,
            **provenance,
        )
        exc_type = type(exc).__name__
        if exc_type not in _FALLBACK_DUMPED:
            # Mark the type consumed only when a bundle was actually
            # written — a disabled recorder or unset dir must not burn
            # the one slot this failure mode gets.
            if RECORDER.dump_to_dir("pool-fallback", **provenance) is not None:
                _FALLBACK_DUMPED.add(exc_type)
        warnings.warn(
            f"verification pool failed ({type(exc).__name__}: {exc}); "
            "falling back to the serial path",
            RuntimeWarning,
            stacklevel=3,
        )
        parts = []
        for payload in payloads:
            chunk_start = time.perf_counter()
            parts.append(worker(payload))
            observe("verify.chunk", time.perf_counter() - chunk_start)
    out: List[int] = []
    for part in parts:  # chunks are ascending and disjoint: concat is sorted
        out.extend(part)
    return out


def verify_batch(
    pattern: Graph,
    graph_ids: Iterable[int],
    db: GraphDatabase,
    workers: Optional[int] = None,
) -> List[int]:
    """Ids among ``graph_ids`` whose data graph contains ``pattern`` (sorted).

    The pattern is compiled once against corpus label statistics.  With
    ``workers > 1`` (default: ``repro.config.verification_workers()``) the
    candidates are chunked across a process pool; ``workers=1`` is the exact
    serial path.  Results are identical for any worker count.
    """
    ids = sorted(graph_ids)
    if not ids:
        return []
    if workers is None:
        workers = verification_workers()
    workers = max(1, min(workers, len(ids)))
    start = time.perf_counter()
    with span("verify.scan", candidates=len(ids), workers=workers):
        label_freq = db.label_frequencies()
        if workers == 1 or len(ids) < pool_min_candidates():
            count("verify.serial")
            compiled = compile_pattern(pattern, label_freq)
            out = _test_pattern(compiled, [(gid, db[gid]) for gid in ids])
        else:
            arena = arena_for(db)
            if arena is not None:
                make_payload = lambda chunk: (
                    pattern, (ARENA_REF, arena.version, tuple(chunk)),
                    label_freq,
                )
            else:
                make_payload = lambda chunk: (
                    pattern, [(gid, db[gid]) for gid in chunk], label_freq
                )
            out = _run_batch(
                _verify_chunk, make_payload, ids, workers, arena=arena
            )
    observe("verify.scan", time.perf_counter() - start)
    return out


def sim_verify_scan(
    fragments: Sequence[Graph],
    graph_ids: Iterable[int],
    db: GraphDatabase,
    workers: Optional[int] = None,
) -> Set[int]:
    """Ids among ``graph_ids`` containing *any* of ``fragments`` (SimVerify).

    Each fragment is compiled once for the whole scan instead of once per
    (fragment, candidate) pair; large candidate lists are chunked across the
    verification pool exactly like :func:`verify_batch`.
    """
    ids = sorted(graph_ids)
    if not ids or not fragments:
        return set()
    if workers is None:
        workers = verification_workers()
    workers = max(1, min(workers, len(ids)))
    start = time.perf_counter()
    with span(
        "verify.sim",
        candidates=len(ids), fragments=len(fragments), workers=workers,
    ):
        label_freq = db.label_frequencies()
        if workers == 1 or len(ids) < pool_min_candidates():
            count("verify.serial")
            compiled = [CompiledPattern(f, label_freq) for f in fragments]
            out = set(
                _test_fragments(compiled, [(gid, db[gid]) for gid in ids])
            )
        else:
            arena = arena_for(db)
            if arena is not None:
                make_payload = lambda chunk: (
                    list(fragments),
                    (ARENA_REF, arena.version, tuple(chunk)),
                    label_freq,
                )
            else:
                make_payload = lambda chunk: (
                    list(fragments),
                    [(gid, db[gid]) for gid in chunk],
                    label_freq,
                )
            out = set(
                _run_batch(
                    _sim_verify_chunk, make_payload, ids, workers,
                    arena=arena,
                )
            )
    observe("verify.sim", time.perf_counter() - start)
    return out


def exact_verification(
    query_fragment: Graph,
    candidates: FrozenSet[int],
    db: GraphDatabase,
    verification_free: bool,
    workers: Optional[int] = None,
) -> List[int]:
    """Final exact results from ``Rq`` (sorted ids)."""
    with span(
        "verify.exact",
        candidates=len(candidates), free=verification_free,
    ):
        if verification_free:
            count("verify.free")
            return sorted(candidates)
        return verify_batch(query_fragment, candidates, db, workers=workers)


def level_fragments_to_verify(
    manager: SpigManager, level: int
) -> List[SpigVertex]:
    """The NIF vertices at ``level`` — the only fragments SimVerify must test."""
    return [
        v
        for v in manager.vertices_at_level(level)
        if not v.fragment_list.is_indexed
    ]


def sim_verify(
    vertices: Iterable[SpigVertex],
    target: Graph,
    label_freq=None,
) -> bool:
    """True iff any of the given fragments embeds in ``target``.

    Runs through :func:`compile_pattern` — the same matcher as the batch
    :func:`sim_verify_scan` — so serial spot-checks and batched scans cannot
    drift apart.  Pass the corpus ``label_freq``
    (:meth:`GraphDatabase.label_frequencies`) to also reproduce the scan's
    label-rarity matching order exactly; without it the fragment's own label
    statistics drive the order (answers are identical either way).
    """
    return any(
        compile_pattern(v.fragment, label_freq).embeds_in(target)
        for v in vertices
    )
