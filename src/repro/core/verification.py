"""Verification: exact subgraph-isomorphism tests and MCCS SimVerify.

* Exact verification (Algorithm 1, line 18): when the full query fragment is
  itself indexed (frequent or DIF) its candidate set is already exact —
  verification-free, the FG-Index insight the action-aware indexes inherit.
  Otherwise each candidate undergoes a VF2 subgraph-isomorphism test.

* ``SimVerify`` (Algorithm 5, line 4): a candidate attached to SPIG level
  ``i`` is an approximate match at distance ``|q| − i`` iff some connected
  i-edge subgraph of the query embeds in it.  Across the SPIG set, the
  level-i vertices enumerate exactly those subgraphs, so VF2 against the
  level-i fragments realises MCCS verification without computing a full MCCS
  (the paper's "we extend VF2 [3] to handle MCCS-based similarity
  verification").  Only NIF fragments need testing: had the candidate
  contained an *indexed* level-i fragment it would already sit in
  ``Rfree(i)``.

Both verification flavours run through batch APIs (:func:`verify_batch`,
:func:`sim_verify_scan`): patterns are compiled once per scan against
corpus-wide label statistics, and large candidate lists are chunked across a
``multiprocessing`` pool.  The worker count comes from
:func:`repro.config.verification_workers` (``REPRO_WORKERS``; ``1`` = the
serial path, deterministic and pool-free — what CI pins).  Worker count never
affects *results*, only wall-clock: every path returns the same id sets.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.config import verification_workers
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import CompiledPattern, compile_pattern
from repro.graph.labeled_graph import Graph
from repro.obs.histogram import observe
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER
from repro.obs.tracer import span
from repro.spig.manager import SpigManager
from repro.spig.spig import SpigVertex

#: Below this many candidates a pool costs more than it saves.
_MIN_PARALLEL_BATCH = 16


def _chunks(ids: Sequence[int], size: int) -> List[Sequence[int]]:
    return [ids[i:i + size] for i in range(0, len(ids), size)]


def _pool_context():
    """Prefer fork (cheap, COW share of the db chunk); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _verify_chunk(payload) -> List[int]:
    """Worker: ids of the chunk's graphs that contain the pattern."""
    pattern, items, label_freq = payload
    compiled = CompiledPattern(pattern, label_freq)
    return [gid for gid, graph in items if compiled.embeds_in(graph)]


def _sim_verify_chunk(payload) -> List[int]:
    """Worker: ids of the chunk's graphs containing *any* of the fragments."""
    fragments, items, label_freq = payload
    compiled = [CompiledPattern(f, label_freq) for f in fragments]
    return [
        gid for gid, graph in items if any(c.embeds_in(graph) for c in compiled)
    ]


def _run_batch(
    worker,
    make_payload,
    ids: List[int],
    workers: int,
) -> List[int]:
    """Chunk ``ids`` across a pool, falling back to in-process execution.

    Pool failures (unpicklable payloads on spawn platforms, broken workers,
    fork unavailability) must degrade a *Run* action to the slower serial
    path, not abort it: the answer is computable without a pool, so compute
    it.  The fallback executes the same worker on the same payloads, hence
    returns the identical id list.
    """
    chunk_size = max(1, -(-len(ids) // (workers * 4)))  # ~4 chunks per worker
    payloads = [make_payload(chunk) for chunk in _chunks(ids, chunk_size)]
    count("verify.pool.runs")
    count("verify.pool.chunks", len(payloads))
    RECORDER.record(
        "pool.run", chunks=len(payloads), workers=workers,
        candidates=len(ids),
    )
    try:
        with _pool_context().Pool(workers) as pool:
            parts = pool.map(worker, payloads)
    except Exception as exc:  # pickling/OS/pool-management failures
        count("verify.pool.fallbacks")
        RECORDER.record_exception(
            "pool.fallback", exc, chunks=len(payloads), workers=workers
        )
        RECORDER.dump_to_dir("pool-fallback")
        warnings.warn(
            f"verification pool failed ({type(exc).__name__}: {exc}); "
            "falling back to the serial path",
            RuntimeWarning,
            stacklevel=3,
        )
        parts = []
        for payload in payloads:
            chunk_start = time.perf_counter()
            parts.append(worker(payload))
            observe("verify.chunk", time.perf_counter() - chunk_start)
    out: List[int] = []
    for part in parts:  # chunks are ascending and disjoint: concat is sorted
        out.extend(part)
    return out


def verify_batch(
    pattern: Graph,
    graph_ids: Iterable[int],
    db: GraphDatabase,
    workers: Optional[int] = None,
) -> List[int]:
    """Ids among ``graph_ids`` whose data graph contains ``pattern`` (sorted).

    The pattern is compiled once against corpus label statistics.  With
    ``workers > 1`` (default: ``repro.config.verification_workers()``) the
    candidates are chunked across a process pool; ``workers=1`` is the exact
    serial path.  Results are identical for any worker count.
    """
    ids = sorted(graph_ids)
    if not ids:
        return []
    if workers is None:
        workers = verification_workers()
    workers = max(1, min(workers, len(ids)))
    start = time.perf_counter()
    with span("verify.scan", candidates=len(ids), workers=workers):
        label_freq = db.label_frequencies()
        if workers == 1 or len(ids) < _MIN_PARALLEL_BATCH:
            count("verify.serial")
            compiled = compile_pattern(pattern, label_freq)
            out = [gid for gid in ids if compiled.embeds_in(db[gid])]
        else:
            out = _run_batch(
                _verify_chunk,
                lambda chunk: (
                    pattern, [(gid, db[gid]) for gid in chunk], label_freq
                ),
                ids,
                workers,
            )
    observe("verify.scan", time.perf_counter() - start)
    return out


def sim_verify_scan(
    fragments: Sequence[Graph],
    graph_ids: Iterable[int],
    db: GraphDatabase,
    workers: Optional[int] = None,
) -> Set[int]:
    """Ids among ``graph_ids`` containing *any* of ``fragments`` (SimVerify).

    Each fragment is compiled once for the whole scan instead of once per
    (fragment, candidate) pair; large candidate lists are chunked across the
    verification pool exactly like :func:`verify_batch`.
    """
    ids = sorted(graph_ids)
    if not ids or not fragments:
        return set()
    if workers is None:
        workers = verification_workers()
    workers = max(1, min(workers, len(ids)))
    start = time.perf_counter()
    with span(
        "verify.sim",
        candidates=len(ids), fragments=len(fragments), workers=workers,
    ):
        label_freq = db.label_frequencies()
        if workers == 1 or len(ids) < _MIN_PARALLEL_BATCH:
            count("verify.serial")
            compiled = [CompiledPattern(f, label_freq) for f in fragments]
            out = {
                gid for gid in ids
                if any(c.embeds_in(db[gid]) for c in compiled)
            }
        else:
            out = set(
                _run_batch(
                    _sim_verify_chunk,
                    lambda chunk: (
                        list(fragments),
                        [(gid, db[gid]) for gid in chunk],
                        label_freq,
                    ),
                    ids,
                    workers,
                )
            )
    observe("verify.sim", time.perf_counter() - start)
    return out


def exact_verification(
    query_fragment: Graph,
    candidates: FrozenSet[int],
    db: GraphDatabase,
    verification_free: bool,
    workers: Optional[int] = None,
) -> List[int]:
    """Final exact results from ``Rq`` (sorted ids)."""
    with span(
        "verify.exact",
        candidates=len(candidates), free=verification_free,
    ):
        if verification_free:
            count("verify.free")
            return sorted(candidates)
        return verify_batch(query_fragment, candidates, db, workers=workers)


def level_fragments_to_verify(
    manager: SpigManager, level: int
) -> List[SpigVertex]:
    """The NIF vertices at ``level`` — the only fragments SimVerify must test."""
    return [
        v
        for v in manager.vertices_at_level(level)
        if not v.fragment_list.is_indexed
    ]


def sim_verify(
    vertices: Iterable[SpigVertex],
    target: Graph,
    label_freq=None,
) -> bool:
    """True iff any of the given fragments embeds in ``target``.

    Runs through :func:`compile_pattern` — the same matcher as the batch
    :func:`sim_verify_scan` — so serial spot-checks and batched scans cannot
    drift apart.  Pass the corpus ``label_freq``
    (:meth:`GraphDatabase.label_frequencies`) to also reproduce the scan's
    label-rarity matching order exactly; without it the fragment's own label
    statistics drive the order (answers are identical either way).
    """
    return any(
        compile_pattern(v.fragment, label_freq).embeds_in(target)
        for v in vertices
    )
