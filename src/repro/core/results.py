"""Result containers: candidate sets and ranked similarity answers.

Section VI separates similarity candidates into ``Rfree`` (verification-free:
the data graph provably contains an indexed subgraph of the query) and
``Rver`` (needs MCCS verification), each bucketed by SPIG level.  Section VI-C
ranks answers by subgraph distance — ``dist(g1, q) < dist(g2, q)`` implies
``Rank(g1) < Rank(g2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set


@dataclass
class SimilarCandidates:
    """Per-level candidate buckets produced by Algorithm 4."""

    free: Dict[int, Set[int]] = field(default_factory=dict)
    ver: Dict[int, Set[int]] = field(default_factory=dict)

    def free_at(self, level: int) -> Set[int]:
        return self.free.get(level, set())

    def ver_at(self, level: int) -> Set[int]:
        return self.ver.get(level, set())

    def levels(self) -> List[int]:
        return sorted(set(self.free) | set(self.ver))

    def all_candidates(self) -> Set[int]:
        """``Rfree ∪ Rver`` — the paper's reported candidate-set size."""
        out: Set[int] = set()
        for ids in self.free.values():
            out |= ids
        for ids in self.ver.values():
            out |= ids
        return out

    @property
    def candidate_count(self) -> int:
        return len(self.all_candidates())


@dataclass(frozen=True, order=True)
class SimilarityMatch:
    """One ranked answer: lower distance = more similar = better rank."""

    distance: int
    graph_id: int
    verification_free: bool = field(compare=False)

    @property
    def rank_key(self):
        return (self.distance, self.graph_id)


@dataclass
class QueryResults:
    """What the Results panel (GUI Panel 4) displays after *Run*."""

    exact_ids: List[int] = field(default_factory=list)
    similar: List[SimilarityMatch] = field(default_factory=list)

    @property
    def is_exact(self) -> bool:
        return bool(self.exact_ids)

    @property
    def is_empty(self) -> bool:
        return not self.exact_ids and not self.similar

    def ordered_similar_ids(self) -> List[int]:
        return [m.graph_id for m in sorted(self.similar)]
