"""The four monitored GUI actions and per-step status (Algorithm 1, Figure 3)."""

from __future__ import annotations

from enum import Enum


class Action(Enum):
    """Visual actions PRAGUE monitors on the GUI (Section IV-B)."""

    NEW = "New"              # a new edge was drawn
    MODIFY = "Modify"        # an existing edge is deleted
    SIM_QUERY = "SimQuery"   # user opts into substructure similarity search
    RUN = "Run"              # user presses the Run icon


class QueryStatus(Enum):
    """The Status column of Figure 3 after each formulation step."""

    FREQUENT = "frequent"    # current fragment is a frequent fragment
    INFREQUENT = "infrequent"  # infrequent, but exact candidates remain
    SIMILAR = "similar"      # Rq is empty — only approximate matches exist
    VERIFY = "verify"        # final verification pending (after Run)
