"""Session analytics: what the engine did, step by step.

The paper's evaluation reasons about candidate-set trajectories (Figure 3's
status column, the Rfree/Rver split, SPIG sizes per level).  This module
derives those views from a live :class:`~repro.core.prague.PragueEngine` so
examples, benchmarks and downstream tools can inspect a session without
re-deriving internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.actions import Action, QueryStatus
from repro.core.prague import PragueEngine


@dataclass
class LevelBreakdown:
    """Candidate split at one SPIG level (Algorithm 4's buckets)."""

    level: int
    free: int
    ver: int

    @property
    def total(self) -> int:
        return self.free + self.ver


@dataclass
class SpigSummary:
    """Shape of one SPIG: vertices and realising edge-sets per level."""

    edge_id: int
    vertices_per_level: Dict[int, int]
    edge_sets_per_level: Dict[int, int]

    @property
    def num_vertices(self) -> int:
        return sum(self.vertices_per_level.values())

    @property
    def dedup_ratio(self) -> float:
        """edge-sets per vertex — > 1 when canonical dedup merged subsets."""
        vertices = self.num_vertices
        sets = sum(self.edge_sets_per_level.values())
        return sets / vertices if vertices else 0.0


@dataclass
class SessionStatistics:
    """A full snapshot of an engine's session state."""

    steps: int
    query_edges: int
    status: QueryStatus
    similarity_mode: bool
    rq_trajectory: List[Optional[int]] = field(default_factory=list)
    status_trajectory: List[QueryStatus] = field(default_factory=list)
    total_step_seconds: float = 0.0
    total_spig_seconds: float = 0.0
    spigs: List[SpigSummary] = field(default_factory=list)
    level_breakdown: List[LevelBreakdown] = field(default_factory=list)

    @property
    def total_spig_vertices(self) -> int:
        return sum(s.num_vertices for s in self.spigs)

    def summary_lines(self) -> List[str]:
        """A human-readable digest (used by the CLI's ``stats`` output)."""
        lines = [
            f"steps: {self.steps}  edges: {self.query_edges}  "
            f"status: {self.status.value}"
            f"{'  (similarity mode)' if self.similarity_mode else ''}",
            f"processing: {1000 * self.total_step_seconds:.2f} ms total, "
            f"{1000 * self.total_spig_seconds:.2f} ms in SPIG construction",
            f"SPIG set: {len(self.spigs)} SPIGs, "
            f"{self.total_spig_vertices} vertices",
        ]
        if self.rq_trajectory:
            trajectory = " -> ".join(
                "?" if n is None else str(n) for n in self.rq_trajectory
            )
            lines.append(f"|Rq| per step: {trajectory}")
        for item in self.level_breakdown:
            lines.append(
                f"level {item.level}: {item.free} verification-free + "
                f"{item.ver} to-verify candidates"
            )
        return lines


def collect_statistics(engine: PragueEngine) -> SessionStatistics:
    """Snapshot ``engine``'s session into a :class:`SessionStatistics`."""
    new_steps = [r for r in engine.history if r.action is Action.NEW]
    stats = SessionStatistics(
        steps=len(engine.history),
        query_edges=engine.query.num_edges,
        status=engine.status,
        similarity_mode=engine.sim_flag,
        rq_trajectory=[r.rq_size for r in new_steps],
        status_trajectory=[r.status for r in engine.history],
        total_step_seconds=sum(r.processing_seconds for r in engine.history),
        total_spig_seconds=sum(r.spig_seconds for r in engine.history),
    )
    for edge_id in sorted(engine.manager.spigs):
        spig = engine.manager.spigs[edge_id]
        stats.spigs.append(
            SpigSummary(
                edge_id=edge_id,
                vertices_per_level={
                    level: len(spig.vertices_at(level))
                    for level in spig.levels()
                },
                edge_sets_per_level={
                    level: sum(
                        len(v.edge_sets) for v in spig.vertices_at(level)
                    )
                    for level in spig.levels()
                },
            )
        )
    if engine.similar_candidates is not None:
        for level in engine.similar_candidates.levels():
            stats.level_breakdown.append(
                LevelBreakdown(
                    level=level,
                    free=len(engine.similar_candidates.free_at(level)),
                    ver=len(engine.similar_candidates.ver_at(level)),
                )
            )
    return stats
