"""Substructure similarity search — Algorithms 4 and 5.

``SimilarSubCandidates`` scans SPIG levels ``|q| − 1`` down to ``|q| − σ``
(optionally including level ``|q|`` itself, so that exact matches rank at
distance 0 when the user opted into similarity while exact matches still
exist).  At each level, candidates of indexed vertices (frequent fragments or
DIFs — exact FSG lists) go to ``Rfree``; candidates of NIF vertices go to
``Rver``; ids present in both stay only in ``Rfree`` (Algorithm 4, line 7).

``SimilarResultsGen`` walks the levels from the most similar down, so every
answer is reported at its *minimum* distance, and returns the ranked list
(Section VI-C's ordering rule).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterator, List, Set

from repro.config import bitset_candidates
from repro.core.candidates import bits_of, iter_ids
from repro.core.exact import exact_sub_candidates, exact_sub_candidates_bits
from repro.core.results import SimilarCandidates, SimilarityMatch
from repro.core.verification import level_fragments_to_verify, sim_verify_scan
from repro.graph.database import GraphDatabase
from repro.index.builder import ActionAwareIndexes
from repro.obs.histogram import observe
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER
from repro.obs.tracer import span
from repro.query_graph import VisualQuery
from repro.spig.manager import SpigManager


def similar_sub_candidates(
    query: VisualQuery,
    sigma: int,
    manager: SpigManager,
    indexes: ActionAwareIndexes,
    db_ids: FrozenSet[int],
    include_exact_level: bool = True,
) -> SimilarCandidates:
    """Algorithm 4: per-level ``Rfree``/``Rver`` buckets."""
    if sigma < 0:
        raise ValueError("subgraph distance threshold must be >= 0")
    q_size = query.num_edges
    top = q_size if include_exact_level else q_size - 1
    bottom = max(q_size - sigma, 1)
    out = SimilarCandidates()
    use_bits = bitset_candidates()
    db_bits = bits_of(db_ids) if use_bits else 0
    sim_start = time.perf_counter()
    RECORDER.transition(
        "candidates.path", "bitset" if use_bits else "frozenset"
    )
    with span("candidates.similar", sigma=sigma) as outer:
        count(
            "candidates.path.bitset" if use_bits
            else "candidates.path.frozenset"
        )
        for level in range(top, bottom - 1, -1):
            with span("candidates.level", level=level) as sp:
                if use_bits:
                    # Word-parallel bucket accumulation: one OR per vertex,
                    # one AND-NOT for Algorithm 4's line 7, ids materialised
                    # once.
                    free_bits = 0
                    ver_bits = 0
                    for vertex in manager.vertices_at_level(level):
                        mask = exact_sub_candidates_bits(
                            vertex, indexes, db_bits
                        )
                        if vertex.fragment_list.is_indexed:
                            free_bits |= mask
                        else:
                            ver_bits |= mask
                    ver_bits &= ~free_bits
                    out.free[level] = set(iter_ids(free_bits))
                    out.ver[level] = set(iter_ids(ver_bits))
                else:
                    free: Set[int] = set()
                    ver: Set[int] = set()
                    for vertex in manager.vertices_at_level(level):
                        candidates = exact_sub_candidates(
                            vertex, indexes, db_ids
                        )
                        if vertex.fragment_list.is_indexed:
                            free |= candidates
                        else:
                            ver |= candidates
                    # Already verification-free at this level (Alg 4, line 7).
                    ver -= free
                    out.free[level] = free
                    out.ver[level] = ver
                sp.set(
                    free=len(out.free[level]), ver=len(out.ver[level])
                )
        outer.set(candidates=out.candidate_count)
    observe("candidates.similar", time.perf_counter() - sim_start)
    return out


def iter_similar_results(
    query: VisualQuery,
    candidates: SimilarCandidates,
    sigma: int,
    manager: SpigManager,
    db: GraphDatabase,
    verify_all_fragments: bool = False,
) -> Iterator[SimilarityMatch]:
    """Algorithm 5 as a rank-ordered stream.

    Matches are yielded strictly in ranking order (distance ascending,
    graph id ascending within a distance), so a GUI can fill the results
    panel progressively: the most similar answers appear while deeper
    (cheaper-to-like, more expensive-to-verify) levels are still being
    processed.

    Levels are processed high -> low ("the higher level the candidate graph
    is in S, the more similar it is to the query graph"), so the first level
    at which a graph is confirmed yields its true subgraph distance.

    ``verify_all_fragments`` makes SimVerify test *every* level fragment
    instead of only the NIFs.  The NIF-only restriction is sound exactly
    because indexed fragments' candidates land in ``Rfree``; ablations that
    disable the Rfree/Rver split must verify against all fragments.
    """
    q_size = query.num_edges
    confirmed: Set[int] = set()
    for level in sorted(candidates.levels(), reverse=True):
        distance = q_size - level
        if distance > sigma:
            continue
        batch: List[SimilarityMatch] = []
        for gid in candidates.free_at(level):
            if gid not in confirmed:
                confirmed.add(gid)
                batch.append(SimilarityMatch(
                    distance=distance, graph_id=gid, verification_free=True
                ))
        to_verify = candidates.ver_at(level) - confirmed
        if to_verify:
            if verify_all_fragments:
                vertices = list(manager.vertices_at_level(level))
            else:
                vertices = level_fragments_to_verify(manager, level)
            # Batched SimVerify: level fragments are compiled once for the
            # whole candidate list (and chunked across the verification pool
            # when it is large) instead of VF2-from-scratch per candidate.
            for gid in sorted(sim_verify_scan(
                [v.fragment for v in vertices], to_verify, db,
            )):
                confirmed.add(gid)
                batch.append(SimilarityMatch(
                    distance=distance, graph_id=gid,
                    verification_free=False,
                ))
        yield from sorted(batch)


def similar_results_gen(
    query: VisualQuery,
    candidates: SimilarCandidates,
    sigma: int,
    manager: SpigManager,
    db: GraphDatabase,
    verify_all_fragments: bool = False,
) -> List[SimilarityMatch]:
    """Algorithm 5: the materialised form of :func:`iter_similar_results`."""
    with span("results.similar", sigma=sigma) as sp:
        matches = list(iter_similar_results(
            query, candidates, sigma, manager, db,
            verify_all_fragments=verify_all_fragments,
        ))
        sp.set(matches=len(matches))
    return matches
