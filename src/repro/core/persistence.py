"""Saving and resuming formulation sessions.

A visual query session can be long-lived (the paper's participants took ~30 s
per query; real analysts park half-built queries).  This module persists the
whole session — query fragment, SPIG set, candidate state, step history —
to disk and restores it against the *same* database/index pair, verified by
the content fingerprint of :func:`repro.index.builder.database_fingerprint`.

The database and indexes themselves are not embedded (they are large and
already have their own persistence); a session file references them by
fingerprint and refuses to load against anything else.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from repro.core.prague import PragueEngine
from repro.core.undo import take_snapshot, restore_snapshot
from repro.exceptions import SessionError
from repro.graph.database import GraphDatabase
from repro.index.builder import ActionAwareIndexes, database_fingerprint

_MAGIC = "prague-session-v1"


def save_session(
    engine: PragueEngine, db: GraphDatabase, path: Union[str, Path]
) -> int:
    """Persist ``engine``'s session to ``path``; returns bytes written."""
    snapshot = take_snapshot(engine)
    payload = {
        "magic": _MAGIC,
        "fingerprint": database_fingerprint(db, engine.indexes.params),
        "sigma": engine.sigma,
        "auto_similarity": engine.auto_similarity,
        "query": snapshot.query,
        "manager_spigs": snapshot.manager.spigs,
        "manager_registry": snapshot.manager._vertex_by_set,
        "manager_dedup": snapshot.manager.dedup,
        "sim_flag": snapshot.sim_flag,
        "option_pending": snapshot.option_pending,
        "rq": snapshot.rq,
        "similar_candidates": snapshot.similar_candidates,
        "history": list(engine.history),
    }
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    Path(path).write_bytes(data)
    return len(data)


def load_session(
    path: Union[str, Path],
    db: GraphDatabase,
    indexes: ActionAwareIndexes,
) -> PragueEngine:
    """Restore a session saved by :func:`save_session`.

    Raises :class:`SessionError` when the file is not a session file or was
    saved against a different database/parameter combination.
    """
    try:
        with Path(path).open("rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError) as exc:
        raise SessionError(f"cannot read session file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise SessionError(f"{path} is not a PRAGUE session file")
    expected = database_fingerprint(db, indexes.params)
    if payload["fingerprint"] != expected:
        raise SessionError(
            "session was saved against a different database or mining "
            "parameters; rebuild or load the matching pair"
        )
    engine = PragueEngine(
        db, indexes, sigma=payload["sigma"],
        auto_similarity=payload["auto_similarity"],
    )
    engine.query = payload["query"]
    engine.manager.spigs = payload["manager_spigs"]
    engine.manager._vertex_by_set = payload["manager_registry"]
    engine.manager.dedup = payload["manager_dedup"]
    engine.sim_flag = payload["sim_flag"]
    engine.option_pending = payload["option_pending"]
    engine.rq = payload["rq"]
    engine.similar_candidates = payload["similar_candidates"]
    engine.history = payload["history"]
    return engine
