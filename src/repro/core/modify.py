"""Query modification — Algorithm 6 (QueryModification).

Two entry points (Section VII):

* ``suggest_deletion`` — when ``Rq`` became empty and the user asked to
  modify, PRAGUE recommends the edge whose removal yields the *largest*
  non-empty candidate set.  The paper matches each ``q − e_i`` against the
  ``|q′|``-th SPIG level by CAM-code graph isomorphism; our manager's global
  edge-set → vertex map performs the identical lookup in O(1).

* ``apply_deletion`` — delete a chosen edge (suggested or not), prune the
  SPIG set (drop ``S_d``; drop every edge-set, and every emptied vertex, that
  used ``e_d``), leaving exactly the state a fresh formulation of the reduced
  query would have produced — which is why modification costs the paper
  reports are "virtually zero" compared to GBLENDER's full recomputation.

Only single-edge deletions that keep the query connected are permitted; node
relabeling is expressible as deletions plus re-insertions (paper, footnote 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set

from repro.config import bitset_candidates
from repro.core.candidates import bits_of, count, ids_of
from repro.core.exact import exact_sub_candidates, exact_sub_candidates_bits
from repro.exceptions import QueryError
from repro.index.builder import ActionAwareIndexes
from repro.obs.histogram import observe
from repro.obs.metrics import count as metric_count
from repro.obs.recorder import RECORDER
from repro.obs.tracer import span
from repro.query_graph import VisualQuery
from repro.spig.manager import SpigManager


@dataclass(frozen=True)
class DeletionSuggestion:
    """The recommended edge to delete and the candidate set it restores."""

    edge_id: int
    candidates: FrozenSet[int]


def deletable_edges(query: VisualQuery) -> List[int]:
    """Edges whose removal keeps the query fragment connected (or empties it)."""
    out: List[int] = []
    ids = query.edge_id_set()
    if len(ids) == 1:
        return sorted(ids)
    for eid in sorted(ids):
        rest = ids - {eid}
        if query.edge_subgraph_by_ids(rest).is_connected():
            out.append(eid)
    return out


def suggest_deletion(
    query: VisualQuery,
    manager: SpigManager,
    indexes: ActionAwareIndexes,
    db_ids: FrozenSet[int],
) -> Optional[DeletionSuggestion]:
    """Algorithm 6, lines 3-8: the deletion restoring the most candidates."""
    start = time.perf_counter()
    try:
        return _suggest_deletion(query, manager, indexes, db_ids)
    finally:
        observe("modify.suggest", time.perf_counter() - start)


def _suggest_deletion(
    query: VisualQuery,
    manager: SpigManager,
    indexes: ActionAwareIndexes,
    db_ids: FrozenSet[int],
) -> Optional[DeletionSuggestion]:
    ids = query.edge_id_set()
    with span("modify.suggest", edges=len(ids)) as sp:
        if bitset_candidates():
            metric_count("candidates.path.bitset")
            RECORDER.transition("candidates.path", "bitset")
            # Compare modification deltas by popcount; materialise ids once,
            # for the winner only.
            db_bits = bits_of(db_ids)
            best_eid: Optional[int] = None
            best_mask = 0
            best_count = -1
            for eid in deletable_edges(query):
                rest = ids - {eid}
                if not rest:
                    continue
                vertex = manager.vertex_for(rest)
                if vertex is None:
                    continue  # cannot happen with per-step SPIG maintenance
                mask = exact_sub_candidates_bits(vertex, indexes, db_bits)
                mask_count = count(mask)
                if best_eid is None or mask_count > best_count:
                    best_eid, best_mask, best_count = eid, mask, mask_count
            if best_eid is None:
                return None
            sp.set(suggested=best_eid, restored=best_count)
            return DeletionSuggestion(
                edge_id=best_eid, candidates=ids_of(best_mask)
            )
        metric_count("candidates.path.frozenset")
        RECORDER.transition("candidates.path", "frozenset")
        best: Optional[DeletionSuggestion] = None
        for eid in deletable_edges(query):
            rest = ids - {eid}
            if not rest:
                continue
            vertex = manager.vertex_for(rest)
            if vertex is None:
                continue  # cannot happen when SPIGs were maintained each step
            rq = exact_sub_candidates(vertex, indexes, db_ids)
            if best is None or len(rq) > len(best.candidates):
                best = DeletionSuggestion(edge_id=eid, candidates=rq)
        if best is not None:
            sp.set(suggested=best.edge_id, restored=len(best.candidates))
        return best


def apply_deletion(
    query: VisualQuery, manager: SpigManager, edge_id: int
) -> None:
    """Algorithm 6, lines 11-14: delete ``e_d`` and prune the SPIG set."""
    if edge_id not in query.edge_id_set():
        raise QueryError(f"edge {edge_id} is not part of the query")
    query.delete_edge(edge_id)  # validates connectivity
    manager.on_delete_edge(edge_id)


def apply_multi_deletion(
    query: VisualQuery, manager: SpigManager, edge_ids: Iterable[int]
) -> List[int]:
    """Delete several edges in one gesture (the paper's "trivial" extension).

    Deletions are applied in an order that keeps the fragment connected at
    every intermediate step; if no such order exists (the removal would split
    the query), nothing is deleted and :class:`QueryError` is raised.
    Returns the order actually applied.
    """
    targets = set(edge_ids)
    unknown = targets - set(query.edge_id_set())
    if unknown:
        raise QueryError(f"edges {sorted(unknown)} are not part of the query")
    if targets == set(query.edge_id_set()):
        order = sorted(targets, reverse=True)
    else:
        remaining_graph = query.edge_subgraph_by_ids(
            query.edge_id_set() - targets
        )
        if remaining_graph.num_edges and not remaining_graph.is_connected():
            raise QueryError(
                "deleting these edges would disconnect the query (Section VII)"
            )
        order = _safe_deletion_order(query, targets)
        if order is None:
            raise QueryError(
                "deleting these edges would disconnect the query (Section VII)"
            )
    applied: List[int] = []
    for eid in order:
        query.remove_edge_unchecked(eid)  # end state validated above
        manager.on_delete_edge(eid)
        applied.append(eid)
    return applied


def _safe_deletion_order(
    query: VisualQuery, targets: Set[int]
) -> Optional[List[int]]:
    """An order over ``targets`` with every intermediate fragment connected."""
    order: List[int] = []
    probe = query.copy()
    pending = set(targets)
    while pending:
        for eid in sorted(pending):
            rest = probe.edge_id_set() - {eid}
            if not rest or probe.edge_subgraph_by_ids(rest).is_connected():
                probe.delete_edge(eid)
                order.append(eid)
                pending.discard(eid)
                break
        else:
            return None
    return order


def relabel_node(
    query: VisualQuery,
    manager: SpigManager,
    node: object,
    new_label: str,
) -> List[int]:
    """Node relabeling via the paper's footnote 5 decomposition.

    "Node relabeling can be expressed as deletion of edge(s) following by
    insertion of new edge(s) and node": every edge incident to ``node`` is
    deleted (SPIG set pruned accordingly), a fresh node with ``new_label``
    takes its place, and the edges are re-drawn — each getting a new
    formulation id and a freshly built SPIG.  Returns the new edge ids.

    Only legal when the query stays connected throughout, which for interior
    nodes means the re-insertion restores connectivity at the end; as in the
    GUI, the whole gesture is atomic (applied on a probe first).
    """
    incident = [
        (eid, *query.edge(eid)[:2], query.edge(eid)[2])
        for eid in query.edge_ids()
        if node in query.edge(eid)[:2]
    ]
    if not incident:
        raise QueryError(f"node {node!r} has no incident edges")
    survivors = query.edge_id_set() - {eid for eid, *_ in incident}
    if survivors:
        if not query.edge_subgraph_by_ids(survivors).is_connected():
            raise QueryError(
                "relabeling this node would transiently disconnect the query"
            )
    # Delete the incident edges; the gesture is atomic, so transiently
    # disconnected intermediates are fine (the end state was checked above).
    for eid, *_ in sorted(incident, reverse=True):
        query.remove_edge_unchecked(eid)
        manager.on_delete_edge(eid)
    fresh = query.fresh_node_id(node)
    query.add_node(fresh, new_label)
    # Re-insert edges anchored in the surviving fragment first so every
    # prefix stays connected (the per-step GUI invariant).
    survivor_nodes: Set[object] = set()
    for eid in survivors:
        u, v, _ = query.edge(eid)
        survivor_nodes.update((u, v))
    def anchored_last(item) -> bool:
        _eid, u, v, _elabel = item
        touches_survivors = u in survivor_nodes or v in survivor_nodes
        return bool(survivor_nodes) and not touches_survivors

    ordered = sorted(incident, key=anchored_last)
    new_ids: List[int] = []
    for _eid, u, v, elabel in ordered:
        a = fresh if u == node else u
        b = fresh if v == node else v
        new_id = query.add_edge(a, b, elabel)
        manager.on_new_edge(query, new_id)
        new_ids.append(new_id)
    return new_ids
