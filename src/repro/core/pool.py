"""The persistent verification pool and the process-wide arena registry.

Before this module existed every ``_run_batch`` call built a fresh
``multiprocessing.Pool`` — fork/spawn startup on *every* Run action — and
pickled the candidate graphs into each chunk payload.  Both costs land
squarely inside the SRT budget the paper optimizes, so this module keeps the
machinery warm instead:

* :func:`arena_for` maintains one shared-memory
  :class:`~repro.index.arena.IndexArena` per live database, keyed by the
  database object and invalidated whenever ``len(db)`` changes (``db.add()``
  only ever appends).  Engines register their indexes via
  :func:`register_index_plane` so the published arena also carries the
  A2F/A2I lookup tables — the shared, immutable half of the engine state.
* :class:`WarmPool` is the long-lived pool: lazily spawned on the first
  parallel batch, reused while the worker count and arena version stay put,
  expired after :func:`repro.config.pool_idle_ttl` idle seconds, torn down
  and respawned automatically after a broken-pool failure, and shut down for
  good at interpreter exit (so no orphaned processes or shared-memory
  segments survive pytest).
* :func:`resolve_items` is the payload boundary: pooled chunks reference
  candidates as ``("arena", version, ids)`` and workers materialize them
  from the arena they attached at spawn (decoded graphs are memoised per
  worker, so a graph crosses the pickle boundary zero times).

Everything here is wall-clock machinery only: any failure degrades to the
serial in-process path with identical answers
(:mod:`repro.core.verification`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import time
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import arena_enabled, pool_idle_ttl, pool_warm
from repro.obs.metrics import count, gauge
from repro.obs.profiler import profile_block
from repro.obs.recorder import RECORDER

#: Payload tag for arena-resident chunks (see :func:`resolve_items`).
ARENA_REF = "arena"


def _pool_context():
    """Prefer fork (cheap, COW share of the parent); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# ----------------------------------------------------------------------
# arena registry (parent side)
# ----------------------------------------------------------------------
#: id(db) -> (db weakref, db length at build, arena) — the length pins the
#: invalidation: ``db.add()`` appends, so a length change means new content.
_ARENAS: Dict[int, Tuple[Any, int, Any]] = {}
#: arena version -> arena, for parent-side payload resolution (fallbacks).
_BY_VERSION: Dict[str, Any] = {}
#: id(db) -> ActionAwareIndexes to embed in that database's arena.
_INDEX_PLANES: Dict[int, Any] = {}
#: Serializes registry mutation: the service layer runs sessions on
#: ``ThreadingHTTPServer`` threads, so two first-Run actions can race into
#: ``arena_for`` (and the weakref death callback can fire on any thread).
_REGISTRY_LOCK = threading.RLock()


def register_index_plane(db, indexes) -> None:
    """Declare ``indexes`` as the index plane for ``db``'s arena.

    Cheap (a dict write); the arena itself is built lazily on the first
    pooled batch.  Engines call this at construction so the published arena
    carries the A2F/A2I lookup tables alongside the graphs.
    """
    _INDEX_PLANES[id(db)] = indexes


def _drop_arena(key: int, drop_plane: bool = False) -> None:
    """Dispose ``key``'s arena; keep its index plane unless the db died.

    Invalidation (``db.add()`` grew the database) must preserve the plane
    registration so the rebuilt arena still carries the A2F/A2I tables —
    only the death of the database itself retires the plane.
    """
    with _REGISTRY_LOCK:
        entry = _ARENAS.pop(key, None)
        if drop_plane:
            _INDEX_PLANES.pop(key, None)
        if entry is not None:
            _, _, arena = entry
            _BY_VERSION.pop(arena.version, None)
            arena.dispose()


def arena_for(db) -> Optional[Any]:
    """The published shared-memory arena for ``db`` (built on first use).

    Returns ``None`` when the arena is disabled (``REPRO_ARENA=0``) or
    shared memory is unavailable — callers then pickle candidates by value.
    A stale entry (the database grew) is disposed and rebuilt, which also
    forces the warm pool to respawn against the new version.
    """
    if not arena_enabled():
        return None
    key = id(db)
    with _REGISTRY_LOCK:
        entry = _ARENAS.get(key)
        if entry is not None:
            ref, length, arena = entry
            if ref() is db and length == len(db):
                return arena
            _drop_arena(key)
            count("arena.invalidations")
            RECORDER.record("arena.invalidate", db_size=len(db))
        from repro.index.arena import IndexArena

        start = time.perf_counter()
        with profile_block("arena.build"):
            arena = IndexArena.build(db, indexes=_INDEX_PLANES.get(key))
        if arena.publish() is None:  # no shared memory on this platform
            arena.dispose()
            return None
        _ARENAS[key] = (weakref.ref(db, lambda _r, k=key: _drop_arena(
                            k, drop_plane=True)),
                        len(db), arena)
        _BY_VERSION[arena.version] = arena
        count("arena.builds")
        gauge("arena.bytes", arena.nbytes)
        RECORDER.record(
            "arena.build", version=arena.version, bytes=arena.nbytes,
            graphs=arena.db_size, seconds=time.perf_counter() - start,
        )
        return arena


def arena_segment_bytes() -> int:
    """Total bytes of live published arena segments in this process.

    The memory gauge behind ``arena.segment_bytes`` in ``full_snapshot()``:
    shared-memory segments do not show up in ``tracemalloc`` (they are not
    Python allocations) and only partially in RSS (pages fault in lazily),
    so the arena registry reports them explicitly.
    """
    with _REGISTRY_LOCK:
        return sum(arena.nbytes for _, _, arena in _ARENAS.values())


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_WORKER_ARENA = None


def _attach_worker_arena(name: Optional[str], version: Optional[str]) -> None:
    """Pool initializer: attach the published arena once per worker.

    Must never raise — a failing ``Pool`` initializer makes the pool respawn
    workers in a loop.  On any failure the worker simply has no arena and
    the first arena-referencing chunk raises, which the parent turns into a
    serial fallback.
    """
    global _WORKER_ARENA
    if name is None:
        _WORKER_ARENA = None
        return
    try:
        from repro.index.arena import IndexArena

        _WORKER_ARENA = IndexArena.attach(name, expected_version=version)
    except Exception:
        _WORKER_ARENA = None


def resolve_items(items) -> Sequence[Tuple[int, Any]]:
    """Materialize a chunk payload's ``(gid, graph)`` pairs.

    Inline payloads (a list of pairs) pass through.  Arena references —
    ``(ARENA_REF, version, ids)`` tuples — resolve against the worker's
    attached arena, or against the parent-side registry when the chunk runs
    in-process (the serial fallback path).
    """
    if not (isinstance(items, tuple) and len(items) == 3
            and items[0] == ARENA_REF):
        return items
    _, version, ids = items
    attached = _WORKER_ARENA
    if attached is not None and attached.version == version:
        return attached.items(ids)
    arena = _BY_VERSION.get(version)
    if arena is not None:
        return arena.items(ids)
    if attached is not None:
        count("arena.version_mismatch")
        raise RuntimeError(
            f"arena version mismatch: worker attached {attached.version!r} "
            f"but the chunk references {version!r} "
            "(stale forked worker dispatched after an arena rebuild)"
        )
    raise RuntimeError(
        f"no arena attached for version {version!r} "
        "(worker initializer failed or shared memory unavailable)"
    )


# ----------------------------------------------------------------------
# the warm pool
# ----------------------------------------------------------------------
class WarmPool:
    """One long-lived verification pool per process.

    The pool is (re)spawned whenever the requested worker count or the arena
    version changes, after an idle TTL, or after a dispatch failure; between
    those events every batch reuses the running workers, which is where the
    cold-start milliseconds of each Run action go to die.

    Workers are shared across HTTP requests and sessions — per-request
    correlation is *not* pool state.  Each dispatched chunk carries its own
    observability context (including the dispatching request's id, see
    :func:`repro.obs.snapshot.worker_context`), applied at chunk entry, so
    a warm worker serving interleaved requests still labels every recorded
    event with the right id.
    """

    def __init__(self) -> None:
        self._pool = None
        self._key: Optional[Tuple[int, Optional[str]]] = None
        self._last_used = 0.0
        self._respawn_pending = False
        # Lifecycle lock only: concurrent ``Pool.map`` calls are safe, but
        # two service threads must not race a spawn/discard/TTL decision.
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, workers: int, arena) -> None:
        name = version = None
        if arena is not None:
            name = arena.publish()
            version = arena.version
        ctx = _pool_context()
        self._pool = ctx.Pool(
            workers,
            initializer=_attach_worker_arena,
            initargs=(name, version),
        )
        self._key = (workers, version)
        self._last_used = time.monotonic()
        if self._respawn_pending:
            self._respawn_pending = False
            count("verify.pool.respawns")
        count("verify.pool.spawns")
        gauge("pool.workers", workers)
        RECORDER.record(
            "pool.spawn", workers=workers,
            arena=version if version is not None else "off",
        )

    def _discard(self, reason: str) -> None:
        with self._lock:
            if self._pool is None:
                return
            pool, self._pool, self._key = self._pool, None, None
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass
        RECORDER.record("pool.discard", reason=reason)

    def shutdown(self) -> None:
        """Explicitly stop the warm workers (idempotent)."""
        self._discard("shutdown")

    # -- dispatch ------------------------------------------------------
    def _ensure(self, workers: int, arena):
        with self._lock:
            version = arena.version if arena is not None else None
            if self._pool is not None:
                ttl = pool_idle_ttl()
                if self._key != (workers, version):
                    self._discard("reconfigured")
                    self._respawn_pending = True
                elif ttl and time.monotonic() - self._last_used > ttl:
                    count("verify.pool.expired")
                    self._discard("idle-ttl")
                    self._respawn_pending = True
            if self._pool is None:
                self._spawn(workers, arena)
            else:
                count("verify.pool.reuses")
                RECORDER.transition("pool.dispatch", "reuse")
            return self._pool

    def map(self, func, payloads: List, workers: int, arena=None) -> List:
        """Run ``func`` over ``payloads`` on the warm (or a cold) pool.

        Cold mode (``REPRO_POOL_WARM=0``) reproduces the historical
        pool-per-call behaviour.  Any failure tears the warm pool down so
        the next dispatch respawns cleanly, then propagates to the caller's
        serial fallback.
        """
        if not pool_warm():
            count("verify.pool.cold_spawns")
            RECORDER.transition("pool.dispatch", "cold")
            name = version = None
            if arena is not None:
                name = arena.publish()
                version = arena.version
            with _pool_context().Pool(
                workers,
                initializer=_attach_worker_arena,
                initargs=(name, version),
            ) as pool:
                return pool.map(func, payloads)
        pool = self._ensure(workers, arena)
        try:
            out = pool.map(func, payloads)
        except Exception:
            self._discard("broken")
            self._respawn_pending = True
            raise
        self._last_used = time.monotonic()
        return out


#: The process-wide warm pool.
POOL = WarmPool()


def shutdown(dispose_arenas: bool = True) -> None:
    """Stop the warm pool and (by default) unlink every published arena.

    Safe to call repeatedly; registered at interpreter exit so a test run
    leaves no worker processes and no shared-memory segments behind.
    """
    POOL.shutdown()
    if dispose_arenas:
        for key in list(_ARENAS):
            _drop_arena(key)


atexit.register(shutdown)
