"""Formulation sessions and the SRT timeline model.

System response time (SRT) is "the duration between the time a user presses
the Run icon and the time when the user gets the query results".  In the
blended paradigm the per-step work overlaps the GUI latency the user spends
drawing (at least ~2 s per edge, Section VIII-B); only the *backlog* — work
that did not fit into the available latency — plus the final Run-time work is
felt by the user.  In the traditional paradigm nothing overlaps and the SRT
is the whole evaluation time.

:class:`QuerySpec` is a scripted formulation: dropped nodes, the edge sequence
(the paper's "default sequence" labels in Figure 8), and where applicable an
alternative sequence (Table III) and the step at which ``Rq`` empties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_EDGE_LATENCY_SECONDS
from repro.core.prague import PragueEngine, RunReport, StepReport
from repro.core.results import QueryResults
from repro.graph.labeled_graph import Graph, NodeId
from repro.obs.srt import SrtLedger, build_ledger, events_from_reports


@dataclass(frozen=True)
class QuerySpec:
    """A scripted visual query formulation."""

    name: str
    nodes: Dict[NodeId, str]
    edges: Tuple[Tuple[NodeId, NodeId], ...]
    edge_labels: Dict[Tuple[NodeId, NodeId], str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.edges)

    def graph(self) -> Graph:
        """The final query graph the user intends to pose.

        Every declared node is part of the intended query — including nodes
        the script drops but never wires to an edge.  (The *engine's* live
        fragment, :meth:`repro.query_graph.VisualQuery.graph`, deliberately
        counts only edge-incident nodes; the ground-truth spec must not.)
        """
        g = Graph()
        for node, label in self.nodes.items():
            g.add_node(node, label)
        for u, v in self.edges:
            g.add_edge(u, v, self.edge_labels.get((u, v)))
        return g

    def reordered(self, order: Sequence[int], suffix: str = "-alt") -> "QuerySpec":
        """The same query formulated in a different edge order (Table III).

        ``order`` holds 1-based positions into the default sequence.
        """
        if sorted(order) != list(range(1, len(self.edges) + 1)):
            raise ValueError("order must be a permutation of 1..|edges|")
        edges = tuple(self.edges[i - 1] for i in order)
        return replace(self, name=self.name + suffix, edges=edges)


@dataclass
class SessionTrace:
    """Everything a simulated formulation produced, timeline included."""

    spec_name: str
    step_reports: List[StepReport]
    run_report: RunReport
    edge_latency: float
    backlog_before_run: float
    srt_seconds: float
    formulation_seconds: float
    #: Per-action SRT decomposition (:mod:`repro.obs.srt`); the scalar
    #: ``backlog_before_run``/``srt_seconds`` fields above are its folds.
    ledger: Optional[SrtLedger] = None

    @property
    def results(self) -> QueryResults:
        return self.run_report.results

    @property
    def total_step_processing(self) -> float:
        return sum(r.processing_seconds for r in self.step_reports)

    @property
    def spig_seconds_per_step(self) -> List[float]:
        return [r.spig_seconds for r in self.step_reports]


def formulate(
    engine: PragueEngine,
    spec: QuerySpec,
    edge_latency: float = DEFAULT_EDGE_LATENCY_SECONDS,
) -> SessionTrace:
    """Simulate a user formulating ``spec`` on ``engine`` and pressing Run.

    The timeline model: each drawn edge offers ``edge_latency`` seconds during
    which the engine's per-step processing runs in the background; processing
    that exceeds the offered latency carries over as backlog.  The SRT felt at
    Run is ``backlog + run processing``.
    """
    for node, label in spec.nodes.items():
        engine.add_node(node, label)
    reports: List[StepReport] = []
    for u, v in spec.edges:
        reports.append(engine.add_edge(u, v, spec.edge_labels.get((u, v))))
    run_report = engine.run()
    ledger = build_ledger(
        events_from_reports(reports, edge_latency),
        run_seconds=run_report.processing_seconds,
    )
    return SessionTrace(
        spec_name=spec.name,
        step_reports=reports,
        run_report=run_report,
        edge_latency=edge_latency,
        backlog_before_run=ledger.backlog_before_run,
        srt_seconds=ledger.srt_seconds,
        formulation_seconds=edge_latency * len(spec.edges),
        ledger=ledger,
    )


def traditional_srt(
    search: Callable[[Graph], object], query: Graph
) -> Tuple[object, float]:
    """SRT of a traditional (non-blended) system: full evaluation at Run."""
    start = time.perf_counter()
    results = search(query)
    return results, time.perf_counter() - start
