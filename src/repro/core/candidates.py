"""Bitset candidate sets — word-parallel ``Rq``/``Rfree``/``Rver`` algebra.

Data-graph ids are dense ``0..|D|-1`` (the database assigns them by append),
so a candidate set is representable as a Python ``int`` bitmask with bit
``gid`` set.  Intersections and unions — the inner loop of Algorithm 3's Φ/Υ
probes, Algorithm 4's per-level buckets and Algorithm 6's deletion deltas —
become single ``&``/``|`` ops over machine words instead of O(n) hashed-set
walks.

The module is the conversion boundary: everything outside ``repro.core`` (and
the A2F/A2I ``fsg_bits`` shims) keeps speaking ``frozenset``/``set`` of ids;
callers convert once at the edges with :func:`bits_of`/:func:`ids_of`.
``REPRO_BITSET=0`` (see :func:`repro.config.bitset_candidates`) switches the
candidate pipeline back to the frozenset reference implementation, which the
test suite uses for A/B equivalence checks.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator

from repro.obs.metrics import count as _metric_count

Bits = int


def bits_of(ids: Iterable[int]) -> Bits:
    """Pack an iterable of dense graph ids into a bitmask."""
    mask = 0
    for gid in ids:
        mask |= 1 << gid
    return mask


def ids_of(mask: Bits) -> FrozenSet[int]:
    """Unpack a bitmask into the frozenset of set bit positions."""
    return frozenset(iter_ids(mask))


def iter_ids(mask: Bits) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_to_bytes(mask: Bits) -> bytes:
    """Serialize a bitmask to little-endian bytes (the arena wire format)."""
    return mask.to_bytes(max(1, (mask.bit_length() + 7) // 8), "little")


def mask_from_bytes(data: bytes) -> Bits:
    """Inverse of :func:`mask_to_bytes`."""
    return int.from_bytes(data, "little")


def count(mask: Bits) -> int:
    """Population count — ``len()`` of the candidate set."""
    return mask.bit_count()


def full_mask(n: int) -> Bits:
    """The candidate set ``{0, …, n-1}`` (all graphs of a database of size n)."""
    return (1 << n) - 1


def intersect_all(masks: Iterable[Bits], universe: Bits = 0) -> Bits:
    """AND-fold, smallest-popcount first, with an early exit on empty.

    Ordering by popcount keeps intermediate results small — the same
    smallest-first heuristic the frozenset path uses.

    ``universe`` is the neutral element of the fold: an intersection over
    *zero* constraint sets leaves every graph a candidate, so callers pass
    the all-graphs mask (``full_mask(len(db))``), mirroring the ``db_ids``
    fallback of the frozenset reference path.  An empty fold returning the
    empty set would silently turn "no pruning information" into "provably
    no match" — the exact-candidate emptiness test is load-bearing
    (it triggers PRAGUE's option dialogue), so the distinction matters.
    """
    _metric_count("candidates.intersections")
    ordered = sorted(masks, key=count)
    if not ordered:
        return universe
    out = ordered[0]
    for mask in ordered[1:]:
        out &= mask
        if not out:
            return 0
    return out
