"""Undo/redo for formulation sessions.

Any practical visual editor needs undo; the paper's modification machinery
(Section VII) only covers *semantic* edits (edge deletion).  True undo must
restore the exact prior state — including edge formulation ids and the SPIG
set — so it is implemented as whole-session snapshots: the query, the SPIG
manager and the candidate state are deep-copied (the immutable database and
indexes are shared, not copied).

:class:`UndoableEngine` wraps a :class:`~repro.core.prague.PragueEngine`,
pushing a snapshot before every mutating gesture::

    session = UndoableEngine(PragueEngine(db, indexes))
    session.add_edge("a", "b")
    session.delete_edge(1)
    session.undo()        # the deletion never happened
    session.undo()        # nor the addition
    session.redo()        # the addition is back
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core.prague import PragueEngine, RunReport, StepReport
from repro.exceptions import SessionError
from repro.graph.labeled_graph import NodeId


@dataclass
class EngineSnapshot:
    """A restorable point-in-time copy of an engine's session state."""

    query: Any
    manager: Any
    sim_flag: bool
    option_pending: bool
    rq: Any
    similar_candidates: Any
    history_len: int
    #: db size the snapshot's candidate state was derived against — restoring
    #: must re-arm the engine's growth guard, not inherit the newer one.
    candidates_db_size: int = -1


def take_snapshot(engine: PragueEngine) -> EngineSnapshot:
    """Deep-copy the mutable session state (db/indexes stay shared)."""
    memo = {
        id(engine.indexes): engine.indexes,
        id(engine.db): engine.db,
        id(engine.db_ids): engine.db_ids,
    }
    return EngineSnapshot(
        query=copy.deepcopy(engine.query, memo),
        manager=copy.deepcopy(engine.manager, memo),
        sim_flag=engine.sim_flag,
        option_pending=engine.option_pending,
        rq=engine.rq,
        similar_candidates=copy.deepcopy(engine.similar_candidates, memo),
        history_len=len(engine.history),
        candidates_db_size=engine._candidates_db_size,
    )


def restore_snapshot(engine: PragueEngine, snapshot: EngineSnapshot) -> None:
    """Reset ``engine`` to ``snapshot`` (symmetric with take_snapshot)."""
    engine.query = copy.deepcopy(snapshot.query)
    engine.manager = copy.deepcopy(snapshot.manager, {
        id(engine.indexes): engine.indexes,
    })
    engine.sim_flag = snapshot.sim_flag
    engine.option_pending = snapshot.option_pending
    engine.rq = snapshot.rq
    engine.similar_candidates = copy.deepcopy(snapshot.similar_candidates)
    engine._candidates_db_size = snapshot.candidates_db_size
    del engine.history[snapshot.history_len:]


class UndoableEngine:
    """A PragueEngine with an undo/redo stack over mutating gestures."""

    def __init__(self, engine: PragueEngine, limit: int = 64) -> None:
        self.engine = engine
        self.limit = limit
        self._undo: List[EngineSnapshot] = []
        self._redo: List[EngineSnapshot] = []

    # ------------------------------------------------------------------
    # wrapped gestures (mutating ones snapshot first)
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: str) -> NodeId:
        return self.engine.add_node(node, label)  # non-destructive

    def add_edge(self, u: NodeId, v: NodeId, label=None) -> StepReport:
        return self._mutate(self.engine.add_edge, u, v, label)

    def add_pattern(self, pattern, attach=None) -> List[StepReport]:
        return self._mutate(self.engine.add_pattern, pattern, attach)

    def delete_edge(self, edge_id: Optional[int] = None) -> StepReport:
        return self._mutate(self.engine.delete_edge, edge_id)

    def delete_edges(self, edge_ids) -> StepReport:
        return self._mutate(self.engine.delete_edges, edge_ids)

    def relabel_node(self, node: NodeId, new_label: str) -> StepReport:
        return self._mutate(self.engine.relabel_node, node, new_label)

    def enable_similarity(self) -> StepReport:
        return self._mutate(self.engine.enable_similarity)

    def run(self) -> RunReport:
        return self.engine.run()  # non-destructive

    # ------------------------------------------------------------------
    # undo / redo
    # ------------------------------------------------------------------
    @property
    def can_undo(self) -> bool:
        return bool(self._undo)

    @property
    def can_redo(self) -> bool:
        return bool(self._redo)

    def undo(self) -> None:
        if not self._undo:
            raise SessionError("nothing to undo")
        self._redo.append(take_snapshot(self.engine))
        restore_snapshot(self.engine, self._undo.pop())

    def redo(self) -> None:
        if not self._redo:
            raise SessionError("nothing to redo")
        self._undo.append(take_snapshot(self.engine))
        restore_snapshot(self.engine, self._redo.pop())

    # ------------------------------------------------------------------
    def _mutate(self, fn, *args):
        snapshot = take_snapshot(self.engine)
        result = fn(*args)
        self._undo.append(snapshot)
        if len(self._undo) > self.limit:
            self._undo.pop(0)
        self._redo.clear()
        return result

    def __getattr__(self, name: str):
        # read-only passthrough (query, manager, status, rq, ...)
        return getattr(self.engine, name)
