"""The PRAGUE core: Algorithms 1 and 3-6 plus the session/SRT model."""

from repro.core.actions import Action, QueryStatus
from repro.core.exact import exact_sub_candidates
from repro.core.modify import (
    DeletionSuggestion,
    apply_deletion,
    apply_multi_deletion,
    deletable_edges,
    relabel_node,
    suggest_deletion,
)
from repro.core.plane import SharedPlane
from repro.core.prague import PragueEngine, RunReport, StepReport
from repro.core.results import QueryResults, SimilarCandidates, SimilarityMatch
from repro.core.persistence import load_session, save_session
from repro.core.session import QuerySpec, SessionTrace, formulate, traditional_srt
from repro.core.similar import (
    iter_similar_results,
    similar_results_gen,
    similar_sub_candidates,
)
from repro.core.statistics import SessionStatistics, collect_statistics
from repro.core.undo import UndoableEngine, restore_snapshot, take_snapshot
from repro.core.verification import exact_verification, sim_verify

__all__ = [
    "Action",
    "QueryStatus",
    "PragueEngine",
    "SharedPlane",
    "StepReport",
    "RunReport",
    "QueryResults",
    "SimilarCandidates",
    "SimilarityMatch",
    "QuerySpec",
    "SessionTrace",
    "formulate",
    "traditional_srt",
    "exact_sub_candidates",
    "similar_sub_candidates",
    "similar_results_gen",
    "exact_verification",
    "sim_verify",
    "suggest_deletion",
    "apply_deletion",
    "apply_multi_deletion",
    "relabel_node",
    "deletable_edges",
    "DeletionSuggestion",
    "iter_similar_results",
    "UndoableEngine",
    "take_snapshot",
    "restore_snapshot",
    "save_session",
    "load_session",
    "SessionStatistics",
    "collect_statistics",
]
