"""The shared, immutable half of the engine state.

ROADMAP item 1's critical refactor: everything a formulation session *reads*
but never *writes* — the graph database, the mined A2F/A2I indexes, and the
published shared-memory arena — bundled into one :class:`SharedPlane` that
is built once per process and shared read-only by every concurrent session.
Per-session state (the visual query, the SPIG set, candidates, the undo
stack) stays inside each :class:`~repro.core.prague.PragueEngine`.

Constructing an engine from a plane is O(1): the plane registered the index
plane with the arena registry and snapshotted the id universe when it was
built, so spinning up session number 500 costs a few attribute writes, not a
re-walk of the database.  ``db.add()`` mid-flight stays correct — both the
plane and the engine version-guard their snapshots on ``len(db)``.
"""

from __future__ import annotations

import threading
from typing import FrozenSet, Optional

from repro.config import DEFAULT_SUBGRAPH_DISTANCE
from repro.core.pool import arena_for, register_index_plane
from repro.graph.database import GraphDatabase
from repro.index.builder import ActionAwareIndexes


class SharedPlane:
    """One process-wide bundle of (db, indexes, arena) shared by sessions."""

    def __init__(self, db: GraphDatabase, indexes: ActionAwareIndexes) -> None:
        self.db = db
        self.indexes = indexes
        self._lock = threading.Lock()
        self._ids: FrozenSet[int] = frozenset(db.ids())
        register_index_plane(db, indexes)

    @property
    def db_ids(self) -> FrozenSet[int]:
        """The id universe, version-guarded against ``db.add()``."""
        ids = self._ids
        if len(ids) != len(self.db):
            with self._lock:
                if len(self._ids) != len(self.db):
                    self._ids = frozenset(self.db.ids())
                ids = self._ids
        return ids

    def warm(self) -> Optional[object]:
        """Pre-build and publish the shared-memory arena (idempotent).

        A server calls this once at startup so the first Run action of the
        first session doesn't pay the arena build; returns ``None`` when the
        arena is disabled or shared memory is unavailable.
        """
        return arena_for(self.db)

    def engine(
        self,
        sigma: int = DEFAULT_SUBGRAPH_DISTANCE,
        auto_similarity: bool = True,
    ):
        """A fresh per-session engine wired to this plane."""
        from repro.core.prague import PragueEngine

        return PragueEngine.from_plane(
            self, sigma=sigma, auto_similarity=auto_similarity
        )
