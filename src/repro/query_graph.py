"""The visual query fragment: a labeled graph whose edges carry formulation ids.

Section V: "We allocate each edge a unique identifier according to their
formulation sequence" — the ℓ-th edge a user draws is ``e_ℓ``, and the edge
with the largest ℓ is the *new edge*.  :class:`VisualQuery` is the mutable
model behind the GUI canvas: nodes are dropped from the label palette, edges
are drawn between existing nodes, and edges can be deleted again as long as
the fragment stays connected (Section VII).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Graph, NodeId


class VisualQuery:
    """The evolving query fragment with formulation-sequence edge ids."""

    def __init__(self) -> None:
        self._node_labels: Dict[NodeId, str] = {}
        self._edges: Dict[int, Tuple[NodeId, NodeId, Optional[str]]] = {}
        self._next_edge_id = 1

    # ------------------------------------------------------------------
    # formulation actions
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: str) -> NodeId:
        """Drop a node with ``label`` on the canvas (GUI Panel 2 -> Panel 3)."""
        if node in self._node_labels:
            if self._node_labels[node] != label:
                raise QueryError(f"node {node!r} already labeled "
                                 f"{self._node_labels[node]!r}")
            return node
        self._node_labels[node] = label
        return node

    def add_edge(self, u: NodeId, v: NodeId, label: Optional[str] = None) -> int:
        """Draw the edge {u, v}; returns its formulation id ``ℓ``.

        The resulting fragment must be connected — the GUI only permits
        edge-at-a-time growth of one connected query graph.
        """
        if u not in self._node_labels or v not in self._node_labels:
            raise QueryError("both endpoints must be dropped on the canvas first")
        if u == v:
            raise QueryError("self-loops cannot be drawn")
        for a, b, _ in self._edges.values():
            if {a, b} == {u, v}:
                raise QueryError(f"edge between {u!r} and {v!r} already drawn")
        edge_id = self._next_edge_id
        self._edges[edge_id] = (u, v, label)
        if not self.graph().is_connected():
            del self._edges[edge_id]
            raise QueryError("query fragment must stay connected")
        self._next_edge_id += 1
        return edge_id

    def delete_edge(self, edge_id: int) -> None:
        """Delete edge ``e_d`` (Section VII); the fragment must stay connected."""
        if edge_id not in self._edges:
            raise QueryError(f"edge {edge_id} does not exist")
        if len(self._edges) == 1:
            # Deleting the only edge empties the query — allowed; the canvas
            # goes back to the initial state.
            del self._edges[edge_id]
            return
        saved = self._edges.pop(edge_id)
        if not self.graph().is_connected():
            self._edges[edge_id] = saved
            raise QueryError(
                "deleting this edge would disconnect the query (Section VII)"
            )

    def remove_edge_unchecked(self, edge_id: int) -> None:
        """Remove an edge without the connectivity guard.

        For *atomic multi-edge gestures* (multi-deletion, node relabeling)
        whose end state has been validated by the caller; the fragment may be
        transiently disconnected between the inner steps.
        """
        if edge_id not in self._edges:
            raise QueryError(f"edge {edge_id} does not exist")
        del self._edges[edge_id]

    def fresh_node_id(self, base: NodeId) -> NodeId:
        """An unused node id derived from ``base`` (for relabel gestures)."""
        if isinstance(base, int):
            ints = [n for n in self._node_labels if isinstance(n, int)]
            return max(ints, default=0) + 1
        candidate = f"{base}'"
        while candidate in self._node_labels:
            candidate += "'"
        return candidate

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def edge_ids(self) -> List[int]:
        return sorted(self._edges)

    def nodes(self) -> List[NodeId]:
        """All canvas nodes — including isolated ones — in insertion order."""
        return list(self._node_labels)

    def edge_id_set(self) -> FrozenSet[int]:
        return frozenset(self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def newest_edge_id(self) -> Optional[int]:
        return max(self._edges) if self._edges else None

    def edge(self, edge_id: int) -> Tuple[NodeId, NodeId, Optional[str]]:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise QueryError(f"edge {edge_id} does not exist") from None

    def node_label(self, node: NodeId) -> str:
        return self._node_labels[node]

    def graph(self) -> Graph:
        """The current query fragment (only nodes incident to edges count)."""
        g = Graph()
        for u, v, label in self._edges.values():
            if not g.has_node(u):
                g.add_node(u, self._node_labels[u])
            if not g.has_node(v):
                g.add_node(v, self._node_labels[v])
            g.add_edge(u, v, label)
        return g

    def edge_subgraph_by_ids(self, edge_ids: Iterable[int]) -> Graph:
        """The fragment induced by a set of edge ids (used by SPIG vertices)."""
        g = Graph()
        for eid in edge_ids:
            u, v, label = self.edge(eid)
            if not g.has_node(u):
                g.add_node(u, self._node_labels[u])
            if not g.has_node(v):
                g.add_node(v, self._node_labels[v])
            g.add_edge(u, v, label)
        return g

    def adjacent_edge_ids(self, edge_ids: FrozenSet[int]) -> Set[int]:
        """Edge ids sharing a node with the fragment spanned by ``edge_ids``."""
        nodes: Set[NodeId] = set()
        for eid in edge_ids:
            u, v, _ = self._edges[eid]
            nodes.add(u)
            nodes.add(v)
        out: Set[int] = set()
        for eid, (u, v, _) in self._edges.items():
            if eid not in edge_ids and (u in nodes or v in nodes):
                out.add(eid)
        return out

    def copy(self) -> "VisualQuery":
        q = VisualQuery()
        q._node_labels = dict(self._node_labels)
        q._edges = dict(self._edges)
        q._next_edge_id = self._next_edge_id
        return q
