"""Random labeled-graph generators used by tests and dataset builders.

These are the low-level primitives; the paper-shaped dataset generators (the
AIDS-like molecular corpus and the GraphGen-style synthetic corpus) live in
:mod:`repro.datasets` and are built on top of these.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import Graph


def random_connected_graph(
    rng: random.Random,
    num_nodes: int,
    num_edges: int,
    node_labels: Sequence[str],
    label_weights: Optional[Sequence[float]] = None,
    edge_labels: Optional[Sequence[str]] = None,
) -> Graph:
    """A uniformly labeled random connected graph.

    A random spanning tree guarantees connectivity; remaining edges are drawn
    uniformly from the non-edges.  ``num_edges`` is clamped to the feasible
    range ``[num_nodes − 1, C(num_nodes, 2)]``.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if num_nodes == 1:
        g = Graph()
        g.add_node(0, _pick(rng, node_labels, label_weights))
        return g
    max_edges = num_nodes * (num_nodes - 1) // 2
    num_edges = max(num_nodes - 1, min(num_edges, max_edges))
    g = Graph()
    for i in range(num_nodes):
        g.add_node(i, _pick(rng, node_labels, label_weights))
    # Random spanning tree: attach each new node to a random earlier node.
    order = list(range(num_nodes))
    rng.shuffle(order)
    for pos in range(1, num_nodes):
        u = order[pos]
        v = order[rng.randrange(pos)]
        g.add_edge(u, v, _maybe_pick(rng, edge_labels))
    # Extra edges.
    extra = num_edges - (num_nodes - 1)
    attempts = 0
    while extra > 0 and attempts < 50 * num_edges + 100:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        attempts += 1
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, _maybe_pick(rng, edge_labels))
        extra -= 1
    return g


def random_connected_subgraph(
    rng: random.Random, g: Graph, num_edges: int
) -> Optional[Graph]:
    """A random connected ``num_edges``-edge subgraph of ``g`` (edge growth).

    Returns ``None`` when ``g`` has fewer than ``num_edges`` edges.
    """
    all_edges = list(g.edges())
    if len(all_edges) < num_edges or num_edges < 1:
        return None
    start = all_edges[rng.randrange(len(all_edges))]
    chosen = {start}
    nodes = set(start)
    while len(chosen) < num_edges:
        frontier = [
            (u, v)
            for (u, v) in all_edges
            if (u, v) not in chosen and (u in nodes or v in nodes)
        ]
        if not frontier:
            return None  # component exhausted before reaching the size
        edge = frontier[rng.randrange(len(frontier))]
        chosen.add(edge)
        nodes.update(edge)
    return g.edge_subgraph(chosen)


def perturb_with_new_edge(
    rng: random.Random,
    g: Graph,
    node_labels: Sequence[str],
    label_weights: Optional[Sequence[float]] = None,
) -> Graph:
    """Copy ``g`` and attach one new labeled node by one new edge.

    Used by the workload builder to push a query fragment out of the database
    (the paper's bold "Rq becomes empty" steps in Figure 8).
    """
    out = g.copy()
    new_id = max((n for n in out.nodes()), default=-1) + 1
    anchors = list(out.nodes())
    anchor = anchors[rng.randrange(len(anchors))]
    out.add_node(new_id, _pick(rng, node_labels, label_weights))
    out.add_edge(anchor, new_id)
    return out


def _pick(
    rng: random.Random, labels: Sequence[str], weights: Optional[Sequence[float]]
) -> str:
    if weights is None:
        return labels[rng.randrange(len(labels))]
    return rng.choices(list(labels), weights=list(weights), k=1)[0]


def _maybe_pick(rng: random.Random, labels: Optional[Sequence[str]]) -> Optional[str]:
    if not labels:
        return None
    return labels[rng.randrange(len(labels))]
