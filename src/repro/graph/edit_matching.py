"""Edit-operation-based approximate matching — the alternative PRAGUE rejects.

Section IV-A discusses the two families of similarity measures: graph edit
distance (the paper's [15]) and MCS/MCCS-based measures, and argues for MCCS
in a *visual* system (edit costs are hard to choose; missing edges are easier
for end-users to interpret).  To make that argument testable, this module
implements the edit-style measure the paper describes — "each of these
operations relaxes the query graph by removing or relabeling one edge" — as a
budgeted error-tolerant subgraph matching:

    edit_matching_cost(q, g) = the minimum number of *query relaxations*
    (miss an edge, or tolerate one node-label mismatch) under which q still
    maps into g.

It is computed by a branch-and-bound VF2 variant that charges 1 per node-label
mismatch and 1 per unmatchable query edge.  The MCCS-vs-edit ranking ablation
(`benchmarks/bench_ablation_edit_distance.py`) uses it to show where the two
measures disagree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.labeled_graph import Graph, NodeId


def edit_matching_cost(
    query: Graph, target: Graph, max_cost: Optional[int] = None
) -> Optional[int]:
    """Minimum relaxations for ``query`` to map into ``target``.

    Every query node must map to a distinct target node; a node-label
    mismatch costs 1, and each query edge whose image is absent (or carries a
    different edge label) costs 1.  Returns ``None`` when no mapping within
    ``max_cost`` exists (or none at all if ``max_cost`` is ``None`` and the
    target has fewer nodes than the query).

    ``edit_matching_cost(q, g) == 0``  iff  ``q ⊆ g``.
    """
    q_nodes: List[NodeId] = sorted(query.nodes(), key=repr)
    if len(q_nodes) > target.num_nodes:
        return None
    budget = max_cost if max_cost is not None else query.num_edges + len(q_nodes)
    t_nodes: List[NodeId] = list(target.nodes())

    # Order query nodes connected-first so edge costs are charged early.
    order: List[NodeId] = []
    seen = set()
    for start in q_nodes:
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            order.append(node)
            for nbr in sorted(query.neighbors(node), key=repr):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)

    best: List[Optional[int]] = [None]
    mapping: Dict[NodeId, NodeId] = {}
    used = set()

    def bound() -> int:
        return budget if best[0] is None else min(budget, best[0] - 1)

    def search(depth: int, cost: int) -> None:
        if cost > bound():
            return
        if depth == len(order):
            if best[0] is None or cost < best[0]:
                best[0] = cost
            return
        q_node = order[depth]
        for t_node in t_nodes:
            if t_node in used:
                continue
            step = 0
            if query.label(q_node) != target.label(t_node):
                step += 1
            # Charge each query edge to already-mapped neighbours.
            for nbr in query.neighbors(q_node):
                if nbr not in mapping:
                    continue
                t_nbr = mapping[nbr]
                if not target.has_edge(t_node, t_nbr) or (
                    query.edge_label(q_node, nbr)
                    != target.edge_label(t_node, t_nbr)
                ):
                    step += 1
            if cost + step > bound():
                continue
            mapping[q_node] = t_node
            used.add(t_node)
            search(depth + 1, cost + step)
            del mapping[q_node]
            used.discard(t_node)

    search(0, 0)
    return best[0]


def edit_similarity_search(
    query: Graph, db, budget: int
) -> Dict[int, int]:
    """id -> edit cost, for every data graph within ``budget`` relaxations.

    The traditional-paradigm counterpart of Definition 3 under the edit
    measure; used by the comparison ablation.
    """
    out: Dict[int, int] = {}
    for gid, g in db.items():
        cost = edit_matching_cost(query, g, max_cost=budget)
        if cost is not None:
            out[gid] = cost
    return out
