"""Reading and writing graph transaction files in the gSpan text format.

The format is the de-facto interchange format of the frequent-subgraph-mining
community (and of the tools the paper acknowledges — gSpan, Grafil, SIGMA)::

    t # <graph-id>
    v <node-id> <label>
    e <u> <v> [edge-label]

Graphs are separated by ``t`` lines; ``t # -1`` optionally terminates a file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, TextIO, Union

from repro.exceptions import GraphError
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph


def write_graph(g: Graph, out: TextIO, gid: int = 0) -> None:
    """Write one graph in gSpan format; node ids are re-indexed densely."""
    out.write(f"t # {gid}\n")
    index = {}
    for i, node in enumerate(sorted(g.nodes(), key=repr)):
        index[node] = i
        out.write(f"v {i} {g.label(node)}\n")
    for u, v in sorted(g.edges(), key=lambda e: (index[e[0]], index[e[1]])):
        a, b = index[u], index[v]
        if a > b:
            a, b = b, a
        label = g.edge_label(u, v)
        if label is None:
            out.write(f"e {a} {b}\n")
        else:
            out.write(f"e {a} {b} {label}\n")


def write_database(db: Union[GraphDatabase, Iterable[Graph]], path: Union[str, Path]) -> None:
    """Write all graphs of ``db`` to ``path``."""
    path = Path(path)
    with path.open("w") as out:
        for gid, g in enumerate(db):
            write_graph(g, out, gid)
        out.write("t # -1\n")


def parse_graphs(lines: Iterable[str]) -> List[Graph]:
    """Parse gSpan-format lines into a list of graphs."""
    graphs: List[Graph] = []
    current: Graph = None  # type: ignore[assignment]
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            if len(parts) >= 3 and parts[2] == "-1":
                current = None  # type: ignore[assignment]
                continue
            current = Graph()
            graphs.append(current)
        elif kind == "v":
            if current is None:
                raise GraphError(f"line {lineno}: 'v' before any 't'")
            if len(parts) < 3:
                raise GraphError(f"line {lineno}: malformed vertex line {line!r}")
            current.add_node(int(parts[1]), parts[2])
        elif kind == "e":
            if current is None:
                raise GraphError(f"line {lineno}: 'e' before any 't'")
            if len(parts) < 3:
                raise GraphError(f"line {lineno}: malformed edge line {line!r}")
            label = parts[3] if len(parts) > 3 else None
            current.add_edge(int(parts[1]), int(parts[2]), label)
        else:
            raise GraphError(f"line {lineno}: unknown record type {kind!r}")
    return graphs


def read_database(path: Union[str, Path]) -> GraphDatabase:
    """Read a gSpan-format file into a :class:`GraphDatabase`."""
    path = Path(path)
    with path.open() as handle:
        return GraphDatabase(parse_graphs(handle))
