"""Subgraph isomorphism (VF2-style) for labeled undirected graphs.

This is the verification workhorse of the whole system: support counting in
the miner, exact verification at *Run* (Algorithm 1, line 18) and the
``SimVerify`` MCCS verification (Algorithm 5) all reduce to finding an
injective mapping from a pattern to a target that preserves node labels, edge
presence and edge labels.  Containment is *non-induced*: the target may have
extra edges between mapped nodes, matching the subgraph-containment semantics
of the graph-database literature the paper builds on.

The matcher follows VF2's recursive state-space search (Cordella et al. [3] in
the paper) with the usual engineering: a connected, most-constrained-first
matching order, candidate generation through already mapped neighbours, and
cheap global pre-filters (label and edge-triple multiset containment) that
reject most non-matches without search.

Pattern-side structure is hoisted into :class:`CompiledPattern`: the matching
order, the per-depth adjacency constraints and the pre-filter multisets are
computed once per pattern and reused across every target of a DB scan, instead
of once per (pattern, target) pair.  Target-side structure (label index,
degree map, label/triple multisets) comes from the target graph's cached
invariants, so scanning the same data graph with many patterns is equally
cheap.  ``iter_embeddings`` keeps its original signature and routes through a
compiled pattern memoised on the pattern graph.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graph.labeled_graph import Graph, NodeId


def _matching_order(pattern: Graph, label_freq: Counter) -> List[NodeId]:
    """Connected, most-constrained-first node order for the pattern.

    ``label_freq`` supplies the label-rarity statistic (a target's — or a
    whole corpus's — node-label multiset); rarer labels are matched first.
    """
    degree = pattern.degree_map()
    remaining = set(pattern.nodes())
    order: List[NodeId] = []
    in_order = set()
    while remaining:
        # Start (or restart, for a disconnected pattern) at the node whose
        # label is rarest, breaking ties by degree.
        start = min(
            remaining,
            key=lambda n: (label_freq.get(pattern.label(n), 0), -degree[n]),
        )
        component = [start]
        in_order.add(start)
        remaining.discard(start)
        while True:
            frontier = [
                n
                for n in remaining
                if any(nb in in_order for nb in pattern.neighbors(n))
            ]
            if not frontier:
                break
            nxt = min(
                frontier,
                key=lambda n: (
                    -sum(1 for nb in pattern.neighbors(n) if nb in in_order),
                    label_freq.get(pattern.label(n), 0),
                    -degree[n],
                ),
            )
            component.append(nxt)
            in_order.add(nxt)
            remaining.discard(nxt)
        order.extend(component)
    return order


class CompiledPattern:
    """Target-independent precomputation of one pattern graph.

    Holds the matching order plus, per depth, the pattern node's label and
    degree and the (earlier-depth, edge-label) constraints toward already
    mapped neighbours.  One instance serves any number of targets.
    """

    __slots__ = ("pattern", "order", "labels", "triples", "_steps",
                 "_project")

    def __init__(self, pattern: Graph, label_freq: Optional[Counter] = None) -> None:
        self.pattern = pattern
        self.labels = pattern.node_labels()
        self.triples = pattern.edge_label_triples()
        freq = self.labels if label_freq is None else label_freq
        self.order = _matching_order(pattern, freq)
        degree = pattern.degree_map()
        incident = pattern.incident_triple_counts()
        # The per-pattern adjacency projection (GraphMini-style auxiliary
        # structure): a component-root step carries the multiset of incident
        # edge-label triples its pattern node requires.  A target node whose
        # own cached incident-triple counts fall short can never host the
        # pattern node, so the search rejects it before recursing into its
        # whole subtree.  Only root steps (no mapped neighbours) carry the
        # requirement — their candidates are entire label buckets, where the
        # prune pays; deeper steps are already narrowed by the mapped-edge
        # intersection and the degree check, and re-checking there costs more
        # than it saves.  Single-edge patterns skip it outright — the degree
        # check plus the global triple prefilter subsume the projection.
        self._project = pattern.num_edges >= 2
        index_of = {n: i for i, n in enumerate(self.order)}
        steps: List[
            Tuple[str, int, Tuple[Tuple[int, Optional[str]], ...], tuple]
        ] = []
        for depth, p_node in enumerate(self.order):
            mapped = tuple(
                (index_of[nb], pattern.edge_label(p_node, nb))
                for nb in pattern.neighbors(p_node)
                if index_of[nb] < depth
            )
            required = (
                tuple(incident[p_node].items())
                if self._project and not mapped
                else ()
            )
            steps.append((pattern.label(p_node), degree[p_node], mapped,
                          required))
        self._steps = steps

    # ------------------------------------------------------------------
    def prefilter(self, target: Graph) -> bool:
        """Cheap necessary conditions for ``pattern ⊆ target``."""
        pattern = self.pattern
        if (
            pattern.num_nodes > target.num_nodes
            or pattern.num_edges > target.num_edges
        ):
            return False
        tlabels = target.node_labels()
        for label, count in self.labels.items():
            if tlabels.get(label, 0) < count:
                return False
        ttriples = target.edge_label_triples()
        for triple, count in self.triples.items():
            if ttriples.get(triple, 0) < count:
                return False
        return True

    def iter_embeddings(
        self, target: Graph, limit: Optional[int] = None
    ) -> Iterator[Dict[NodeId, NodeId]]:
        """Yield injective label/edge-preserving mappings pattern -> target."""
        if self.pattern.num_nodes == 0:
            yield {}
            return
        if not self.prefilter(target):
            return
        by_label = target.nodes_by_label()
        tdegree = target.degree_map()
        node_triples = target.node_incident_triples
        order = self.order
        steps = self._steps
        num = len(order)
        assignment: List[Optional[NodeId]] = [None] * num
        used = set()
        yielded = 0

        def candidates(depth: int) -> Iterator[NodeId]:
            plabel, _pdeg, mapped, _required = steps[depth]
            if not mapped:
                for t_node in by_label.get(plabel, ()):
                    if t_node not in used:
                        yield t_node
                return
            # Intersect target-neighbourhoods of mapped pattern-neighbours,
            # seeded from the smallest one.
            seed_idx = min(mapped, key=lambda m: tdegree[assignment[m[0]]])[0]
            for t_node in target.neighbors(assignment[seed_idx]):
                if t_node in used or target.label(t_node) != plabel:
                    continue
                ok = True
                for idx, elabel in mapped:
                    t_nb = assignment[idx]
                    if not target.has_edge(t_node, t_nb):
                        ok = False
                        break
                    if elabel != target.edge_label(t_node, t_nb):
                        ok = False
                        break
                if ok:
                    yield t_node

        def search(depth: int) -> Iterator[Dict[NodeId, NodeId]]:
            nonlocal yielded
            if depth == num:
                yielded += 1
                yield {order[i]: assignment[i] for i in range(num)}
                return
            pdeg = steps[depth][1]
            required = steps[depth][3]
            for t_node in candidates(depth):
                if pdeg > tdegree[t_node]:
                    continue
                if required:
                    # Projection prune: the target node must supply every
                    # incident triple the pattern node consumes (a necessary
                    # condition — filtering only, answers are unchanged).
                    tc = node_triples(t_node)
                    if any(tc.get(t, 0) < c for t, c in required):
                        continue
                assignment[depth] = t_node
                used.add(t_node)
                yield from search(depth + 1)
                used.discard(t_node)
                if limit is not None and yielded >= limit:
                    return

        yield from search(0)

    def embeds_in(self, target: Graph) -> bool:
        """``pattern ⊆ target`` — the containment test."""
        for _ in self.iter_embeddings(target, limit=1):
            return True
        return False

    def count_embeddings(self, target: Graph, limit: Optional[int] = None) -> int:
        return sum(1 for _ in self.iter_embeddings(target, limit=limit))


def compile_pattern(
    pattern: Graph, label_freq: Optional[Counter] = None
) -> CompiledPattern:
    """Compile ``pattern`` once for reuse across a scan.

    With the default statistics (the pattern's own label multiset) the result
    is memoised on the pattern graph itself, version-guarded — repeated
    ``iter_embeddings``/``is_subgraph_isomorphic`` calls with the same pattern
    object pay the compilation once.  Pass a corpus-wide ``label_freq`` to
    order the search by database label rarity instead (the DB-scan case);
    those instances are returned uncached — hold on to them.
    """
    if label_freq is None:
        return pattern.cached("compiled_pattern", lambda: CompiledPattern(pattern))
    return CompiledPattern(pattern, label_freq)


def _prefilter(pattern: Graph, target: Graph) -> bool:
    """Cheap necessary conditions for ``pattern ⊆ target``."""
    return compile_pattern(pattern).prefilter(target)


def iter_embeddings(
    pattern: Graph, target: Graph, limit: Optional[int] = None
) -> Iterator[Dict[NodeId, NodeId]]:
    """Yield injective label/edge-preserving mappings pattern -> target.

    Embeddings are distinct as mappings; automorphic images are all yielded.
    ``limit`` stops the search early (``limit=1`` is the containment test).
    """
    return compile_pattern(pattern).iter_embeddings(target, limit=limit)


def find_embedding(pattern: Graph, target: Graph) -> Optional[Dict[NodeId, NodeId]]:
    """One embedding of ``pattern`` in ``target``, or ``None``."""
    for emb in iter_embeddings(pattern, target, limit=1):
        return emb
    return None


def is_subgraph_isomorphic(pattern: Graph, target: Graph) -> bool:
    """``pattern ⊆ target`` in the paper's sense (Section III)."""
    return compile_pattern(pattern).embeds_in(target)


def count_embeddings(pattern: Graph, target: Graph, limit: Optional[int] = None) -> int:
    """Number of distinct embeddings (mappings), optionally capped."""
    return compile_pattern(pattern).count_embeddings(target, limit=limit)
