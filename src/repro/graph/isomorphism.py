"""Subgraph isomorphism (VF2-style) for labeled undirected graphs.

This is the verification workhorse of the whole system: support counting in
the miner, exact verification at *Run* (Algorithm 1, line 18) and the
``SimVerify`` MCCS verification (Algorithm 5) all reduce to finding an
injective mapping from a pattern to a target that preserves node labels, edge
presence and edge labels.  Containment is *non-induced*: the target may have
extra edges between mapped nodes, matching the subgraph-containment semantics
of the graph-database literature the paper builds on.

The matcher follows VF2's recursive state-space search (Cordella et al. [3] in
the paper) with the usual engineering: a connected, most-constrained-first
matching order computed once per pattern, candidate generation through already
mapped neighbours, and cheap global pre-filters (label and edge-triple
multiset containment) that reject most non-matches without search.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.graph.labeled_graph import Graph, NodeId


def _prefilter(pattern: Graph, target: Graph) -> bool:
    """Cheap necessary conditions for ``pattern ⊆ target``."""
    if pattern.num_nodes > target.num_nodes or pattern.num_edges > target.num_edges:
        return False
    tlabels = target.node_labels()
    for label, count in pattern.node_labels().items():
        if tlabels.get(label, 0) < count:
            return False
    ttriples = target.edge_label_triples()
    for triple, count in pattern.edge_label_triples().items():
        if ttriples.get(triple, 0) < count:
            return False
    return True


def _matching_order(pattern: Graph, target: Graph) -> List[NodeId]:
    """Connected, most-constrained-first node order for the pattern."""
    tlabels = target.node_labels()
    remaining = set(pattern.nodes())
    order: List[NodeId] = []
    in_order = set()
    while remaining:
        # Start (or restart, for a disconnected pattern) at the node whose
        # label is rarest in the target, breaking ties by degree.
        start = min(
            remaining,
            key=lambda n: (tlabels.get(pattern.label(n), 0), -pattern.degree(n)),
        )
        component = [start]
        in_order.add(start)
        remaining.discard(start)
        while True:
            frontier = [
                n
                for n in remaining
                if any(nb in in_order for nb in pattern.neighbors(n))
            ]
            if not frontier:
                break
            nxt = min(
                frontier,
                key=lambda n: (
                    -sum(1 for nb in pattern.neighbors(n) if nb in in_order),
                    tlabels.get(pattern.label(n), 0),
                    -pattern.degree(n),
                ),
            )
            component.append(nxt)
            in_order.add(nxt)
            remaining.discard(nxt)
        order.extend(component)
    return order


def iter_embeddings(
    pattern: Graph, target: Graph, limit: Optional[int] = None
) -> Iterator[Dict[NodeId, NodeId]]:
    """Yield injective label/edge-preserving mappings pattern -> target.

    Embeddings are distinct as mappings; automorphic images are all yielded.
    ``limit`` stops the search early (``limit=1`` is the containment test).
    """
    if pattern.num_nodes == 0:
        yield {}
        return
    if not _prefilter(pattern, target):
        return
    order = _matching_order(pattern, target)
    # Pre-index target nodes by label for the component-start case.
    by_label: Dict[str, List[NodeId]] = {}
    for n in target.nodes():
        by_label.setdefault(target.label(n), []).append(n)

    mapping: Dict[NodeId, NodeId] = {}
    used = set()
    yielded = 0

    def candidates(p_node: NodeId) -> Iterator[NodeId]:
        mapped_nbrs = [nb for nb in pattern.neighbors(p_node) if nb in mapping]
        if not mapped_nbrs:
            for t_node in by_label.get(pattern.label(p_node), ()):
                if t_node not in used:
                    yield t_node
            return
        # Intersect target-neighbourhoods of mapped pattern-neighbours,
        # seeded from the smallest one.
        seed = min(mapped_nbrs, key=lambda nb: target.degree(mapping[nb]))
        plabel = pattern.label(p_node)
        for t_node in target.neighbors(mapping[seed]):
            if t_node in used or target.label(t_node) != plabel:
                continue
            ok = True
            for nb in mapped_nbrs:
                t_nb = mapping[nb]
                if not target.has_edge(t_node, t_nb):
                    ok = False
                    break
                if pattern.edge_label(p_node, nb) != target.edge_label(t_node, t_nb):
                    ok = False
                    break
            if ok:
                yield t_node

    def feasible(p_node: NodeId, t_node: NodeId) -> bool:
        if pattern.degree(p_node) > target.degree(t_node):
            return False
        return True

    def search(depth: int) -> Iterator[Dict[NodeId, NodeId]]:
        nonlocal yielded
        if depth == len(order):
            yielded += 1
            yield dict(mapping)
            return
        p_node = order[depth]
        for t_node in candidates(p_node):
            if not feasible(p_node, t_node):
                continue
            mapping[p_node] = t_node
            used.add(t_node)
            yield from search(depth + 1)
            del mapping[p_node]
            used.discard(t_node)
            if limit is not None and yielded >= limit:
                return

    yield from search(0)


def find_embedding(pattern: Graph, target: Graph) -> Optional[Dict[NodeId, NodeId]]:
    """One embedding of ``pattern`` in ``target``, or ``None``."""
    for emb in iter_embeddings(pattern, target, limit=1):
        return emb
    return None


def is_subgraph_isomorphic(pattern: Graph, target: Graph) -> bool:
    """``pattern ⊆ target`` in the paper's sense (Section III)."""
    return find_embedding(pattern, target) is not None


def count_embeddings(pattern: Graph, target: Graph, limit: Optional[int] = None) -> int:
    """Number of distinct embeddings (mappings), optionally capped."""
    return sum(1 for _ in iter_embeddings(pattern, target, limit=limit))
