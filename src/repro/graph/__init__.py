"""Graph substrate: labeled graphs, canonical codes, isomorphism, MCCS."""

from repro.graph.canonical import are_isomorphic, cam, canonical_code, code_to_graph
from repro.graph.database import GraphDatabase
from repro.graph.edit_matching import edit_matching_cost, edit_similarity_search
from repro.graph.isomorphism import (
    count_embeddings,
    find_embedding,
    is_subgraph_isomorphic,
    iter_embeddings,
)
from repro.graph.labeled_graph import Graph, edge_key
from repro.graph.mccs import (
    is_similar,
    mccs_at_least,
    mccs_size,
    subgraph_distance,
    subgraph_similarity_degree,
)

__all__ = [
    "Graph",
    "GraphDatabase",
    "edge_key",
    "canonical_code",
    "cam",
    "code_to_graph",
    "are_isomorphic",
    "is_subgraph_isomorphic",
    "find_embedding",
    "iter_embeddings",
    "count_embeddings",
    "mccs_size",
    "mccs_at_least",
    "subgraph_distance",
    "subgraph_similarity_degree",
    "is_similar",
    "edit_matching_cost",
    "edit_similarity_search",
]
