"""Maximum connected common subgraph (MCCS) and the paper's similarity measures.

Section IV-A adopts MCCS-based similarity (following Shang et al. [11]):

* ``mccs(G, Q)`` — the largest *connected* subgraph of the query ``Q`` that is
  subgraph-isomorphic to the data graph ``G``;
* subgraph similarity degree (Def. 1): ``δ = |mccs(G, Q)| / |Q|``;
* subgraph distance (Def. 2): ``dist(Q, G) = ⌊(1 − δ)·|Q|⌋`` — the number of
  query edges that must be missed to match ``G``;
* the substructure similarity search problem (Def. 3): all ``g ∈ D`` with
  ``dist(Q, g) ≤ σ``.

Sizes are edge counts (``|G| = |E|``), so ``dist(Q, G) = |Q| − |mccs|``
exactly and the floor in Def. 2 is vacuous.

MCCS is computed top-down over the lattice of connected edge subsets of ``Q``:
every connected k-edge subgraph of a connected graph arises from a connected
(k+1)-edge subgraph by deleting one connectivity-preserving edge, so
level-by-level generation is complete.  Isomorphic subsets are deduplicated by
canonical code and failed embeddings are cached, which keeps the search cheap
for the visual-query sizes the paper targets (≤ 10 edges).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.canonical import CanonicalCode, canonical_code
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import EdgeKey, Graph, edge_key


def connected_edge_subsets_at_level(
    q: Graph, level: Iterable[FrozenSet[EdgeKey]]
) -> Set[FrozenSet[EdgeKey]]:
    """All connected (k−1)-edge subsets reachable from connected k-subsets."""
    out: Set[FrozenSet[EdgeKey]] = set()
    for subset in level:
        for edge in subset:
            smaller = subset - {edge}
            if not smaller or smaller in out:
                continue
            if q.edge_subgraph(smaller).is_connected():
                out.add(smaller)
    return out


def iter_connected_subgraph_levels(
    q: Graph,
) -> Iterator[Tuple[int, Set[FrozenSet[EdgeKey]]]]:
    """Yield ``(k, subsets)`` for k = |q| down to 1 (connected subsets only)."""
    if not q.is_connected():
        raise ValueError("query graph must be connected")
    level: Set[FrozenSet[EdgeKey]] = {frozenset(q.edges())}
    k = q.num_edges
    while k >= 1 and level:
        yield k, level
        level = connected_edge_subsets_at_level(q, level)
        k -= 1


def mccs_size(q: Graph, g: Graph, lower_bound: int = 0) -> int:
    """``|mccs(g, q)|`` in edges; stops early once < ``lower_bound`` is certain.

    Returns 0 when not even a single query edge matches ``g``.
    """
    tested: Dict[CanonicalCode, bool] = {}
    for k, subsets in iter_connected_subgraph_levels(q):
        if k < lower_bound:
            return 0
        for subset in subsets:
            sub = q.edge_subgraph(subset)
            code = canonical_code(sub)
            hit = tested.get(code)
            if hit is None:
                hit = is_subgraph_isomorphic(sub, g)
                tested[code] = hit
            if hit:
                return k
    return 0


def connected_edge_subsets_of_size(q: Graph, k: int) -> Set[FrozenSet[EdgeKey]]:
    """All connected k-edge subsets of ``q``, grown bottom-up."""
    edges = list(q.edges())
    if k < 1 or k > len(edges):
        return set()
    frontier: Set[FrozenSet[EdgeKey]] = {frozenset([e]) for e in edges}
    size = 1
    while size < k:
        grown: Set[FrozenSet[EdgeKey]] = set()
        for subset in frontier:
            nodes = set()
            for e in subset:
                nodes.update(e)
            for e in edges:
                if e not in subset and (e[0] in nodes or e[1] in nodes):
                    grown.add(subset | {e})
        frontier = grown
        size += 1
    return frontier


def mccs_at_least(q: Graph, g: Graph, k: int) -> bool:
    """True iff some connected k-edge subgraph of ``q`` embeds in ``g``.

    Enumerates only level k (deduplicated by canonical code) instead of
    walking the whole subset lattice — this is the hot path of similarity
    verification (Definition 3 membership at threshold ``k = |q| − σ``).
    """
    if k <= 0:
        return True
    if k > q.num_edges:
        return False
    tested: Set[CanonicalCode] = set()
    for subset in connected_edge_subsets_of_size(q, k):
        sub = q.edge_subgraph(subset)
        code = canonical_code(sub)
        if code in tested:
            continue
        tested.add(code)
        if is_subgraph_isomorphic(sub, g):
            return True
    return False


def subgraph_similarity_degree(g: Graph, q: Graph) -> float:
    """Definition 1: ``δ = |mccs(g, q)| / |q|``."""
    if q.num_edges == 0:
        raise ValueError("query must have at least one edge")
    return mccs_size(q, g) / q.num_edges


def subgraph_distance(q: Graph, g: Graph) -> int:
    """Definition 2: edges that must be missed from ``q`` to match ``g``."""
    return q.num_edges - mccs_size(q, g)


def is_similar(q: Graph, g: Graph, sigma: int) -> bool:
    """Definition 3 membership test: ``dist(q, g) ≤ sigma``."""
    return mccs_at_least(q, g, q.num_edges - sigma)
