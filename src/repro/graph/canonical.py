"""Canonical graph codes (the paper's ``cam(g)``).

The paper identifies fragments by CAM codes (Huan & Wang, ICDM'03) and relies
on a single property: ``cam(g) = cam(g')`` iff ``g`` and ``g'`` are isomorphic
(used e.g. by Algorithm 6 for the graph-isomorphism test).  We implement the
*minimum DFS code* of gSpan (Yan & Han, ICDM'02) instead — an equivalent
canonical form, and the natural choice since our miner is gSpan.  DESIGN.md
records this substitution.

A DFS code is a sequence of 5-tuples ``(i, j, l_i, l_ij, l_j)`` where ``i`` and
``j`` are DFS discovery indices, ``l_i``/``l_j`` node labels and ``l_ij`` the
edge label.  The *minimum* DFS code is the lexicographically smallest code over
all valid DFS traversals, under gSpan's linear order on edge tuples:

* at any point, backward extensions (from the rightmost vertex to one of its
  ancestors on the rightmost path) precede all forward extensions, smaller
  destination index first;
* forward extensions come deepest-on-the-rightmost-path first;
* ties are broken by labels.

We compute it by greedy branch-and-bound: all partial embeddings sharing the
current minimal prefix are kept, the globally minimal next tuple is selected,
and embeddings that cannot realize it are discarded.  Greedy selection is
lexicographically optimal because codes are compared tuple by tuple.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.config import canonical_cache_size
from repro.exceptions import GraphError
from repro.graph.labeled_graph import Graph, NodeId, edge_key
from repro.obs.recorder import RECORDER

# A code tuple: (i, j, l_i, l_ij, l_j).  Edge label ``None`` is normalised to
# "" so that tuples are totally ordered.
CodeTuple = Tuple[int, int, str, str, str]
CanonicalCode = Tuple[CodeTuple, ...]

_NO_EDGE_LABEL = ""


def _norm(label: Optional[str]) -> str:
    return _NO_EDGE_LABEL if label is None else label


class _Embedding:
    """A partial DFS traversal: dfs-index <-> node maps plus traversal state."""

    __slots__ = ("nodes_of", "index_of", "rightmost_path", "used_edges")

    def __init__(
        self,
        nodes_of: List[NodeId],
        index_of: Dict[NodeId, int],
        rightmost_path: Tuple[int, ...],
        used_edges: FrozenSet[Tuple[NodeId, NodeId]],
    ) -> None:
        self.nodes_of = nodes_of
        self.index_of = index_of
        self.rightmost_path = rightmost_path
        self.used_edges = used_edges


def _extensions(g: Graph, emb: _Embedding):
    """Yield ``(sort_key, code_tuple, kind, payload)`` for all legal next edges.

    ``kind`` is "b" (backward) or "f" (forward); the payload carries what is
    needed to apply the extension.  The sort key realises gSpan's tuple order
    restricted to extensions of a common prefix.
    """
    rmp = emb.rightmost_path
    rm_index = rmp[-1]
    rm_node = emb.nodes_of[rm_index]
    # Backward: rightmost vertex -> ancestor on the rightmost path (not parent).
    for j in rmp[:-1]:
        w = emb.nodes_of[j]
        if g.has_edge(rm_node, w) and edge_key(rm_node, w) not in emb.used_edges:
            elabel = _norm(g.edge_label(rm_node, w))
            code = (rm_index, j, g.label(rm_node), elabel, g.label(w))
            yield (0, j, elabel, "", ""), code, "b", (rm_node, w, j)
    # Forward: from the rightmost path (deepest first) to an unmapped node.
    for i in reversed(rmp):
        u = emb.nodes_of[i]
        for w in g.neighbors(u):
            if w in emb.index_of:
                continue
            elabel = _norm(g.edge_label(u, w))
            code = (i, len(emb.nodes_of), g.label(u), elabel, g.label(w))
            yield (1, -i, elabel, g.label(w), ""), code, "f", (u, w, i)


def _apply(emb: _Embedding, kind: str, payload) -> _Embedding:
    if kind == "b":
        u, w, _j = payload
        return _Embedding(
            emb.nodes_of,
            emb.index_of,
            emb.rightmost_path,
            emb.used_edges | {edge_key(u, w)},
        )
    u, w, i = payload
    nodes_of = emb.nodes_of + [w]
    index_of = dict(emb.index_of)
    index_of[w] = len(emb.nodes_of)
    # Truncate the rightmost path at the forward edge's source, then descend.
    pos = emb.rightmost_path.index(i)
    rmp = emb.rightmost_path[: pos + 1] + (index_of[w],)
    return _Embedding(nodes_of, index_of, rmp, emb.used_edges | {edge_key(u, w)})


def _min_code_connected(g: Graph) -> CanonicalCode:
    if g.num_edges == 0:
        # Single node: a degenerate one-tuple code carrying the label.
        node = next(g.nodes())
        return ((0, 0, g.label(node), _NO_EDGE_LABEL, ""),)
    # Seed: minimal first tuple (0, 1, l0, l01, l1) over all directed edges.
    best_first: Optional[CodeTuple] = None
    seeds: List[_Embedding] = []
    for u, v in g.edges():
        for a, b in ((u, v), (v, u)):
            tup = (0, 1, g.label(a), _norm(g.edge_label(a, b)), g.label(b))
            if best_first is None or tup < best_first:
                best_first = tup
                seeds = []
            if tup == best_first:
                seeds.append(
                    _Embedding(
                        [a, b], {a: 0, b: 1}, (0, 1), frozenset({edge_key(a, b)})
                    )
                )
    assert best_first is not None
    code: List[CodeTuple] = [best_first]
    embeddings = seeds
    for _ in range(g.num_edges - 1):
        best_key = None
        best_tuple: Optional[CodeTuple] = None
        chosen: List[_Embedding] = []
        for emb in embeddings:
            for key, tup, kind, payload in _extensions(g, emb):
                full_key = (key, tup)
                if best_key is None or full_key < best_key:
                    best_key = full_key
                    best_tuple = tup
                    chosen = [_apply(emb, kind, payload)]
                elif full_key == best_key:
                    chosen.append(_apply(emb, kind, payload))
        if best_tuple is None:  # cannot happen for a connected graph
            raise GraphError("DFS traversal stuck; graph must be connected")
        code.append(best_tuple)
        embeddings = chosen
    return tuple(code)


def _compute_canonical_code(g: Graph) -> CanonicalCode:
    """Uncached canonical-code computation (the pre-memoization hot path)."""
    if g.num_nodes == 0:
        return ()
    components = g.connected_components()
    if len(components) == 1:
        return _min_code_connected(g)
    parts = sorted(_min_code_connected(g.subgraph(c)) for c in components)
    out: List[CodeTuple] = []
    for part in parts:
        out.append((-1, -1, "", "", ""))  # component separator
        out.extend(part)
    return tuple(out)


# ----------------------------------------------------------------------
# memoization
#
# Two tiers guard the (worst-case exponential) min-DFS-code computation:
#
# * a per-graph cache on the Graph's version-guarded invariant store — free
#   repeats when the *same object* is probed again (DB-scan pattern);
# * a process-wide bounded LRU keyed by the graph's exact structure (node-id/
#   label pairs + labeled edges), prefixed by the cheap order-invariant
#   fingerprint for hash dispersal.  SPIG construction and gSpan mining
#   rebuild equal fragments as *new* objects at every level; the LRU catches
#   those.  The key is exact (not the fingerprint alone), so a collision can
#   never return the code of a non-isomorphic graph.
# ----------------------------------------------------------------------
_lru: "OrderedDict[tuple, CanonicalCode]" = OrderedDict()
_stats = {"graph_hits": 0, "lru_hits": 0, "misses": 0}


def _structure_key(g: Graph) -> tuple:
    edges = frozenset(
        (u, v, g.edge_label(u, v)) for u, v in g.edges()
    )
    nodes = frozenset((n, g.label(n)) for n in g.nodes())
    return (g.fingerprint(), nodes, edges)


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the canonical-code caches (for the bench suite)."""
    return dict(_stats, size=len(_lru))


def clear_cache() -> None:
    """Drop the process-wide LRU and reset the counters (bench isolation)."""
    _lru.clear()
    for key in _stats:
        _stats[key] = 0


def canonical_code(g: Graph) -> CanonicalCode:
    """The canonical code of ``g``; equal codes iff isomorphic graphs.

    Connected graphs get their minimum DFS code.  For a disconnected graph the
    code is the sorted concatenation of per-component codes separated by
    markers, so the iff property still holds.  Results are memoized per graph
    object (version-guarded) and in a process-wide bounded LRU keyed by exact
    structure — see the module comment above.
    """
    cached = g._inv_cache.get("canonical_code") if \
        g._inv_version == g.version else None
    if cached is not None:
        _stats["graph_hits"] += 1
        RECORDER.transition("canonical.cache", "graph_hit")
        return cached
    max_size = canonical_cache_size()
    if max_size == 0:
        code = _compute_canonical_code(g)
        g.cached("canonical_code", lambda: code)
        return code
    key = _structure_key(g)
    code = _lru.get(key)
    if code is not None:
        _stats["lru_hits"] += 1
        RECORDER.transition("canonical.cache", "lru_hit")
        _lru.move_to_end(key)
    else:
        _stats["misses"] += 1
        RECORDER.transition("canonical.cache", "miss")
        code = _compute_canonical_code(g)
        _lru[key] = code
        while len(_lru) > max_size:
            _lru.popitem(last=False)
    g.cached("canonical_code", lambda: code)
    return code


def cam(g: Graph) -> CanonicalCode:
    """Alias matching the paper's notation ``cam(g)``."""
    return canonical_code(g)


def code_to_graph(code: CanonicalCode) -> Graph:
    """Rebuild a graph from a *connected* canonical code (inverse of cam)."""
    g = Graph()
    if not code:
        return g
    if len(code) == 1 and code[0][0] == code[0][1] == 0 and code[0][4] == "":
        g.add_node(0, code[0][2])
        return g
    for i, j, li, lij, lj in code:
        if i < 0:
            raise GraphError("code_to_graph only supports connected codes")
        if not g.has_node(i):
            g.add_node(i, li)
        if not g.has_node(j):
            g.add_node(j, lj)
        g.add_edge(i, j, lij if lij != _NO_EDGE_LABEL else None)
    return g


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Graph isomorphism test via canonical codes (paper Section VII)."""
    if g1.num_nodes != g2.num_nodes or g1.num_edges != g2.num_edges:
        return False
    if g1.node_labels() != g2.node_labels():
        return False
    if g1.edge_label_triples() != g2.edge_label_triples():
        return False
    return canonical_code(g1) == canonical_code(g2)
