"""The graph database ``D``: an id-addressed collection of data graphs.

Every data graph gets a unique integer identifier (Section III).  Candidate
sets (``Rq``, ``Rfree``, ``Rver``) and FSG-id lists are sets of these
identifiers throughout the library.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.labeled_graph import Graph


class GraphDatabase:
    """An immutable-by-convention list of data graphs with integer ids."""

    def __init__(self, graphs: Iterable[Graph] = ()) -> None:
        self._graphs: List[Graph] = list(graphs)
        self._label_freq: Optional[Counter] = None
        for i, g in enumerate(self._graphs):
            if g.num_edges == 0:
                raise GraphError(f"data graph {i} has no edges (Section III)")
            if not g.is_connected():
                raise GraphError(f"data graph {i} is not connected (Section III)")

    def add(self, g: Graph) -> int:
        """Append ``g`` and return its identifier."""
        if g.num_edges == 0 or not g.is_connected():
            raise GraphError("data graphs must be connected with >= 1 edge")
        self._graphs.append(g)
        self._label_freq = None
        return len(self._graphs) - 1

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, gid: int) -> Graph:
        return self._graphs[gid]

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs)

    def items(self) -> Iterator[Tuple[int, Graph]]:
        return enumerate(self._graphs)

    def ids(self) -> Set[int]:
        return set(range(len(self._graphs)))

    # ------------------------------------------------------------------
    # vocabulary / statistics
    # ------------------------------------------------------------------
    def label_frequencies(self) -> Counter:
        """Corpus-wide node-label multiset (cached; treat as read-only).

        Feeds the matching-order heuristic of DB scans: one statistics pass
        replaces a per-target label count (see
        :func:`repro.graph.isomorphism.compile_pattern`).
        """
        if self._label_freq is None:
            freq: Counter = Counter()
            for g in self._graphs:
                freq.update(g.node_labels())
            self._label_freq = freq
        return self._label_freq

    def node_label_universe(self) -> List[str]:
        """Distinct node labels, lexicographic — what GUI Panel 2 displays."""
        labels: Set[str] = set()
        for g in self._graphs:
            labels.update(g.node_labels())
        return sorted(labels)

    def edge_label_universe(self) -> List[Optional[str]]:
        labels: Set[Optional[str]] = set()
        for g in self._graphs:
            for u, v in g.edges():
                labels.add(g.edge_label(u, v))
        return sorted(labels, key=lambda x: (x is not None, x))

    def stats(self) -> Dict[str, float]:
        """Summary statistics of the kind the paper reports (Section VIII-A)."""
        if not self._graphs:
            return {"graphs": 0, "avg_nodes": 0.0, "avg_edges": 0.0,
                    "max_nodes": 0, "max_edges": 0}
        nodes = [g.num_nodes for g in self._graphs]
        edges = [g.num_edges for g in self._graphs]
        return {
            "graphs": len(self._graphs),
            "avg_nodes": sum(nodes) / len(nodes),
            "avg_edges": sum(edges) / len(edges),
            "max_nodes": max(nodes),
            "max_edges": max(edges),
        }
