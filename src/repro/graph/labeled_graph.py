"""Labeled undirected graphs — the data model shared by the whole library.

The paper (Section III) works with undirected graphs whose nodes carry labels
(e.g. atom symbols) and whose edges may carry labels as well.  Data graphs,
query fragments, mined fragments and index entries are all instances of
:class:`Graph`.  The size of a graph is its number of *edges* (``|G| = |E|``),
matching the paper's convention.

The class is deliberately small and dependency-free: dict-of-dict adjacency,
integer (or hashable) node ids, O(1) edge lookup.  Everything heavier
(canonical codes, isomorphism, MCCS) lives in sibling modules.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.exceptions import GraphError

NodeId = Hashable
Label = str
EdgeKey = Tuple[NodeId, NodeId]


def edge_key(u: NodeId, v: NodeId) -> EdgeKey:
    """Return the canonical (sorted) key for the undirected edge ``{u, v}``."""
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:  # mixed-type node ids; fall back to a stable order
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """An undirected graph with labeled nodes and optionally labeled edges.

    Parameters
    ----------
    directed:
        Present for API symmetry with the paper's definition; only undirected
        graphs are supported (the paper presents its method on undirected
        graphs with labeled nodes, Section III).
    """

    __slots__ = ("_labels", "_adj", "_num_edges", "_version", "_inv_cache",
                 "_inv_version")

    def __init__(self) -> None:
        self._labels: Dict[NodeId, Label] = {}
        self._adj: Dict[NodeId, Dict[NodeId, Optional[Label]]] = {}
        self._num_edges = 0
        # Monotonic mutation counter; every cached invariant is guarded by it.
        self._version = 0
        self._inv_cache: Dict[str, object] = {}
        self._inv_version = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[NodeId, NodeId]],
        labels: Dict[NodeId, Label],
        edge_labels: Optional[Dict[EdgeKey, Label]] = None,
    ) -> "Graph":
        """Build a graph from an edge list and a node-label mapping."""
        g = cls()
        for node, label in labels.items():
            g.add_node(node, label)
        for u, v in edges:
            elabel = None
            if edge_labels:
                elabel = edge_labels.get(edge_key(u, v))
            g.add_edge(u, v, elabel)
        return g

    def add_node(self, node: NodeId, label: Label) -> None:
        """Add ``node`` with ``label``; relabeling an existing node is an error."""
        existing = self._labels.get(node)
        if existing is not None and existing != label:
            raise GraphError(f"node {node!r} already has label {existing!r}")
        if node not in self._labels:
            self._labels[node] = label
            self._adj[node] = {}
            self._version += 1

    def add_edge(self, u: NodeId, v: NodeId, label: Optional[Label] = None) -> None:
        """Add the undirected edge ``{u, v}``.  Both endpoints must exist."""
        if u == v:
            raise GraphError("self-loops are not supported")
        if u not in self._labels or v not in self._labels:
            raise GraphError(f"both endpoints of ({u!r}, {v!r}) must be added first")
        if v in self._adj[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) already exists")
        self._adj[u][v] = label
        self._adj[v][u] = label
        self._num_edges += 1
        self._version += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge ``{u, v}``; endpoints are kept."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._labels:
            raise GraphError(f"node {node!r} does not exist")
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]
        del self._labels[node]
        self._version += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[NodeId]:
        return iter(self._labels)

    def edges(self) -> Iterator[EdgeKey]:
        """Yield each undirected edge exactly once as a sorted pair."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def label(self, node: NodeId) -> Label:
        try:
            return self._labels[node]
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def edge_label(self, u: NodeId, v: NodeId) -> Optional[Label]:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        return self._adj[u][v]

    def has_node(self, node: NodeId) -> bool:
        return node in self._labels

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        try:
            return iter(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def degree(self, node: NodeId) -> int:
        return len(self._adj[node])

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        """The paper defines ``|G| = |E|`` — size is the edge count."""
        return self._num_edges

    # ------------------------------------------------------------------
    # cached invariants
    #
    # Every accessor below is memoised against ``_version`` (bumped by each
    # mutator), so repeated reads on an unchanged graph are O(1) — the DB-scan
    # access pattern where thousands of pre-filter probes hit the same target.
    # Returned containers are shared: treat them as immutable.
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every structural change)."""
        return self._version

    def cached(self, key: str, build: "Callable[[], object]") -> object:
        """Return the version-guarded cached value for ``key``.

        ``build`` is invoked (and its result cached) only when the graph has
        mutated since the last read.  Sibling modules (canonical codes, the
        VF2 matcher) hang their own per-graph precomputations here.
        """
        if self._inv_version != self._version:
            self._inv_cache.clear()
            self._inv_version = self._version
        try:
            return self._inv_cache[key]
        except KeyError:
            value = build()
            self._inv_cache[key] = value
            return value

    def node_labels(self) -> Counter:
        """Multiset of node labels (cached; treat as read-only)."""
        return self.cached("node_labels", lambda: Counter(self._labels.values()))

    def edge_label_triples(self) -> Counter:
        """Multiset of ``(label(u), edge_label, label(v))`` triples (sorted ends).

        A cheap isomorphism-invariant signature used for fast pre-filtering
        before running VF2 (cached; treat as read-only).
        """
        return self.cached("edge_label_triples", self._build_edge_label_triples)

    def _build_edge_label_triples(self) -> Counter:
        out: Counter = Counter()
        for u, v in self.edges():
            lu, lv = self._labels[u], self._labels[v]
            if lu > lv:
                lu, lv = lv, lu
            out[(lu, self._adj[u][v], lv)] += 1
        return out

    def degree_map(self) -> Dict[NodeId, int]:
        """``node -> degree`` for every node (cached; treat as read-only)."""
        return self.cached(
            "degree_map", lambda: {n: len(nbrs) for n, nbrs in self._adj.items()}
        )

    def nodes_by_label(self) -> Dict[Label, Tuple[NodeId, ...]]:
        """``label -> nodes`` index (cached; treat as read-only).

        The VF2 matcher seeds component starts from this index; caching it on
        the *target* makes repeated scans against the same data graph cheap.
        """
        return self.cached("nodes_by_label", self._build_nodes_by_label)

    def _build_nodes_by_label(self) -> Dict[Label, Tuple[NodeId, ...]]:
        buckets: Dict[Label, List[NodeId]] = {}
        for node, label in self._labels.items():
            buckets.setdefault(label, []).append(node)
        return {label: tuple(nodes) for label, nodes in buckets.items()}

    def incident_triple_counts(self) -> Dict[NodeId, Dict[Tuple, int]]:
        """``node -> {triple: count}`` of its incident edge-label triples (cached).

        The triple of an incident edge is the same ``(label(u), edge_label,
        label(v))`` signature (sorted ends) as :meth:`edge_label_triples`.
        This is the target-side half of the per-pattern adjacency projection:
        a target node can only host a pattern node if it has at least as many
        incident edges of each triple as the pattern node does, so the VF2
        matcher consults this index to prune candidate neighborhoods before
        recursing (treat as read-only).
        """
        return self.cached(
            "incident_triple_counts", self._build_incident_triple_counts
        )

    def _build_incident_triple_counts(self) -> Dict[NodeId, Dict[Tuple, int]]:
        # Each incident edge of u appears exactly once in u's adjacency row,
        # so a single pass over the rows counts both endpoints with no
        # dedup pass (patterns are tiny; the eager build is cheap there).
        return {u: self._node_triples(u) for u in self._adj}

    def node_incident_triples(self, node: NodeId) -> Dict[Tuple, int]:
        """``{triple: count}`` for one node's incident edges (lazily cached).

        The target-side entry point of the projection prune: a DB scan only
        probes nodes in the query root's label bucket, so counts are computed
        per node on first probe — not eagerly for the whole graph — and kept
        in the same version-guarded cache as the other invariants.
        """
        cache = self.cached("node_incident_triples", dict)
        counts = cache.get(node)
        if counts is None:
            counts = cache[node] = self._node_triples(node)
        return counts

    def _node_triples(self, u: NodeId) -> Dict[Tuple, int]:
        labels = self._labels
        lu = labels[u]
        counts: Dict[Tuple, int] = {}
        for v, elabel in self._adj[u].items():
            lv = labels[v]
            triple = (lu, elabel, lv) if lu <= lv else (lv, elabel, lu)
            counts[triple] = counts.get(triple, 0) + 1
        return counts

    def fingerprint(self) -> int:
        """A cheap order-invariant structural hash (cached).

        Equal fingerprints are *necessary* but not sufficient for isomorphism
        — use it to reject or to bucket, never to equate.  Computed as a
        commutative accumulation over node labels and edge triples so it is
        independent of insertion order and node ids.
        """
        return self.cached("fingerprint", self._build_fingerprint)

    def _build_fingerprint(self) -> int:
        mask = (1 << 64) - 1
        acc = 0
        for label in self._labels.values():
            acc = (acc + hash(("n", label))) & mask
        for u, v in self.edges():
            lu, lv = self._labels[u], self._labels[v]
            if lu > lv:
                lu, lv = lv, lu
            acc = (acc + hash(("e", lu, self._adj[u][v], lv))) & mask
        return hash((self.num_nodes, self._num_edges, acc))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the graph is non-empty and connected."""
        if not self._labels:
            return False
        start = next(iter(self._labels))
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nbr in self._adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        return len(seen) == len(self._labels)

    def connected_components(self) -> List[FrozenSet[NodeId]]:
        """Node sets of the connected components."""
        remaining = set(self._labels)
        components: List[FrozenSet[NodeId]] = []
        while remaining:
            start = remaining.pop()
            seen = {start}
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for nbr in self._adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        queue.append(nbr)
            remaining -= seen
            components.append(frozenset(seen))
        return components

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """The induced subgraph on ``nodes`` (keeps original node ids)."""
        keep = set(nodes)
        g = Graph()
        for node in keep:
            g.add_node(node, self.label(node))
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v, self._adj[u][v])
        return g

    def edge_subgraph(self, edges: Iterable[EdgeKey]) -> "Graph":
        """The subgraph consisting of ``edges`` and their endpoints."""
        g = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
            g.add_node(u, self._labels[u])
            g.add_node(v, self._labels[v])
            g.add_edge(u, v, self._adj[u][v])
        return g

    def copy(self) -> "Graph":
        g = Graph()
        g._labels = dict(self._labels)
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    # ------------------------------------------------------------------
    # pickling — structural state only; caches are rebuilt on demand
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self._labels, self._adj, self._num_edges)

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple) and len(state) == 3:
            self._labels, self._adj, self._num_edges = state
        else:  # default slot-state format written by earlier versions
            dict_state, slot_state = state
            merged = dict(dict_state or {})
            merged.update(slot_state or {})
            self._labels = merged["_labels"]
            self._adj = merged["_adj"]
            self._num_edges = merged["_num_edges"]
        self._version = 0
        self._inv_cache = {}
        self._inv_version = -1

    def relabel_nodes(self, mapping: Dict[NodeId, NodeId]) -> "Graph":
        """Return a copy with node ids renamed through ``mapping`` (a bijection)."""
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("node relabeling mapping must be injective")
        g = Graph()
        for node, label in self._labels.items():
            g.add_node(mapping.get(node, node), label)
        for u, v in self.edges():
            g.add_edge(mapping.get(u, u), mapping.get(v, v), self._adj[u][v])
        return g

    # ------------------------------------------------------------------
    # equality / repr
    # ------------------------------------------------------------------
    def same_structure(self, other: "Graph") -> bool:
        """Exact equality of node ids, labels and edges (not isomorphism)."""
        return (
            self._labels == other._labels
            and {k: dict(v) for k, v in self._adj.items()}
            == {k: dict(v) for k, v in other._adj.items()}
        )

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"
