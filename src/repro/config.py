"""Global configuration knobs and experiment-scale handling.

The paper evaluates on 40 000 real graphs and 10K–80K synthetic graphs on a
C++/Java stack.  The benches here default to laptop-sized datasets; the
``REPRO_SCALE`` environment variable scales them (1.0 ≈ defaults documented in
EXPERIMENTS.md, larger values approach paper scale).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


def experiment_scale() -> float:
    """Multiplier applied to dataset sizes in the benchmark harness."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return max(value, 0.01)


# ----------------------------------------------------------------------
# hot-path performance knobs (see docs/PERFORMANCE.md)
# ----------------------------------------------------------------------
def verification_workers() -> int:
    """Worker-pool size for batch verification (``REPRO_WORKERS``).

    ``1`` selects the serial path (deterministic, no pool — what the tests
    pin); the default is one worker per CPU.
    """
    try:
        value = int(os.environ.get("REPRO_WORKERS", "0"))
    except ValueError:
        value = 0
    if value >= 1:
        return value
    return os.cpu_count() or 1


def pool_min_candidates() -> int:
    """Candidate count below which batch verification stays serial
    (``REPRO_POOL_MIN_CANDIDATES``, default 64).

    Chunking + IPC cost a few milliseconds per *Run*; below this many
    candidates a pool cannot win them back, so the batch APIs run the
    in-process path directly.  Floor of 1 (``0`` would pool empty batches).
    """
    try:
        value = int(os.environ.get("REPRO_POOL_MIN_CANDIDATES", "64"))
    except ValueError:
        value = 64
    return max(value, 1)


def pool_warm() -> bool:
    """Whether the verification pool persists across batches
    (``REPRO_POOL_WARM``, default on).

    Warm mode keeps one long-lived pool attached to the shared-memory index
    arena; each *Run* dispatches into already-running workers instead of
    paying fork/spawn startup.  ``REPRO_POOL_WARM=0`` restores the
    pool-per-call behaviour (what the cold-dispatch benchmark measures).
    """
    return os.environ.get("REPRO_POOL_WARM", "1") not in ("0", "false", "no")


def pool_idle_ttl() -> float:
    """Seconds an idle warm pool survives before the next dispatch respawns
    it (``REPRO_POOL_TTL``, default 300, ``0`` disables expiry)."""
    try:
        value = float(os.environ.get("REPRO_POOL_TTL", "300"))
    except ValueError:
        value = 300.0
    return max(value, 0.0)


def arena_enabled() -> bool:
    """Whether pooled verification ships work as ``(arena_version,
    chunk_ids)`` against the shared-memory index plane (``REPRO_ARENA``,
    default on).

    With the arena on, the database's graphs, the candidate-algebra universe
    mask and the A2F/A2I lookup tables are serialized once into a read-only
    ``multiprocessing.shared_memory`` segment that every pool worker attaches
    to at spawn; payloads shrink to id tuples.  ``REPRO_ARENA=0`` falls back
    to pickling candidate graphs into every chunk payload (the reference
    path the oracle matrix compares against).
    """
    return os.environ.get("REPRO_ARENA", "1") not in ("0", "false", "no")


def build_workers() -> int:
    """Worker count for sharded parallel index builds (``REPRO_BUILD_WORKERS``).

    ``1`` (the default) keeps :func:`repro.index.build_indexes` on the
    serial mining path — bit-for-bit the historical behaviour.  ``N > 1``
    routes construction through the sharded pipeline
    (:mod:`repro.index.sharded`): the database is partitioned, shards are
    mined in parallel worker processes, and the shard catalogs are merged
    with an exact global support recount.  ``0`` means one worker per CPU.
    The sharded build produces indexes equivalent to the serial build at
    any worker count (property-tested and oracle-pinned).
    """
    try:
        value = int(os.environ.get("REPRO_BUILD_WORKERS", "1"))
    except ValueError:
        value = 1
    if value >= 1:
        return value
    return os.cpu_count() or 1


def build_shards() -> int:
    """Number of database partitions for a sharded index build
    (``REPRO_BUILD_SHARDS``, default ``0`` = one shard per build worker).

    More shards than workers gives finer progress events at slightly more
    merge work; fewer makes no sense and is clamped up to the worker count
    by the builder.  Like every other knob, shard count never changes the
    resulting indexes, only how the mining work is partitioned.
    """
    try:
        value = int(os.environ.get("REPRO_BUILD_SHARDS", "0"))
    except ValueError:
        value = 0
    return max(value, 0)


def canonical_cache_size() -> int:
    """Bound on the process-wide canonical-code LRU (``REPRO_CANONICAL_CACHE``)."""
    try:
        value = int(os.environ.get("REPRO_CANONICAL_CACHE", "8192"))
    except ValueError:
        value = 8192
    return max(value, 0)


def bitset_candidates() -> bool:
    """Whether candidate-set algebra runs on int bitmasks (``REPRO_BITSET=0``
    falls back to the frozenset reference path, kept for A/B checks)."""
    return os.environ.get("REPRO_BITSET", "1") not in ("0", "false", "no")


def trace_enabled() -> bool:
    """Whether the observability layer records spans and metrics.

    ``REPRO_TRACE=1`` turns tracing on; the default (``0``/unset) is the
    no-op mode, whose per-call overhead is bounded by
    ``benchmarks/bench_obs_overhead.py``.  The engine re-reads this knob at
    every GUI action (see :data:`repro.obs.TRACER`), so flipping the variable
    mid-process takes effect at the next action.
    """
    return os.environ.get("REPRO_TRACE", "0") not in ("0", "false", "no", "")


def recorder_enabled() -> bool:
    """Whether the flight recorder keeps its event ring (``REPRO_RECORDER``).

    **On by default** — unlike tracing, the recorder exists for failures
    nobody planned to reproduce (oracle divergences, pool fallbacks), so it
    must already be running when they happen.  ``REPRO_RECORDER=0`` disables
    it; the per-event cost is bounded by
    ``benchmarks/bench_obs_overhead.py``.  Like ``REPRO_TRACE``, the knob is
    re-read at every GUI action.
    """
    return os.environ.get("REPRO_RECORDER", "1") not in ("0", "false", "no")


def recorder_size() -> int:
    """Flight-recorder ring capacity in events (``REPRO_RECORDER_SIZE``).

    The ring keeps the *last* N events; older ones are dropped (the drop
    count is reported in every post-mortem bundle).  Floor of 16 so a bundle
    always has enough context to read.
    """
    try:
        value = int(os.environ.get("REPRO_RECORDER_SIZE", "512"))
    except ValueError:
        value = 512
    return max(value, 16)


def obs_export_dir():
    """Directory for continuous telemetry export (``REPRO_OBS_EXPORT``).

    When set, the observability layer *streams*: every flight-recorder event
    is appended to ``events.jsonl`` as it happens, and the full metrics
    snapshot (counters, gauges, latency histograms) is periodically rewritten
    as ``metrics.prom`` (Prometheus text format) plus ``snapshot.json``
    (schema-v2 envelope) — the files ``python -m repro top`` tails.  Unset
    (the default) means nothing is written; returns ``None`` then.
    """
    value = os.environ.get("REPRO_OBS_EXPORT", "").strip()
    return value or None


def obs_export_interval() -> float:
    """Minimum seconds between metrics-file rewrites
    (``REPRO_OBS_EXPORT_INTERVAL``, default 1.0, floor 0).

    ``0`` rewrites at every opportunity (each completed engine action) —
    what tests use; the JSONL event stream is unaffected by this knob.
    """
    try:
        value = float(os.environ.get("REPRO_OBS_EXPORT_INTERVAL", "1.0"))
    except ValueError:
        value = 1.0
    return max(value, 0.0)


# ----------------------------------------------------------------------
# session-service knobs (see docs/CONFIGURATION.md)
# ----------------------------------------------------------------------
def service_port() -> int:
    """TCP port ``python -m repro serve`` binds (``REPRO_SERVICE_PORT``,
    default 8765; ``0`` asks the OS for an ephemeral port)."""
    try:
        value = int(os.environ.get("REPRO_SERVICE_PORT", "8765"))
    except ValueError:
        value = 8765
    return value if 0 <= value <= 65535 else 8765


def service_max_sessions() -> int:
    """Admission gate: concurrent formulation sessions one server holds
    (``REPRO_SERVICE_MAX_SESSIONS``, default 64, floor 1).

    A create request beyond the cap is rejected with HTTP 503 rather than
    queued — per-session engines hold SPIG/candidate state, so admission is
    the memory backpressure valve.
    """
    try:
        value = int(os.environ.get("REPRO_SERVICE_MAX_SESSIONS", "64"))
    except ValueError:
        value = 64
    return max(value, 1)


def service_session_ttl() -> float:
    """Idle seconds before a session is evicted (``REPRO_SERVICE_TTL``,
    default 1800, ``0`` disables eviction).

    The clock rearms on every action; eviction is lazy (checked on the next
    store access), so an idle server holds no timers.
    """
    try:
        value = float(os.environ.get("REPRO_SERVICE_TTL", "1800"))
    except ValueError:
        value = 1800.0
    return max(value, 0.0)


def slo_window() -> float:
    """Rolling window in seconds over which SLO attainment is computed
    (``REPRO_SLO_WINDOW``, default 3600, floor 1).

    Samples older than the window fall out of both the attainment fraction
    and the burn rate, so the objectives in ``/obs`` describe the last hour
    of traffic by default rather than process lifetime.
    """
    try:
        value = float(os.environ.get("REPRO_SLO_WINDOW", "3600"))
    except ValueError:
        value = 3600.0
    return max(value, 1.0)


def slo_action_threshold() -> float:
    """Per-action latency objective in seconds (``REPRO_SLO_ACTION_SECONDS``,
    default 2.0 — the paper's GUI-latency window).

    A session action counts as *good* for the ``action_latency`` objective
    iff it completes within this many seconds; PRAGUE's whole premise is
    that query processing hides inside the user's drawing latency, so the
    default is :data:`DEFAULT_EDGE_LATENCY_SECONDS`.
    """
    try:
        value = float(os.environ.get("REPRO_SLO_ACTION_SECONDS", "2.0"))
    except ValueError:
        value = 2.0
    return max(value, 0.0)


def slo_request_log_size() -> int:
    """Completed-request ring capacity behind ``/obs`` slowest/recent request
    surfacing and ``/v1/requests/<id>`` lookups (``REPRO_SLO_REQUEST_LOG``,
    default 256, floor 16)."""
    try:
        value = int(os.environ.get("REPRO_SLO_REQUEST_LOG", "256"))
    except ValueError:
        value = 256
    return max(value, 16)


def postmortem_dir():
    """Directory for automatic post-mortem bundles (``REPRO_POSTMORTEM_DIR``).

    When set, a verification-pool fallback writes a flight-recorder bundle
    here (renderable with ``python -m repro postmortem``).  Unset (the
    default) means no files are written implicitly; returns ``None`` then.
    """
    value = os.environ.get("REPRO_POSTMORTEM_DIR", "").strip()
    return value or None


# ----------------------------------------------------------------------
# continuous-profiling knobs (see docs/CONFIGURATION.md)
# ----------------------------------------------------------------------
def profile_hz() -> float:
    """Statistical-sampler frequency in Hz (``REPRO_PROFILE_HZ``).

    ``0`` (the default) keeps the sampler off: no thread is spawned and the
    per-action cost is one attribute check.  When positive, a daemon thread
    polls ``sys._current_frames()`` at this rate and folds every thread's
    stack into the collapsed-stack profile (:mod:`repro.obs.profiler`).
    ~50 Hz is the recommended always-on rate; the sampler-on overhead at
    50 Hz is bounded by ``benchmarks/bench_obs_overhead.py``.  Like
    ``REPRO_TRACE``, the knob is re-read at every engine action.  Capped at
    1000 Hz — beyond that the sampling loop itself distorts the profile.
    """
    try:
        value = float(os.environ.get("REPRO_PROFILE_HZ", "0"))
    except ValueError:
        value = 0.0
    return min(max(value, 0.0), 1000.0)


def profile_mem_topn() -> int:
    """``tracemalloc`` top-N allocation sites per bracket
    (``REPRO_PROFILE_MEM``, default 0 = off).

    When positive, engine actions and arena/index builds are bracketed with
    tracemalloc snapshots and the top-N allocating source lines (by size
    delta) are attached to the profile's memory tier.  Starting tracemalloc
    roughly doubles allocation cost process-wide, so this is a diagnostic
    knob, not an always-on one.
    """
    try:
        value = int(os.environ.get("REPRO_PROFILE_MEM", "0"))
    except ValueError:
        value = 0
    return max(value, 0)


def profile_depth() -> int:
    """Maximum folded-stack depth per sample (``REPRO_PROFILE_DEPTH``,
    default 64, floor 4).

    Frames deeper than this are dropped from the *root* end of the stack —
    the leaf (hot) frames always survive — which bounds both sampling cost
    and collapsed-stack key length on pathologically deep recursion.
    """
    try:
        value = int(os.environ.get("REPRO_PROFILE_DEPTH", "64"))
    except ValueError:
        value = 64
    return max(value, 4)


@dataclass(frozen=True)
class MiningParams:
    """Parameters of the offline mining/indexing phase (Sections III, VIII).

    Attributes
    ----------
    min_support:
        The paper's ``α`` — a fragment is frequent iff ``sup(g) ≥ α·|D|``
        (0 < α < 1).
    size_threshold:
        The paper's ``β`` — frequent fragments of size ≤ β live in the
        memory-resident MF-index, larger ones in DF-index clusters.
    max_fragment_edges:
        Upper bound on mined fragment size; defaults to the paper's maximum
        visual query size (10 edges), so every frequent query fragment is
        indexed.
    """

    min_support: float = 0.1
    size_threshold: int = 4
    max_fragment_edges: int = 10

    def absolute_support(self, db_size: int) -> int:
        """``⌈α·|D|⌉`` with a floor of 1."""
        if not 0.0 < self.min_support < 1.0:
            raise ValueError("alpha must satisfy 0 < alpha < 1 (Section III)")
        import math

        return max(1, math.ceil(self.min_support * db_size))


DEFAULT_SUBGRAPH_DISTANCE = 3
"""The paper's default ``σ`` in Section VIII experiments."""

DEFAULT_EDGE_LATENCY_SECONDS = 2.0
"""Lower bound on per-edge drawing latency the paper reports (Section VIII-B)."""
