"""Fragment records shared by the miner, the DIF generator and the indexes.

Terminology (Section III): a *fragment* is a connected subgraph (≥ 1 edge) of
some data graph; its *FSGs* (fragment support graphs) are the data graphs
containing it; ``fsgIds(g)`` is the set of their identifiers and
``sup(g) = |fsgIds(g)|``.  A fragment is *frequent* iff ``sup(g) ≥ α·|D|``.
A *discriminative infrequent fragment* (DIF) is an infrequent fragment all of
whose proper (connected) subgraphs are frequent, or a single infrequent edge.
Infrequent fragments that are not DIFs are *NIFs* and are never indexed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from repro.graph.canonical import CanonicalCode
from repro.graph.labeled_graph import Graph


@dataclass(frozen=True)
class Fragment:
    """A mined fragment: its canonical code, a concrete graph, and FSG ids."""

    code: CanonicalCode
    graph: Graph = field(compare=False, repr=False)
    fsg_ids: FrozenSet[int] = field(compare=False)

    @property
    def support(self) -> int:
        return len(self.fsg_ids)

    @property
    def size(self) -> int:
        """Fragment size = edge count (``|G| = |E|``)."""
        return self.graph.num_edges


FragmentCatalog = Dict[CanonicalCode, Fragment]
"""Canonical code -> fragment; the output type of both miners."""


def is_frequent(support: int, min_support_abs: int) -> bool:
    """The paper's frequency predicate with an absolute threshold."""
    return support >= min_support_abs
