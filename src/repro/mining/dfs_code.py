"""DFS-code machinery for gSpan pattern growth.

A DFS code is the ordered list of 5-tuples ``(i, j, l_i, l_ij, l_j)`` built by
a depth-first traversal (see :mod:`repro.graph.canonical` for the ordering).
:class:`DFSCode` tracks the derived state gSpan needs while growing patterns:
the number of DFS vertices, the rightmost path, and the pattern graph itself.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graph.canonical import CanonicalCode, CodeTuple, canonical_code
from repro.graph.labeled_graph import Graph

_NO_EDGE_LABEL = ""


class DFSCode:
    """An (assumed valid) DFS code plus cached pattern-growth state."""

    __slots__ = ("tuples", "_graph", "_rightmost_path")

    def __init__(self, tuples: Tuple[CodeTuple, ...] = ()) -> None:
        self.tuples = tuples
        self._graph: Optional[Graph] = None
        self._rightmost_path: Optional[Tuple[int, ...]] = None

    def __len__(self) -> int:
        return len(self.tuples)

    @property
    def num_vertices(self) -> int:
        n = 0
        for i, j, *_ in self.tuples:
            n = max(n, i + 1, j + 1)
        return n

    def child(self, tup: CodeTuple) -> "DFSCode":
        return DFSCode(self.tuples + (tup,))

    @property
    def rightmost_path(self) -> Tuple[int, ...]:
        """DFS indices from the root to the rightmost vertex."""
        if self._rightmost_path is None:
            parent = {}
            rightmost = 0
            for i, j, *_ in self.tuples:
                if j > i:  # forward edge
                    parent[j] = i
                    rightmost = max(rightmost, j)
            path = [rightmost]
            while path[-1] in parent:
                path.append(parent[path[-1]])
            self._rightmost_path = tuple(reversed(path))
        return self._rightmost_path

    def to_graph(self) -> Graph:
        """The pattern graph; node ids are the DFS indices."""
        if self._graph is None:
            g = Graph()
            for i, j, li, lij, lj in self.tuples:
                if not g.has_node(i):
                    g.add_node(i, li)
                if not g.has_node(j):
                    g.add_node(j, lj)
                g.add_edge(i, j, lij if lij != _NO_EDGE_LABEL else None)
            self._graph = g
        return self._graph

    def is_minimal(self) -> bool:
        """True iff this code is the canonical (minimum) DFS code.

        gSpan's duplicate-pruning test: a pattern is expanded only through its
        minimum code, so each isomorphism class is enumerated exactly once.
        """
        return canonical_code(self.to_graph()) == self.tuples

    def canonical(self) -> CanonicalCode:
        return self.tuples
