"""gSpan frequent-fragment mining (Yan & Han, ICDM'02 — the paper's [13]).

GBLENDER/PRAGUE mine the frequent fragment set ``F`` offline with gSpan and
build the action-aware indexes from it.  This is a from-scratch projected-
database implementation:

* patterns grow by rightmost-path extension of DFS codes;
* each pattern keeps its *embeddings* (DFS-index -> data-node maps) per data
  graph, so extension supports are exact TID lists, no isomorphism re-tests;
* duplicate isomorphism classes are pruned with the minimum-DFS-code test.

The miner returns every frequent fragment up to ``max_edges`` together with
its full ``fsgIds`` list — the raw material for the A2F-index and for DIF
generation (:mod:`repro.mining.dif`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.exceptions import MiningError
from repro.graph.canonical import CodeTuple
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph, NodeId, edge_key
from repro.mining.dfs_code import DFSCode
from repro.mining.fragments import Fragment, FragmentCatalog

_NO_EDGE_LABEL = ""

# One embedding: DFS index -> data-graph node, as a tuple indexed by DFS index.
_Embedding = Tuple[NodeId, ...]
# Projected database: graph id -> embeddings of the current pattern in it.
_Projection = Dict[int, List[_Embedding]]


def _norm(label) -> str:
    return _NO_EDGE_LABEL if label is None else label


class GSpanMiner:
    """Mines all frequent fragments of ``db`` with support ≥ ``min_support_abs``.

    Parameters
    ----------
    db:
        The graph database ``D``.
    min_support_abs:
        Absolute support threshold (``⌈α·|D|⌉`` — see
        :meth:`repro.config.MiningParams.absolute_support`).
    max_edges:
        Fragments larger than this are not mined (the indexes only ever serve
        query fragments up to the maximum visual query size).
    """

    def __init__(self, db: GraphDatabase, min_support_abs: int, max_edges: int) -> None:
        if min_support_abs < 1:
            raise MiningError("absolute support threshold must be >= 1")
        if max_edges < 1:
            raise MiningError("max_edges must be >= 1")
        self.db = db
        self.min_support = min_support_abs
        self.max_edges = max_edges
        self._result: FragmentCatalog = {}

    # ------------------------------------------------------------------
    def mine(self) -> FragmentCatalog:
        """Run the mining and return {canonical code -> Fragment}."""
        self._result = {}
        for tup, projection in sorted(self._single_edge_projections().items()):
            if len(projection) < self.min_support:
                continue
            self._grow(DFSCode((tup,)), projection)
        return self._result

    # ------------------------------------------------------------------
    def _single_edge_projections(self) -> Dict[CodeTuple, _Projection]:
        """Seed patterns: every distinct labeled edge with its embeddings."""
        seeds: Dict[CodeTuple, _Projection] = defaultdict(lambda: defaultdict(list))
        for gid, g in self.db.items():
            for u, v in g.edges():
                elabel = _norm(g.edge_label(u, v))
                for a, b in ((u, v), (v, u)):
                    la, lb = g.label(a), g.label(b)
                    if la > lb:
                        continue
                    tup: CodeTuple = (0, 1, la, elabel, lb)
                    seeds[tup][gid].append((a, b))
        # For symmetric single edges (la == lb) both orientations were added.
        return {tup: dict(proj) for tup, proj in seeds.items()}

    def _grow(self, code: DFSCode, projection: _Projection) -> None:
        """Record the (minimal) ``code`` as frequent and expand its children."""
        fragment_graph = code.to_graph().copy()
        self._result[code.canonical()] = Fragment(
            code=code.canonical(),
            graph=fragment_graph,
            fsg_ids=frozenset(projection),
        )
        if len(code) >= self.max_edges:
            return
        extensions = self._extensions(code, projection)
        for tup in sorted(extensions):
            child_proj = extensions[tup]
            if len(child_proj) < self.min_support:
                continue
            child = code.child(tup)
            if not child.is_minimal():
                continue  # this isomorphism class is reached via its min code
            self._grow(child, child_proj)

    def _extensions(
        self, code: DFSCode, projection: _Projection
    ) -> Dict[CodeTuple, _Projection]:
        """All rightmost-path extensions with their projected databases."""
        pattern = code.to_graph()
        rmp = code.rightmost_path
        rm_index = rmp[-1]
        num_vertices = code.num_vertices
        out: Dict[CodeTuple, _Projection] = defaultdict(lambda: defaultdict(list))
        for gid, embeddings in projection.items():
            g = self.db[gid]
            for emb in embeddings:
                mapped: Set[NodeId] = set(emb)
                rm_node = emb[rm_index]
                # Backward: rightmost vertex -> rightmost-path ancestor
                # (skipping the tree parent, whose edge is in the pattern).
                for j in rmp[:-1]:
                    if pattern.has_edge(rm_index, j):
                        continue
                    w = emb[j]
                    if not g.has_edge(rm_node, w):
                        continue
                    tup: CodeTuple = (
                        rm_index,
                        j,
                        g.label(rm_node),
                        _norm(g.edge_label(rm_node, w)),
                        g.label(w),
                    )
                    out[tup][gid].append(emb)
                # Forward: from any rightmost-path vertex to an unmapped node.
                for i in rmp:
                    u = emb[i]
                    for w in g.neighbors(u):
                        if w in mapped:
                            continue
                        tup = (
                            i,
                            num_vertices,
                            g.label(u),
                            _norm(g.edge_label(u, w)),
                            g.label(w),
                        )
                        out[tup][gid].append(emb + (w,))
        return {tup: dict(proj) for tup, proj in out.items()}


def mine_frequent_fragments(
    db: GraphDatabase, min_support_abs: int, max_edges: int
) -> FragmentCatalog:
    """Convenience wrapper around :class:`GSpanMiner`."""
    return GSpanMiner(db, min_support_abs, max_edges).mine()
