"""Discriminative infrequent fragment (DIF) mining.

A DIF (Section III) is an infrequent fragment whose proper connected subgraphs
are all frequent (or any infrequent single edge).  DIFs are the "smallest
witnesses of infrequency": every infrequent fragment contains a DIF, so the
A2I-index only needs DIFs to prune candidates for infrequent query fragments.

Generation is Apriori-style, which is complete for DIFs:

* level 1 — every labeled single edge over the database's label universes that
  is not frequent is a DIF (including never-occurring, support-0 edges, which
  are the strongest possible pruners);
* level k ≥ 2 — every DIF is a one-edge extension of one of its (k−1)-edge
  connected subgraphs, all of which are frequent; so extending each frequent
  fragment by (a) an edge between two existing non-adjacent nodes or (b) a
  pendant node with any database label reaches every DIF.  Candidates are
  deduplicated by canonical code, minimality is checked against the frequent
  catalog, and exact ``fsgIds`` are computed by verifying subgraph isomorphism
  only on the intersection of the frequent subgraphs' FSG lists.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.canonical import CanonicalCode, canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import Graph
from repro.mining.fragments import Fragment, FragmentCatalog


def _single_edge_supports(db: GraphDatabase) -> Dict[Tuple[str, str, str], Set[int]]:
    """(la, le, lb) with la ≤ lb -> ids of graphs containing such an edge."""
    out: Dict[Tuple[str, str, str], Set[int]] = {}
    for gid, g in db.items():
        for u, v in g.edges():
            la, lb = g.label(u), g.label(v)
            if la > lb:
                la, lb = lb, la
            le = g.edge_label(u, v)
            key = (la, "" if le is None else le, lb)
            out.setdefault(key, set()).add(gid)
    return out


def _single_edge_graph(la: str, le: str, lb: str) -> Graph:
    g = Graph()
    g.add_node(0, la)
    g.add_node(1, lb)
    g.add_edge(0, 1, le if le else None)
    return g


def _one_edge_extensions(
    f: Graph,
    node_labels: Sequence[str],
    edge_labels: Sequence[Optional[str]],
    frequent_triples: Optional[Set[Tuple[str, str, str]]] = None,
) -> Iterable[Graph]:
    """All graphs obtained from ``f`` by adding exactly one edge.

    With ``frequent_triples`` given, extensions whose new edge is itself an
    infrequent single-edge fragment are skipped: such a candidate contains an
    infrequent proper subgraph and can never be a DIF (k ≥ 2).  This prunes
    the bulk of the Apriori candidate space.
    """

    def triple_ok(la: str, el: Optional[str], lb: str) -> bool:
        if frequent_triples is None:
            return True
        if la > lb:
            la, lb = lb, la
        return (la, "" if el is None else el, lb) in frequent_triples

    nodes = list(f.nodes())
    # (a) close an edge between two existing, non-adjacent nodes.
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if f.has_edge(u, v):
                continue
            for el in edge_labels:
                if not triple_ok(f.label(u), el, f.label(v)):
                    continue
                g = f.copy()
                g.add_edge(u, v, el)
                yield g
    # (b) attach a new pendant node with any database label.
    new_id = max((n for n in nodes if isinstance(n, int)), default=-1) + 1
    for u in nodes:
        for label in node_labels:
            for el in edge_labels:
                if not triple_ok(f.label(u), el, label):
                    continue
                g = f.copy()
                g.add_node(new_id, label)
                g.add_edge(u, new_id, el)
                yield g


def connected_one_smaller_subgraphs(g: Graph) -> List[Graph]:
    """All connected fragments of ``g`` with one edge fewer.

    Removing an edge may isolate a degree-1 endpoint, which is then dropped
    (fragments have no dangling nodes — Section III).  Removals that truly
    disconnect the graph do not yield fragments.
    """
    out: List[Graph] = []
    for u, v in list(g.edges()):
        h = g.copy()
        h.remove_edge(u, v)
        for node in (u, v):
            if h.degree(node) == 0:
                h.remove_node(node)
        if h.num_nodes > 0 and h.is_connected() and h.num_edges >= 1:
            out.append(h)
    return out


def dif_level1(
    db: GraphDatabase,
    min_support_abs: int,
    node_labels: Sequence[str],
    edge_labels: Sequence[Optional[str]],
    supports: Optional[Dict[Tuple[str, str, str], Set[int]]] = None,
) -> FragmentCatalog:
    """Level-1 DIFs: every infrequent labeled single edge over the universes.

    ``supports`` is the output of :func:`_single_edge_supports`; passing it
    in lets callers that already scanned the database (the sharded build's
    merge phase) avoid a second pass.
    """
    if supports is None:
        supports = _single_edge_supports(db)
    difs: FragmentCatalog = {}
    for la in node_labels:
        for lb in node_labels:
            if la > lb:
                continue
            for el in edge_labels:
                key = (la, "" if el is None else el, lb)
                fsg = frozenset(supports.get(key, set()))
                if len(fsg) >= min_support_abs:
                    continue
                g = _single_edge_graph(*key)
                code = canonical_code(g)
                difs[code] = Fragment(code=code, graph=g, fsg_ids=fsg)
    return difs


def dif_extensions(
    db: GraphDatabase,
    frequent: FragmentCatalog,
    codes: Sequence[CanonicalCode],
    min_support_abs: int,
    max_edges: int,
    node_labels: Sequence[str],
    edge_labels: Sequence[Optional[str]],
    frequent_triples: Set[Tuple[str, str, str]],
    seen: Set[CanonicalCode],
) -> FragmentCatalog:
    """Level ≥ 2 DIFs reachable by extending the frequent fragments ``codes``.

    ``frequent`` must be the *complete* global frequent catalog (minimality
    checks and FSG intersection read it); ``codes`` selects which fragments
    to extend — the full key set for a serial mine, one chunk of it per
    worker in the sharded build.  Extending different chunks can reach the
    same DIF; duplicates carry identical codes and FSG-id lists (support is
    recomputed exactly per candidate), so a first-wins merge is exact.
    ``seen`` is consumed destructively (pass a copy to share a baseline).
    """
    difs: FragmentCatalog = {}
    for code in codes:
        frag = frequent[code]
        if frag.size >= max_edges:
            continue  # extension would exceed the indexable size
        for candidate in _one_edge_extensions(
            frag.graph, node_labels, edge_labels, frequent_triples
        ):
            cand_code = canonical_code(candidate)
            if cand_code in seen or cand_code in frequent:
                continue
            seen.add(cand_code)
            subgraphs = connected_one_smaller_subgraphs(candidate)
            sub_codes = [canonical_code(s) for s in subgraphs]
            if not all(sc in frequent for sc in sub_codes):
                continue  # some subgraph infrequent -> candidate is a NIF
            # Candidate FSG set: graphs containing all frequent subgraphs.
            candidate_ids: Optional[Set[int]] = None
            for sc in sub_codes:
                ids = frequent[sc].fsg_ids
                candidate_ids = (
                    set(ids) if candidate_ids is None else candidate_ids & ids
                )
            assert candidate_ids is not None
            fsg = frozenset(
                gid
                for gid in candidate_ids
                if is_subgraph_isomorphic(candidate, db[gid])
            )
            if len(fsg) >= min_support_abs:
                # Frequent after all — possible only beyond the mining bound;
                # such fragments are neither frequent-indexed nor DIFs.
                continue
            difs[cand_code] = Fragment(
                code=cand_code, graph=candidate, fsg_ids=fsg
            )
    return difs


def mine_difs(
    db: GraphDatabase,
    frequent: FragmentCatalog,
    min_support_abs: int,
    max_edges: int,
    node_labels: Optional[Sequence[str]] = None,
    edge_labels: Optional[Sequence[Optional[str]]] = None,
) -> FragmentCatalog:
    """Mine the complete DIF set up to ``max_edges`` edges.

    ``frequent`` must be the complete frequent catalog for the same thresholds
    (the output of :func:`repro.mining.gspan.mine_frequent_fragments`).
    """
    node_labels = list(node_labels if node_labels is not None else db.node_label_universe())
    edge_labels = list(
        edge_labels if edge_labels is not None else db.edge_label_universe()
    )
    supports = _single_edge_supports(db)

    # Level 1: infrequent single edges over the label universes.
    difs = dif_level1(
        db, min_support_abs, node_labels, edge_labels, supports=supports
    )

    # Levels >= 2: one-edge extensions of frequent fragments.  Extensions
    # adding an infrequent single edge are pruned inside the generator —
    # they would contain an infrequent proper subgraph.
    frequent_triples: Set[Tuple[str, str, str]] = {
        key for key, ids in supports.items() if len(ids) >= min_support_abs
    }
    difs.update(
        dif_extensions(
            db, frequent, list(frequent), min_support_abs, max_edges,
            node_labels, edge_labels, frequent_triples, seen=set(difs),
        )
    )
    return difs


def is_dif(
    g: Graph,
    frequent: FragmentCatalog,
    difs: FragmentCatalog,
) -> bool:
    """Membership test against mined catalogs (used by tests and the SPIG)."""
    return canonical_code(g) in difs
