"""Offline mining: frequent fragments (gSpan) and DIFs."""

from repro.mining.dfs_code import DFSCode
from repro.mining.dif import connected_one_smaller_subgraphs, mine_difs
from repro.mining.fragments import Fragment, FragmentCatalog, is_frequent
from repro.mining.gspan import GSpanMiner, mine_frequent_fragments

__all__ = [
    "DFSCode",
    "Fragment",
    "FragmentCatalog",
    "is_frequent",
    "GSpanMiner",
    "mine_frequent_fragments",
    "mine_difs",
    "connected_one_smaller_subgraphs",
]
