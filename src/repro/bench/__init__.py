"""Benchmark harness utilities (cached datasets, table emission, metrics)."""

from repro.bench.harness import (
    aids_containment_workload,
    aids_db,
    aids_indexes,
    aids_similarity_workload,
    emit,
    format_table,
    scaled,
    synthetic_db,
    synthetic_indexes,
    synthetic_similarity_workload,
    synthetic_sweep_sizes,
)
from repro.bench.metrics import Stopwatch, mb, ms, time_call

__all__ = [
    "aids_db",
    "aids_indexes",
    "aids_similarity_workload",
    "aids_containment_workload",
    "synthetic_db",
    "synthetic_indexes",
    "synthetic_similarity_workload",
    "synthetic_sweep_sizes",
    "scaled",
    "format_table",
    "emit",
    "mb",
    "ms",
    "time_call",
    "Stopwatch",
]
