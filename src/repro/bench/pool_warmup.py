"""Pool warm-up micro-benchmark: serial vs cold-pool vs warm-pool dispatch.

The warm verification pool (:mod:`repro.core.pool`) exists to take the pool
cold start — process spawn plus payload pickling — out of every *Run*
action's SRT.  This benchmark measures exactly that: the per-dispatch wall
time of a full-corpus ``verify_batch`` on three configurations over
identical inputs:

* **serial** — ``workers=1``, the in-process reference path;
* **cold** — ``REPRO_POOL_WARM=0``: a fresh pool is spawned for every
  dispatch (the pre-warm-pool behaviour);
* **warm** — the default: the first dispatch spawns, the measured ones
  reuse the running arena-attached workers.

All three produce identical answers (asserted); the deliverable is the
``warm_speedup`` — the warm-pool acceptance floor is ≥ 2× over cold
(``benchmarks/bench_pool_warmup.py``).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.core import pool as pool_mod
from repro.core.verification import verify_batch
from repro.graph.database import GraphDatabase
from repro.graph.generators import random_connected_subgraph
from repro.graph.labeled_graph import Graph


@contextmanager
def _env(**overrides: str):
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _sample_query(db: GraphDatabase, rng: random.Random, edges: int) -> Graph:
    while True:
        g = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, g, min(edges, g.num_edges))
        if sub is not None:
            return sub


def _best_dispatch(query: Graph, db: GraphDatabase, workers: int,
                   repeats: int) -> float:
    """Best-of-``repeats`` wall time of one full-corpus dispatch."""
    ids = list(db.ids())
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        verify_batch(query, ids, db, workers=workers)
        best = min(best, time.perf_counter() - start)
    return best


def run_pool_warmup(
    db: Optional[GraphDatabase] = None,
    smoke: bool = False,
    seed: int = 2012,
    workers: int = 4,
) -> Dict[str, object]:
    """Measure serial vs cold-pool vs warm-pool dispatch; returns the payload.

    The pool floor is pinned to 1 so every configuration actually takes its
    intended path regardless of corpus size, and the arena stays on (the
    warm pool's steady state).  The warm pool is shut down before its first
    measured configuration so the spawn cost is charged to ``spawn_s``, not
    smeared into the reused dispatches.
    """
    from repro.datasets.aids import generate_aids_like

    if db is None:
        db = generate_aids_like(40 if smoke else 120, seed=seed)
    rng = random.Random(seed)
    query = _sample_query(db, rng, edges=4)
    ids = list(db.ids())
    repeats = 3 if smoke else 5

    with _env(REPRO_POOL_MIN_CANDIDATES="1", REPRO_ARENA="1",
              REPRO_POOL_WARM="1"):
        serial_answer = verify_batch(query, ids, db, workers=1)
        serial_s = _best_dispatch(query, db, workers=1, repeats=repeats)

        with _env(REPRO_POOL_WARM="0"):
            cold_answer = verify_batch(query, ids, db, workers=workers)
            cold_s = _best_dispatch(query, db, workers=workers,
                                    repeats=repeats)

        pool_mod.POOL.shutdown()  # charge the spawn to spawn_s, once
        spawn_start = time.perf_counter()
        warm_answer = verify_batch(query, ids, db, workers=workers)
        spawn_s = time.perf_counter() - spawn_start
        warm_s = _best_dispatch(query, db, workers=workers, repeats=repeats)
        pool_mod.shutdown()

    assert serial_answer == cold_answer == warm_answer
    return {
        "smoke": smoke,
        "corpus": len(db),
        "candidates": len(ids),
        "workers": workers,
        "repeats": repeats,
        "serial_s": serial_s,
        "cold_s": cold_s,
        "spawn_s": spawn_s,
        "warm_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s else float("inf"),
        "hits": len(serial_answer),
    }
