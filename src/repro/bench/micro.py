"""Micro-benchmarks of the three hot paths the performance layer targets.

1. **Canonical-code throughput** — min-DFS-code computation on SPIG-sized
   fragments, uncached (the pre-memoization behaviour: every call computes)
   vs memoized (per-graph + process-wide LRU; see
   :mod:`repro.graph.canonical`).
2. **VF2 scan throughput** — full-corpus containment scans, pre-change
   behaviour (matching order, pre-filter multisets and the target label index
   rebuilt per (pattern, target) pair — replicated verbatim in
   ``_baseline_scan`` below) vs :func:`repro.baselines.naive
   .naive_containment_search` (compiled pattern + cached target invariants).
3. **Candidate-intersection throughput** — Algorithm 3's Φ/Υ AND-folds on
   frozensets vs int bitmasks (:mod:`repro.core.candidates`).

Both the ``benchmarks/bench_micro_hotpaths.py`` suite (full scale, asserts
the speedup floors, persists ``benchmarks/results/micro_hotpaths.json``) and
``python -m repro bench-smoke`` (tiny corpus, CI-fast, correctness-only) run
through :func:`run_micro_hotpaths`.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from typing import Dict, List, Optional

from repro.graph import canonical
from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.generators import random_connected_subgraph
from repro.graph.labeled_graph import Graph
from repro.core import candidates as cand

#: Fragment sizes mirroring SPIG levels of a mid-size visual query.
_FRAGMENT_EDGES = (2, 3, 4, 5, 6, 7)


# ----------------------------------------------------------------------
# pre-change VF2 scan, replicated for an honest baseline
# ----------------------------------------------------------------------
def _baseline_prefilter(pattern: Graph, target: Graph) -> bool:
    if pattern.num_nodes > target.num_nodes or pattern.num_edges > target.num_edges:
        return False
    tlabels = Counter(target.label(n) for n in target.nodes())
    plabels = Counter(pattern.label(n) for n in pattern.nodes())
    for label, count in plabels.items():
        if tlabels.get(label, 0) < count:
            return False
    def triples(g: Graph) -> Counter:
        out: Counter = Counter()
        for u, v in g.edges():
            lu, lv = g.label(u), g.label(v)
            if lu > lv:
                lu, lv = lv, lu
            out[(lu, g.edge_label(u, v), lv)] += 1
        return out
    ttriples = triples(target)
    for triple, count in triples(pattern).items():
        if ttriples.get(triple, 0) < count:
            return False
    return True


def _baseline_matching_order(pattern: Graph, target: Graph) -> List:
    tlabels = Counter(target.label(n) for n in target.nodes())
    remaining = set(pattern.nodes())
    order: List = []
    in_order = set()
    while remaining:
        start = min(
            remaining,
            key=lambda n: (tlabels.get(pattern.label(n), 0), -pattern.degree(n)),
        )
        order.append(start)
        in_order.add(start)
        remaining.discard(start)
        while True:
            frontier = [
                n for n in remaining
                if any(nb in in_order for nb in pattern.neighbors(n))
            ]
            if not frontier:
                break
            nxt = min(
                frontier,
                key=lambda n: (
                    -sum(1 for nb in pattern.neighbors(n) if nb in in_order),
                    tlabels.get(pattern.label(n), 0),
                    -pattern.degree(n),
                ),
            )
            order.append(nxt)
            in_order.add(nxt)
            remaining.discard(nxt)
    return order


def _baseline_contains(pattern: Graph, target: Graph) -> bool:
    """Pre-change containment test: all per-target structure rebuilt."""
    if pattern.num_nodes == 0:
        return True
    if not _baseline_prefilter(pattern, target):
        return False
    order = _baseline_matching_order(pattern, target)
    by_label: Dict[str, List] = {}
    for n in target.nodes():
        by_label.setdefault(target.label(n), []).append(n)
    mapping: Dict = {}
    used = set()

    def candidates(p_node):
        mapped_nbrs = [nb for nb in pattern.neighbors(p_node) if nb in mapping]
        if not mapped_nbrs:
            for t_node in by_label.get(pattern.label(p_node), ()):
                if t_node not in used:
                    yield t_node
            return
        seed = min(mapped_nbrs, key=lambda nb: target.degree(mapping[nb]))
        plabel = pattern.label(p_node)
        for t_node in target.neighbors(mapping[seed]):
            if t_node in used or target.label(t_node) != plabel:
                continue
            ok = True
            for nb in mapped_nbrs:
                t_nb = mapping[nb]
                if not target.has_edge(t_node, t_nb):
                    ok = False
                    break
                if pattern.edge_label(p_node, nb) != target.edge_label(t_node, t_nb):
                    ok = False
                    break
            if ok:
                yield t_node

    def search(depth: int) -> bool:
        if depth == len(order):
            return True
        p_node = order[depth]
        for t_node in candidates(p_node):
            if pattern.degree(p_node) > target.degree(t_node):
                continue
            mapping[p_node] = t_node
            used.add(t_node)
            if search(depth + 1):
                return True
            del mapping[p_node]
            used.discard(t_node)
        return False

    return search(0)


def _baseline_scan(query: Graph, db: GraphDatabase) -> List[int]:
    return sorted(
        gid for gid, g in db.items() if _baseline_contains(query, g)
    )


# ----------------------------------------------------------------------
# the three micro-benchmarks
# ----------------------------------------------------------------------
def sample_fragments(
    db: GraphDatabase, count: int, rng: random.Random
) -> List[Graph]:
    """SPIG-sized connected fragments sampled from data graphs."""
    out: List[Graph] = []
    while len(out) < count:
        g = db[rng.randrange(len(db))]
        edges = _FRAGMENT_EDGES[len(out) % len(_FRAGMENT_EDGES)]
        sub = random_connected_subgraph(rng, g, min(edges, g.num_edges))
        if sub is not None:
            out.append(sub)
    return out


def bench_canonical(db: GraphDatabase, fragments: int, repeats: int,
                    rng: random.Random) -> Dict[str, object]:
    """Uncached vs memoized canonical-code throughput."""
    frags = sample_fragments(db, fragments, rng)
    calls = len(frags) * repeats

    start = time.perf_counter()
    for _ in range(repeats):
        for f in frags:
            canonical._compute_canonical_code(f)
    uncached_s = time.perf_counter() - start

    canonical.clear_cache()
    # Fresh structural copies: the per-graph cache misses, the LRU carries
    # the repeats — the SPIG/gSpan access pattern (same fragment, new object).
    copies = [[f.copy() for f in frags] for _ in range(repeats)]
    start = time.perf_counter()
    for pass_copies in copies:
        for f in pass_copies:
            canonical_code(f)
    cached_s = time.perf_counter() - start
    stats = canonical.cache_stats()

    for f in frags:  # memoized path must agree with the direct computation
        assert canonical_code(f) == canonical._compute_canonical_code(f)
    return {
        "calls": calls,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "speedup": uncached_s / cached_s if cached_s else float("inf"),
        "lru_hits": stats["lru_hits"],
        "lru_misses": stats["misses"],
    }


def bench_scan(db: GraphDatabase, queries: int, query_edges: int,
               repeats: int, rng: random.Random) -> Dict[str, object]:
    """Pre-change vs compiled/cached full-corpus containment scans."""
    from repro.baselines.naive import naive_containment_search

    qs: List[Graph] = []
    while len(qs) < queries:
        g = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, g, min(query_edges, g.num_edges))
        if sub is not None:
            qs.append(sub)
    start = time.perf_counter()
    baseline_answers = [
        _baseline_scan(q, db) for _ in range(repeats) for q in qs
    ]
    baseline_s = time.perf_counter() - start

    start = time.perf_counter()
    new_answers = [
        naive_containment_search(q, db) for _ in range(repeats) for q in qs
    ]
    new_s = time.perf_counter() - start

    assert baseline_answers == new_answers  # identical scans, faster path
    return {
        "scans": len(qs) * repeats,
        "corpus": len(db),
        "baseline_s": baseline_s,
        "compiled_s": new_s,
        "speedup": baseline_s / new_s if new_s else float("inf"),
    }


def bench_intersection(universe: int, sets: int, density: float,
                       repeats: int, rng: random.Random) -> Dict[str, object]:
    """Frozenset AND-fold vs bitset AND-fold on FSG-id-like sets."""
    id_sets = [
        frozenset(
            gid for gid in range(universe) if rng.random() < density
        )
        for _ in range(sets)
    ]
    masks = [cand.bits_of(s) for s in id_sets]

    def frozenset_fold() -> frozenset:
        ordered = sorted(id_sets, key=len)
        out = ordered[0]
        for s in ordered[1:]:
            out = out & s
            if not out:
                break
        return out

    start = time.perf_counter()
    for _ in range(repeats):
        set_result = frozenset_fold()
    frozenset_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(repeats):
        bits_result = cand.intersect_all(masks)
    bitset_s = time.perf_counter() - start

    assert cand.ids_of(bits_result) == set_result
    return {
        "universe": universe,
        "sets": sets,
        "repeats": repeats,
        "frozenset_s": frozenset_s,
        "bitset_s": bitset_s,
        "speedup": frozenset_s / bitset_s if bitset_s else float("inf"),
    }


def run_micro_hotpaths(
    db: GraphDatabase,
    smoke: bool = False,
    seed: int = 2012,
) -> Dict[str, object]:
    """Run all three micro-benchmarks; returns the result payload."""
    rng = random.Random(seed)
    if smoke:
        fragments, repeats, queries, scan_repeats = 12, 5, 2, 1
        universe, nsets, int_repeats = 512, 6, 200
    else:
        fragments, repeats, queries, scan_repeats = 40, 25, 4, 3
        universe, nsets, int_repeats = 4096, 8, 2000
    return {
        "smoke": smoke,
        "canonical": bench_canonical(db, fragments, repeats, rng),
        "scan": bench_scan(db, queries, query_edges=5,
                           repeats=scan_repeats, rng=rng),
        "intersection": bench_intersection(universe, nsets, density=0.2,
                                           repeats=int_repeats, rng=rng),
    }
