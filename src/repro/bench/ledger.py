"""The perf-regression ledger — a bounded suite with a machine-normalized trajectory.

The full benchmark suite under ``benchmarks/`` reproduces the paper's
figures; it is far too slow to run on every change.  This module is the
*regression tripwire* that is cheap enough for CI: a bounded subset of the
perf-critical paths (micro hot paths at smoke scale, the observability
probe loops, one fuzzed-session replay with its SRT fold), normalized by a
machine-speed calibration so records taken on different hardware stay
comparable, appended to ``benchmarks/results/trajectory.json`` — one record
per checkpoint, oldest first, so the file reads as the repository's
performance history.

``python -m repro perf`` appends a record; ``python -m repro perf --check``
compares a fresh run against the last checked-in record and exits non-zero
when any metric regressed by more than :data:`REGRESSION_THRESHOLD_PCT`
(the CI gate).  Normalization: every raw wall time is divided by
:func:`calibrate`'s spin-loop time, so a metric's normalized value is
"multiples of this machine's unit of pure-Python work" — slow hardware
inflates numerator and denominator together.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.export import envelope, open_envelope

#: A candidate metric more than this many percent above baseline fails
#: ``--check``.
REGRESSION_THRESHOLD_PCT = 20.0

#: Metrics below this raw wall time are too noise-dominated to gate on;
#: they are recorded but never flagged as regressions.
_NOISE_FLOOR_S = 1e-3

#: Spin-loop iterations for one calibration pass (~a few ms of arithmetic).
_CALIBRATION_LOOP = 200_000


def calibrate(repeats: int = 5) -> float:
    """Seconds for one fixed pure-Python spin loop (best of ``repeats``).

    The workload is arithmetic + attribute-free loop overhead — the same mix
    the suite's hot paths are made of — so dividing a measurement by this
    number cancels most of the machine-speed difference between records.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_LOOP):
            acc += (i * i) & 0xFFFF
        best = min(best, time.perf_counter() - start)
    return best


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_perf_suite(seed: int = 2012) -> Dict[str, float]:
    """Raw wall-time metrics (seconds) of the bounded regression suite.

    Three groups, each an already-guarded perf surface:

    * ``micro.*`` — the smoke-scale hot-path benchmarks (memoized canonical
      codes, compiled containment scan, bitset intersection);
    * ``obs.probe_loop_s`` — the combined per-call probe loops of the
      observability primitives (disabled span/count, sync, enabled
      histogram/recorder), i.e. the cost bounded by
      ``bench_obs_overhead``;
    * ``pool.*`` — smoke-scale warm-pool vs cold-pool dispatch times over
      the same corpus (the cost bounded by ``bench_pool_warmup``);
    * ``index.*`` — one cold serial mine and one sharded build of the same
      60-graph corpus at sweep parameters (the cost swept at 10–100x scale
      by ``bench_build_scaling``);
    * ``session.*`` — one fuzzed formulation session replayed end to end
      under the default posture, plus its SRT fold (the Figure 9 smoke);
    * ``service.*`` — 25 concurrent scripted users against an in-process
      ``repro serve`` stack: p99 client-observed action latency, the
      99th-percentile SRT-under-load (the cost bounded by
      ``bench_service_load``), and the run's action-latency SLO attainment
      (dimensionless, tracked but never normalized).
    """
    from repro.bench.micro import run_micro_hotpaths
    from repro.bench.pool_warmup import run_pool_warmup
    from repro.bench.obs_overhead import NOOP_LOOP, _noop_costs, _replay
    from repro.datasets.aids import generate_aids_like
    from repro.graph import canonical
    from repro.obs.srt import build_ledger
    from repro.oracle.corpus import corpus_for
    from repro.oracle.fuzzer import generate_trace

    metrics: Dict[str, float] = {}

    db = generate_aids_like(60, seed=seed)
    micro = run_micro_hotpaths(db, smoke=True, seed=seed)
    metrics["micro.canonical_cached_s"] = float(micro["canonical"]["cached_s"])
    metrics["micro.scan_compiled_s"] = float(micro["scan"]["compiled_s"])
    metrics["micro.intersection_bitset_s"] = float(
        micro["intersection"]["bitset_s"]
    )

    probe_loop = NOOP_LOOP // 10  # reduced: this is a tripwire, not the bench
    costs = _noop_costs(loop=probe_loop)
    metrics["obs.probe_loop_s"] = probe_loop * sum(costs.values())

    warmup = run_pool_warmup(db, smoke=True, seed=seed)
    metrics["pool.cold_dispatch_s"] = float(warmup["cold_s"])
    metrics["pool.warm_dispatch_s"] = float(warmup["warm_s"])

    trace = generate_trace(seed=seed)
    corpus = corpus_for(trace.spec)
    _replay(trace, corpus)  # warm corpus-level caches once
    canonical.clear_cache()
    metrics["session.replay_s"] = _best_of(
        lambda: _replay(trace, corpus), 3
    )

    from repro.core.prague import PragueEngine
    from repro.exceptions import ReproError
    from repro.obs.srt import events_from_reports
    from repro.oracle.trace import apply_action

    engine = PragueEngine(corpus.db, corpus.indexes, sigma=trace.sigma)
    for action in trace.actions:
        apply_action(engine, action)
    run_seconds = 0.0
    if engine.query.num_edges:
        try:
            run_seconds = engine.run().processing_seconds
        except ReproError:
            pass  # e.g. a pending option dialogue: SRT still folds the steps
    ledger = build_ledger(
        events_from_reports(engine.history, latency=2.0), run_seconds
    )
    metrics["session.srt_s"] = ledger.srt_seconds

    from repro.bench.service_load import run_service_load

    load = run_service_load(num_sessions=25, smoke=True, seed=seed)
    metrics["service.p99_action_s"] = float(load["p99_action_s"])
    metrics["service.srt_under_load_s"] = float(load["srt_under_load_s"])
    # Dimensionless (a fraction, not a wall time): recorded in the
    # trajectory but excluded from normalization by make_record, so a
    # calibration shift can never flag attainment as a "regression".
    metrics["service.slo_attainment"] = float(load["slo_attainment"])

    # Last on purpose: a cold build churns allocator/GC state enough to
    # skew the latency-sensitive measurements if it ran before them.
    from repro.bench.build_scaling import SWEEP_WORKERS, measure_build_point
    from repro.bench.harness import BUILD_SCALING_PARAMS

    build = measure_build_point(
        db, BUILD_SCALING_PARAMS, workers=SWEEP_WORKERS,
        check_equivalence=False,
    )
    metrics["index.build_cold_s"] = float(build["cold_s"])
    metrics["index.build_sharded_s"] = float(build["sharded_s"])
    return metrics


def make_record(
    metrics: Dict[str, float],
    calibration_s: float,
    label: str = "checkpoint",
) -> Dict[str, Any]:
    """One trajectory record: raw metrics + their machine-normalized form.

    Only wall-time metrics (``*_s`` by convention) are normalized —
    dividing a dimensionless metric like ``service.slo_attainment`` by the
    machine calibration would make a *faster machine* look like a value
    change.  Raw values of every metric are kept either way;
    ``compare_records`` only gates on names present in both records'
    ``normalized`` maps, so un-normalized metrics are trajectory data, not
    regression gates.
    """
    return {
        "label": label,
        "calibration_s": calibration_s,
        "metrics": dict(metrics),
        "normalized": {
            name: (value / calibration_s if calibration_s else 0.0)
            for name, value in metrics.items()
            if name.endswith("_s")
        },
    }


def compare_records(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    threshold_pct: float = REGRESSION_THRESHOLD_PCT,
) -> List[Dict[str, Any]]:
    """Per-metric comparison of two records' *normalized* values.

    Returns one row per metric present in both records, flagged as a
    regression when the candidate is more than ``threshold_pct`` percent
    above the baseline — unless the metric's raw time sits under the noise
    floor on both sides, where a ratio gate would only measure jitter.
    """
    rows: List[Dict[str, Any]] = []
    base_norm = baseline.get("normalized", {})
    cand_norm = candidate.get("normalized", {})
    for name in sorted(set(base_norm) & set(cand_norm)):
        base = base_norm[name]
        cand = cand_norm[name]
        change_pct = 100.0 * (cand - base) / base if base else 0.0
        noisy = (
            baseline.get("metrics", {}).get(name, 0.0) < _NOISE_FLOOR_S
            and candidate.get("metrics", {}).get(name, 0.0) < _NOISE_FLOOR_S
        )
        rows.append({
            "metric": name,
            "baseline": base,
            "candidate": cand,
            "change_pct": change_pct,
            "regression": (not noisy) and change_pct > threshold_pct,
        })
    return rows


# ----------------------------------------------------------------------
# trajectory profiles: attribution for --explain
# ----------------------------------------------------------------------
#: Collapsed stacks kept per trajectory profile — enough for attribution
#: without bloating the checked-in trajectory file.
_PROFILE_MAX_STACKS = 200


def collect_profile(
    seed: int = 2012,
    hz: float = 200.0,
    min_seconds: float = 0.5,
) -> Dict[str, Any]:
    """A compact sampled profile of the suite's session replay.

    Replays the same fuzzed session ``run_perf_suite`` times (fresh engine
    per pass) under the statistical sampler until ``min_seconds`` of wall
    time accumulates, then keeps the busiest :data:`_PROFILE_MAX_STACKS`
    collapsed stacks.  Attached to trajectory records so ``python -m repro
    perf --explain A B`` can name the frames behind a regression —
    ``wall_s`` scales sample shares back into approximate self-seconds.
    """
    from repro.core.prague import PragueEngine
    from repro.obs.profiler import PROFILER
    from repro.oracle.corpus import corpus_for
    from repro.oracle.fuzzer import generate_trace
    from repro.oracle.trace import apply_action

    trace = generate_trace(seed=seed)
    corpus = corpus_for(trace.spec)
    PROFILER.reset()
    PROFILER.force(hz)
    start = time.perf_counter()
    replays = 0
    try:
        while True:
            engine = PragueEngine(
                corpus.db, corpus.indexes, sigma=trace.sigma
            )
            for action in trace.actions:
                apply_action(engine, action)
            replays += 1
            wall_s = time.perf_counter() - start
            if wall_s >= min_seconds or replays >= 1000:
                break
    finally:
        PROFILER.force(None)
    stacks = PROFILER.stacks()
    PROFILER.reset()
    busiest = dict(sorted(
        stacks.items(), key=lambda kv: (-kv[1], kv[0])
    )[:_PROFILE_MAX_STACKS])
    return {
        "hz": hz,
        "seed": seed,
        "wall_s": wall_s,
        "replays": replays,
        "samples": sum(stacks.values()),
        "stacks": busiest,
    }


def _self_seconds(profile: Dict[str, Any]) -> Dict[str, float]:
    """Approximate per-frame self time: wall time × leaf-sample share."""
    stacks = profile.get("stacks", {}) or {}
    total = sum(stacks.values())
    wall_s = float(profile.get("wall_s", 0.0))
    out: Dict[str, float] = {}
    if not total:
        return out
    for folded, samples in stacks.items():
        leaf = folded.rsplit(";", 1)[-1]
        out[leaf] = out.get(leaf, 0.0) + wall_s * samples / total
    return out


def explain_profiles(
    profile_a: Dict[str, Any],
    profile_b: Dict[str, Any],
    top: int = 12,
) -> List[Dict[str, Any]]:
    """Frame-level attribution of a perf delta between two profiles (A → B).

    Returns the ``top`` frames by absolute self-time change, biggest
    slowdown first — the answer to "*which code* got slower between these
    two trajectory entries".  Frames absent from one side read as zero and
    carry ``in_a``/``in_b`` flags (new/gone code paths).
    """
    self_a = _self_seconds(profile_a)
    self_b = _self_seconds(profile_b)
    rows: List[Dict[str, Any]] = []
    for frame in set(self_a) | set(self_b):
        a_s = self_a.get(frame, 0.0)
        b_s = self_b.get(frame, 0.0)
        rows.append({
            "frame": frame,
            "self_a_s": a_s,
            "self_b_s": b_s,
            "delta_s": b_s - a_s,
            "in_a": frame in self_a,
            "in_b": frame in self_b,
        })
    rows.sort(key=lambda r: (-r["delta_s"], r["frame"]))
    return rows[:max(int(top), 0)]


# ----------------------------------------------------------------------
# the trajectory file
# ----------------------------------------------------------------------
def trajectory_path() -> Path:
    from repro.bench.harness import results_dir

    return results_dir() / "trajectory.json"


def load_trajectory(path: Path) -> List[Dict[str, Any]]:
    """The records of a trajectory file, oldest first (empty if absent)."""
    path = Path(path)
    if not path.exists():
        return []
    data = open_envelope(json.loads(path.read_text()), expect_kind="trajectory")
    records = data.get("records", [])
    if not isinstance(records, list):
        raise ValueError(f"{path}: trajectory records must be a list")
    return records


def save_trajectory(path: Path, records: List[Dict[str, Any]]) -> None:
    """Write the records back as a schema-versioned trajectory artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = envelope("trajectory", {"records": records})
    path.write_text(json.dumps(payload, indent=2) + "\n")


def append_record(path: Path, record: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append ``record`` to the trajectory at ``path``; returns all records."""
    records = load_trajectory(path)
    records.append(record)
    save_trajectory(path, records)
    return records
