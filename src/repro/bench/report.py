"""Combined evaluation report from the benchmark result files.

Every benchmark under ``benchmarks/`` writes its paper-style table to
``benchmarks/results/<name>.md`` and its raw numbers to ``<name>.json``.
This module assembles them into one report — the tables verbatim plus small
ASCII charts for the headline comparisons — consumable via
``python -m repro report``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Display order: the paper's tables/figures first, then the ablations.
_SECTION_ORDER = (
    "table2_index_size",
    "fig9a_containment_srt",
    "fig9_candidates",
    "fig9_srt",
    "fig9j_alpha",
    "table3_spig_sequences",
    "table4_modification",
    "table5_modification_synth",
    "fig10a_index_scaling",
    "fig10_synth_scaling",
    "spig_size_analysis",
    "ablation_spig_dedup",
    "ablation_delid",
    "ablation_rfree",
    "ablation_edit_distance",
    "ablation_blending",
)


def ascii_bar(value: float, max_value: float, width: int = 40) -> str:
    """A proportional bar, e.g. ``ascii_bar(3, 6) -> '####################'``."""
    if max_value <= 0:
        return ""
    filled = int(round(width * min(value, max_value) / max_value))
    return "#" * filled


def _chart(
    title: str, rows: Sequence[Tuple[str, float]], unit: str = ""
) -> List[str]:
    lines = [title]
    if not rows:
        return lines + ["  (no data)"]
    peak = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    for label, value in rows:
        bar = ascii_bar(value, peak)
        lines.append(f"  {label.ljust(label_width)} {bar} {value:g}{unit}")
    return lines


def _load(results_dir: Path, name: str) -> Optional[dict]:
    path = results_dir / f"{name}.json"
    if not path.exists():
        return None
    with path.open() as handle:
        return json.load(handle)


def _headline_charts(results_dir: Path) -> List[str]:
    lines: List[str] = []
    table2 = _load(results_dir, "table2_index_size")
    if table2:
        rows = [
            (f"DVP s={s}", table2["dvp_mb"][str(s)])
            for s in (1, 2, 3, 4)
            if str(s) in table2["dvp_mb"]
        ]
        rows += [("PRG", table2["prg_mb"]), ("SG/GR", table2["sg_gr_mb"])]
        lines += _chart("Index sizes (MB)", rows, " MB") + [""]
    srt = _load(results_dir, "fig9_srt")
    if srt:
        totals: Dict[str, float] = {}
        for entry in srt.values():
            for system, value in entry.items():
                if isinstance(value, (int, float)):
                    totals[system] = totals.get(system, 0.0) + value
        rows = sorted(totals.items(), key=lambda kv: kv[1])
        lines += _chart("Total similarity SRT across Q1-Q4 x sigma (s)",
                        [(k, round(v, 3)) for k, v in rows], " s") + [""]
    modification = _load(results_dir, "table4_modification")
    if modification:
        prg = sum(e["PRG_ms"] for e in modification.values())
        gbr = sum(e["GBR_ms"] for e in modification.values())
        lines += _chart(
            "Total modification cost (ms)",
            [("PRG", round(prg, 2)), ("GBR replay", round(gbr, 2))], " ms",
        ) + [""]
    return lines


def render_report(results_dir: Path) -> str:
    """The full textual report; tables verbatim plus headline charts."""
    results_dir = Path(results_dir)
    lines: List[str] = [
        "PRAGUE reproduction — evaluation report",
        "=" * 39,
        "",
    ]
    available = {p.stem for p in results_dir.glob("*.json")}
    if not available:
        return "\n".join(lines + [
            "no benchmark results found — run:",
            "  pytest benchmarks/ --benchmark-only",
        ])
    lines += _headline_charts(results_dir)
    ordered = [n for n in _SECTION_ORDER if n in available]
    ordered += sorted(available - set(_SECTION_ORDER))
    for name in ordered:
        md = results_dir / f"{name}.md"
        if md.exists():
            table = md.read_text().strip()
            if table.startswith("```"):
                table = table.strip("`\n")
            lines += [table, ""]
    return "\n".join(lines)
