"""Service load benchmark: N simulated users on one live server.

The whole point of the service layer is that PRAGUE's blended-SRT promise
survives *concurrency* — per-step processing must still hide inside the
~2 s GUI latency window when dozens of formulations share one process, one
index plane and one verification pool.  This module measures exactly that:

* an in-process :class:`~repro.service.http.PragueService` on an ephemeral
  port (real HTTP, real threads — the same stack ``repro serve`` runs);
* ``num_sessions`` user threads released together through a barrier, each
  driving a scripted formulation (nodes, edges, Run) over its own session
  with its own keep-alive client;
* client-side wall latency recorded per action, folded two ways: exact-rank
  percentiles of action latency, and a per-session SRT-under-load ledger
  (observed action latencies overlapped against the paper's 2 s/edge GUI
  window, exactly like :mod:`repro.obs.srt` folds engine timings).

Deliverables: ``p99_action_s`` and ``srt_under_load_s`` — the ``service.*``
entries of the perf-regression trajectory.
"""

from __future__ import annotations

import math
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_EDGE_LATENCY_SECONDS, MiningParams
from repro.core.plane import SharedPlane
from repro.graph.database import GraphDatabase
from repro.graph.generators import random_connected_subgraph
from repro.index import build_indexes
from repro.obs.requests import REQUEST_LOG
from repro.obs.slo import SLO
from repro.obs.srt import build_ledger
from repro.service import PragueService, ServiceClient, SessionManager
from repro.testing import connected_order

#: Mining parameters for the self-built load corpus — small fragments, so
#: startup stays in seconds while queries still hit the indexed envelope.
LOAD_PARAMS = MiningParams(
    min_support=0.15, size_threshold=3, max_fragment_edges=4
)


def _percentile(values: Sequence[float], pct: float) -> float:
    """Exact-rank percentile (no interpolation): the observed value at or
    above ``pct`` percent of the sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _script(
    db: GraphDatabase, rng: random.Random, edges: int
) -> List[Tuple[str, Tuple[Any, ...]]]:
    """One scripted formulation: a connected subgraph of a served graph,
    drawn node-by-node, edge-by-edge, then Run — guaranteed non-empty
    answers, which keeps the verification path honest."""
    while True:
        g = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, g, min(edges, g.num_edges))
        if sub is not None:
            break
    gestures: List[Tuple[str, Tuple[Any, ...]]] = [
        ("add_node", (repr(node), sub.label(node))) for node in sub.nodes()
    ]
    for u, v in connected_order(sub):
        gestures.append(
            ("add_edge", (repr(u), repr(v), sub.edge_label(u, v)))
        )
    gestures.append(("run", ()))
    return gestures


def run_service_load(
    num_sessions: int = 25,
    smoke: bool = False,
    seed: int = 2012,
    edges_per_query: int = 3,
    edge_latency: float = DEFAULT_EDGE_LATENCY_SECONDS,
    db: Optional[GraphDatabase] = None,
) -> Dict[str, Any]:
    """Drive ``num_sessions`` concurrent scripted users; returns the payload.

    Everything runs in one process (server threads and user threads share
    the interpreter), which is the honest configuration: it is how
    ``repro serve`` deploys, and the GIL contention it adds is part of the
    load being measured.
    """
    from repro.datasets.aids import generate_aids_like

    if db is None:
        db = generate_aids_like(40 if smoke else 80, seed=seed)
    # The SLO tracker and request ring are process-wide; reset them so the
    # reported attainment reflects *this* load run, not whatever the test
    # session did before it.
    SLO.reset()
    REQUEST_LOG.reset()
    indexes = build_indexes(db, LOAD_PARAMS)
    plane = SharedPlane(db, indexes)
    plane.warm()
    manager = SessionManager(
        plane, max_sessions=num_sessions + 4, ttl=0, sigma=2
    )
    server = PragueService(manager, port=0)
    thread = server.serve_background()
    host, port = server.address

    scripts = [
        _script(db, random.Random(seed * 1000 + i), edges_per_query)
        for i in range(num_sessions)
    ]
    barrier = threading.Barrier(num_sessions)
    latencies: List[List[float]] = [[] for _ in range(num_sessions)]
    srts: List[float] = [0.0] * num_sessions
    errors: List[str] = []

    def user(index: int) -> None:
        try:
            with ServiceClient(host, port, timeout=60.0) as client:
                barrier.wait(timeout=30.0)
                sid = client.create_session()
                events = []
                run_seconds = 0.0
                for op, args in scripts[index]:
                    start = time.perf_counter()
                    client.act(sid, op, args)
                    elapsed = time.perf_counter() - start
                    latencies[index].append(elapsed)
                    if op == "add_edge":
                        events.append(("edge", elapsed, edge_latency))
                    elif op == "run":
                        run_seconds = elapsed
                srts[index] = build_ledger(
                    events, run_seconds=run_seconds
                ).srt_seconds
                client.close_session(sid)
        except Exception as exc:  # noqa: BLE001 - reported in the payload
            errors.append(f"user {index}: {type(exc).__name__}: {exc}")

    wall_start = time.perf_counter()
    threads = [
        threading.Thread(target=user, args=(i,), name=f"user-{i}")
        for i in range(num_sessions)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
    wall_seconds = time.perf_counter() - wall_start

    server.shutdown()
    thread.join(timeout=5.0)
    server.server_close()

    flat = [value for per_user in latencies for value in per_user]
    payload: Dict[str, Any] = {
        "smoke": smoke,
        "corpus": len(db),
        "sessions": num_sessions,
        "edges_per_query": edges_per_query,
        "edge_latency_s": edge_latency,
        "actions": len(flat),
        "errors": errors,
        "wall_s": wall_seconds,
        "actions_per_s": len(flat) / wall_seconds if wall_seconds else 0.0,
        "p50_action_s": _percentile(flat, 50.0),
        "p90_action_s": _percentile(flat, 90.0),
        "p99_action_s": _percentile(flat, 99.0),
        "max_action_s": max(flat, default=0.0),
        "srt_under_load_p50_s": _percentile(srts, 50.0),
        "srt_under_load_s": _percentile(srts, 99.0),
        "service": manager.stats(),
    }
    # Server-side SLO attainment over the run (the load's requests are the
    # only samples in the window after the reset above).  No samples — e.g.
    # every user errored before acting — degrades to perfect attainment so
    # the perf trajectory records a number either way.
    slo = SLO.snapshot()
    attainment = slo.get("action_latency", {}).get("attainment")
    payload["slo"] = slo
    payload["slo_attainment"] = (
        1.0 if attainment is None else float(attainment)
    )
    return payload
