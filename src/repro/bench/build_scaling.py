"""Cold-start index builds at 10–100x scale: serial vs sharded.

The measurement behind ``benchmarks/bench_build_scaling.py`` and the
``index.build_cold_s`` / ``index.build_sharded_s`` perf-ledger metrics: for
each corpus size in the scale sweep, time one serial mine (gSpan + DIFs —
the historical ``build_indexes`` path) and one sharded build
(:func:`repro.index.sharded.mine_sharded`) at ``workers`` workers, and check
the two catalogs are equivalent.

Honesty note on speedups: sharding only pays when the machine actually has
cores — ``parallel_cpus`` (the scheduler-visible CPU count) is part of every
result payload, and the ≥ 2x floor is asserted by the benchmark only when at
least 2 CPUs are available.  On a single-CPU box the sharded build is
*slower* than serial (same mining work + merge overhead + process plumbing),
and the results record that truthfully rather than gaming the measurement.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence

from repro.config import MiningParams
from repro.graph.database import GraphDatabase
from repro.index.sharded import mine_sharded
from repro.mining.dif import mine_difs
from repro.mining.gspan import mine_frequent_fragments

#: Worker count the sweep (and the ISSUE floor) is defined at.
SWEEP_WORKERS = 4


def parallel_cpus() -> int:
    """CPUs the scheduler will actually give this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _serial_mine(db: GraphDatabase, params: MiningParams):
    min_sup = params.absolute_support(len(db))
    frequent = mine_frequent_fragments(db, min_sup, params.max_fragment_edges)
    difs = mine_difs(db, frequent, min_sup, params.max_fragment_edges)
    return frequent, difs


def measure_build_point(
    db: GraphDatabase,
    params: MiningParams,
    workers: int = SWEEP_WORKERS,
    check_equivalence: bool = True,
) -> Dict[str, Any]:
    """Serial vs sharded cold build of one corpus; one timed run of each
    (cold builds are seconds-to-minutes — repetition buys nothing)."""
    start = time.perf_counter()
    frequent_serial, difs_serial = _serial_mine(db, params)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    frequent_sharded, difs_sharded = mine_sharded(db, params, workers)
    sharded_s = time.perf_counter() - start

    point: Dict[str, Any] = {
        "graphs": len(db),
        "workers": workers,
        "cold_s": cold_s,
        "sharded_s": sharded_s,
        "speedup": (cold_s / sharded_s) if sharded_s else 0.0,
        "frequent": len(frequent_sharded),
        "difs": len(difs_sharded),
    }
    if check_equivalence:
        point["equivalent"] = (
            set(frequent_sharded) == set(frequent_serial)
            and set(difs_sharded) == set(difs_serial)
            and all(
                frequent_sharded[c].fsg_ids == frequent_serial[c].fsg_ids
                for c in frequent_serial
            )
            and all(
                difs_sharded[c].fsg_ids == difs_serial[c].fsg_ids
                for c in difs_serial
            )
        )
    return point


def run_build_scaling(
    sizes: Optional[Sequence[int]] = None,
    workers: int = SWEEP_WORKERS,
    params: Optional[MiningParams] = None,
    seed: int = 2012,
) -> Dict[str, Any]:
    """The full sweep: one :func:`measure_build_point` per corpus size.

    Equivalence is verified at every size (the check is a set/id comparison —
    trivial next to the builds themselves).  Corpora come from the chunked
    generator so the 100x point does not spend its wall-clock in the RNG.
    """
    from repro.bench.harness import (
        BUILD_SCALING_PARAMS,
        scale_db,
        scale_sweep_sizes,
    )

    sizes = list(sizes if sizes is not None else scale_sweep_sizes())
    params = params or BUILD_SCALING_PARAMS
    points: Dict[str, Dict[str, Any]] = {}
    for size in sizes:
        db = scale_db(size, workers=workers)
        points[str(size)] = measure_build_point(db, params, workers=workers)
    return {
        "workers": workers,
        "parallel_cpus": parallel_cpus(),
        "seed": seed,
        "params": {
            "min_support": params.min_support,
            "size_threshold": params.size_threshold,
            "max_fragment_edges": params.max_fragment_edges,
        },
        "points": points,
    }
