"""Overhead accounting for the default ``repro.obs`` posture.

The observability layer's contract is that with ``REPRO_TRACE`` off (the
default) every *gated* instrumentation site costs one attribute load and a
branch, and the *always-on* pieces — latency histograms and the flight
recorder — stay cheap enough to never turn off.  This module turns both
claims into numbers:

* **per-call costs** — tight-loop timings of a disabled ``span()``
  (including the ``with``-protocol on the shared no-op handle), a disabled
  ``count()``, a ``sync_env()`` call, an *enabled* histogram ``observe()``
  and an *enabled* recorder ``record()`` (the costlier of the recorder's two
  entry points; deduplicated ``transition()`` probes are cheaper), each with
  the empty-loop baseline subtracted;
* **per-session obs-call volume** — one traced replay of a fuzzed session
  counts how many spans, counter increments, env syncs, histogram
  observations and recorder calls a session actually fires (counter
  increments via ``amount > 1`` are over-counted per unit, and every
  recorder call is charged the full ``record()`` price, which only makes
  the bound more conservative);
* **the overhead bound** — ``volume × per-call cost`` as a percentage of the
  session's wall time under the default posture (histograms + recorder on,
  tracing off; best of several replays).  This is an upper bound on what the
  instrumentation can add by default, measured rather than argued;
* **a traced/untraced A/B** of the same session, for scale (tracing *on* is
  allowed to cost more — it is opt-in);
* **the service posture** — the same bound with the request-scoped service
  telemetry charged on top: recorder calls priced inside an active request
  scope, plus one access-log event, two SLO samples and one request-ring
  entry per HTTP request (one request per state-changing gesture);
* **the export-on posture** — the same bound with ``REPRO_OBS_EXPORT``
  streaming: ``sync_env`` and ``record`` are re-probed with the continuous
  exporter active, and the session's *actually streamed* event volume is
  counted under a real exporting replay (streak-compressed transitions
  never reach ``emit``, so charging every recorder call the emit price
  would be wrong by an order of magnitude);
* **the sampler-on posture** — a direct best-of-N A/B of the same session
  with the statistical profiler running at :data:`SAMPLER_HZ` (the
  recommended production rate) versus off.  Unlike the volume-priced
  bounds above this is measured head-to-head: the sampler's cost is a
  background thread waking ``hz`` times a second, not a per-call-site
  charge, so ``volume x per-call cost`` has nothing to multiply.

``benchmarks/bench_obs_overhead.py`` asserts the bounds stay under 5 % and
emits ``benchmarks/results/obs_overhead.json``.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Any, Dict

from repro import obs
from repro.core.prague import PragueEngine
from repro.obs.histogram import HISTOGRAMS, observe, total_observations
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER
from repro.obs.tracer import span, sync_env

#: Iterations for the tight no-op loops (cheap: ~a few ms total).
NOOP_LOOP = 200_000
#: Iterations for the export-on loops (each ``record`` writes a JSONL line,
#: so the loop is bounded to keep the benchmark's disk footprint small).
EXPORT_LOOP = 20_000
#: Untraced replays; the best (minimum) wall time is the denominator.
SESSION_REPEATS = 5
#: The acceptance ceiling asserted by the benchmark.
OVERHEAD_CEILING_PCT = 5.0
#: Sampling rate for the profiler A/B — the recommended production rate.
SAMPLER_HZ = 50.0
#: Replays per sampler A/B side; more than SESSION_REPEATS because the
#: sampled difference is small relative to scheduler noise.
SAMPLER_REPEATS = 7


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _noop_costs(loop: int = NOOP_LOOP) -> Dict[str, float]:
    """Per-call costs in seconds, empty-loop baseline subtracted.

    Spans and counters are probed *disabled* (their default); histogram
    ``observe`` and recorder ``record`` are probed *enabled* (their default
    — they are the always-on layer whose live cost the bound must cover).
    """
    obs.TRACER.force(False)
    RECORDER.force(True)
    try:
        r = range(loop)

        def baseline() -> None:
            for _ in r:
                pass

        def span_loop() -> None:
            for _ in r:
                with span("bench.noop", probe=1):
                    pass

        def count_loop() -> None:
            for _ in r:
                count("bench.noop")

        def sync_loop() -> None:
            for _ in r:
                sync_env()

        def observe_loop() -> None:
            for _ in r:
                observe("bench.noop", 1e-6)

        def record_loop() -> None:
            for _ in r:
                RECORDER.record("bench.noop", probe=1)

        base = _best_of(baseline, 3)
        return {
            "span_s": max(0.0, (_best_of(span_loop, 3) - base)) / loop,
            "count_s": max(0.0, (_best_of(count_loop, 3) - base)) / loop,
            "sync_s": max(0.0, (_best_of(sync_loop, 3) - base)) / loop,
            "observe_s": max(0.0, (_best_of(observe_loop, 3) - base)) / loop,
            "record_s": max(0.0, (_best_of(record_loop, 3) - base)) / loop,
        }
    finally:
        obs.TRACER.force(None)
        RECORDER.force(None)
        RECORDER.reset()
        HISTOGRAMS.pop("bench.noop", None)  # drop the probe histogram


def _service_posture_costs(loop: int = NOOP_LOOP) -> Dict[str, float]:
    """Per-call costs of the request-telemetry posture, baseline subtracted.

    Probed *separately* from :func:`_noop_costs` (whose key set the perf
    ledger's ``obs.probe_loop_s`` normalization depends on): an enabled
    ``record()`` inside an active request scope (the access-log path — one
    extra thread-local read plus a ``setdefault`` per event), one SLO sample
    into a rolling-window tracker, and one request-ring entry against a full
    ring (steady state: every insert also evicts the oldest entry).
    """
    from repro.obs.requests import RequestLog, request_scope
    from repro.obs.slo import SloTracker

    obs.TRACER.force(False)
    RECORDER.force(True)
    tracker = SloTracker(window_s=3600.0)
    rlog = RequestLog(size=256)
    ids = [f"b{i}" for i in range(1024)]
    try:
        r = range(loop)

        def baseline() -> None:
            for _ in r:
                pass

        def record_scoped_loop() -> None:
            with request_scope("bench-request"):
                for _ in r:
                    RECORDER.record("bench.noop", probe=1)

        def slo_loop() -> None:
            for _ in r:
                tracker.record("request_errors", True)

        def request_log_loop() -> None:
            for i in r:
                rlog.record(ids[i & 1023], "GET", "/bench", 200, 0.001)

        base = _best_of(baseline, 3)
        return {
            "record_scoped_s":
                max(0.0, _best_of(record_scoped_loop, 3) - base) / loop,
            "slo_record_s":
                max(0.0, _best_of(slo_loop, 3) - base) / loop,
            "request_log_s":
                max(0.0, _best_of(request_log_loop, 3) - base) / loop,
        }
    finally:
        obs.TRACER.force(None)
        RECORDER.force(None)
        RECORDER.reset()


def _export_env(directory: str):
    """Environment patch that turns the continuous exporter on.

    The interval is pinned far out so per-action ``tick``\\ s cost one
    monotonic-clock probe — the posture under measurement is *streaming
    events*, not rewriting snapshots in a tight loop.
    """
    return {
        "REPRO_OBS_EXPORT": directory,
        "REPRO_OBS_EXPORT_INTERVAL": "3600",
    }


def _apply_env(patch: Dict[str, str]) -> Dict[str, Any]:
    saved = {key: os.environ.get(key) for key in patch}
    os.environ.update(patch)
    return saved


def _restore_env(saved: Dict[str, Any]) -> None:
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def _export_costs(loop: int = EXPORT_LOOP) -> Dict[str, float]:
    """Per-call costs with the continuous exporter streaming, baseline
    subtracted: an *emitting* ``record()`` (append + envelope + JSONL line)
    and a ``sync_env()`` whose export knobs are set but unchanged — the
    raw-string cache must keep the latter near its export-off price."""
    from repro.obs.exporter import EXPORTER

    obs.TRACER.force(False)
    RECORDER.force(True)
    tmp = tempfile.TemporaryDirectory(prefix="repro-obs-export-")
    saved = _apply_env(_export_env(tmp.name))
    EXPORTER.sync_env()
    try:
        r = range(loop)

        def baseline() -> None:
            for _ in r:
                pass

        def record_loop() -> None:
            for _ in r:
                RECORDER.record("bench.noop", probe=1)

        def sync_loop() -> None:
            for _ in r:
                sync_env()

        base = _best_of(baseline, 3)
        return {
            "record_s": max(0.0, (_best_of(record_loop, 3) - base)) / loop,
            "sync_s": max(0.0, (_best_of(sync_loop, 3) - base)) / loop,
        }
    finally:
        _restore_env(saved)
        EXPORTER.sync_env()  # closes the handle, deactivates
        obs.TRACER.force(None)
        RECORDER.force(None)
        RECORDER.reset()
        HISTOGRAMS.pop("bench.noop", None)
        tmp.cleanup()


def _export_session_volume(trace, corpus) -> int:
    """How many events one traced session actually streams to the exporter.

    Far fewer than the recorder's *call* count: transitions are
    streak-compressed before they reach ``emit``.  This is the volume the
    export-on bound charges at the emitting-``record`` price.
    """
    from repro.obs.exporter import EXPORTER

    tmp = tempfile.TemporaryDirectory(prefix="repro-obs-export-")
    saved = _apply_env(_export_env(tmp.name))
    EXPORTER.sync_env()
    RECORDER.force(True)
    RECORDER.reset()
    try:
        before = EXPORTER.events_emitted
        with obs.trace():
            _replay(trace, corpus)
        return EXPORTER.events_emitted - before
    finally:
        RECORDER.force(None)
        RECORDER.reset()
        _restore_env(saved)
        EXPORTER.sync_env()
        tmp.cleanup()


def _replay(trace, corpus) -> None:
    from repro.oracle.trace import apply_action

    engine = PragueEngine(corpus.db, corpus.indexes, sigma=trace.sigma)
    for action in trace.actions:
        apply_action(engine, action)


def run_obs_overhead(seed: int = 2012) -> Dict[str, Any]:
    """Measure the no-op overhead bound for one fuzzed session.

    Returns a JSON-ready dict; ``overhead_bound_pct`` is the headline
    number (see the module docstring for the methodology).
    """
    from repro.graph import canonical
    from repro.oracle.corpus import corpus_for
    from repro.oracle.fuzzer import generate_trace

    trace = generate_trace(seed=seed)
    corpus = corpus_for(trace.spec)
    _replay(trace, corpus)  # warm the corpus-level caches once

    # Obs-call volume of one session, counted under a real traced replay
    # (recorder force-enabled so its call counter sees the full stream).
    RECORDER.force(True)
    RECORDER.reset()
    try:
        with obs.trace() as tracer:
            _replay(trace, corpus)
            snapshot = obs.METRICS.snapshot()
            observations = total_observations()
        recorder_calls = RECORDER.calls
    finally:
        RECORDER.force(None)
        RECORDER.reset()
    spans = tracer.span_count()
    counter_incs = int(sum(snapshot["counters"].values()))
    action_ops = ("add_edge", "add_pattern", "delete_edge", "delete_edges",
                  "relabel_node", "enable_similarity", "run")
    syncs = sum(1 for a in trace.actions if a.op in action_ops)

    costs = _noop_costs()
    per_session_s = (
        spans * costs["span_s"]
        + counter_incs * costs["count_s"]
        + syncs * costs["sync_s"]
        + observations * costs["observe_s"]
        + recorder_calls * costs["record_s"]
    )

    # Service posture: every recorder call may fire inside a request scope
    # (charged at whichever of the two record prices is worse), and each
    # HTTP request adds one access-log event, two SLO samples (request
    # outcome + action latency) and one request-ring entry.  One request
    # per state-changing gesture — the same population as the env syncs.
    service_costs = _service_posture_costs()
    record_worst = max(costs["record_s"], service_costs["record_scoped_s"])
    requests = syncs
    per_request_s = (
        service_costs["record_scoped_s"]
        + 2 * service_costs["slo_record_s"]
        + service_costs["request_log_s"]
    )
    per_session_service_s = (
        spans * costs["span_s"]
        + counter_incs * costs["count_s"]
        + syncs * costs["sync_s"]
        + observations * costs["observe_s"]
        + recorder_calls * record_worst
        + requests * per_request_s
    )

    # Export-on posture: emitted events pay the streaming record price, the
    # (far more numerous) deduplicated recorder calls keep the default one.
    export_costs = _export_costs()
    emitted = min(_export_session_volume(trace, corpus), recorder_calls)
    per_session_export_s = (
        spans * costs["span_s"]
        + counter_incs * costs["count_s"]
        + syncs * export_costs["sync_s"]
        + observations * costs["observe_s"]
        + (recorder_calls - emitted) * costs["record_s"]
        + emitted * export_costs["record_s"]
    )

    canonical.clear_cache()
    untraced_s = _best_of(lambda: _replay(trace, corpus), SESSION_REPEATS)

    def traced_replay() -> None:
        with obs.trace():
            _replay(trace, corpus)

    canonical.clear_cache()
    traced_s = _best_of(traced_replay, SESSION_REPEATS)

    # Sampler posture: direct A/B at the recommended rate.  Both sides are
    # re-measured back to back (the earlier untraced_s ran under different
    # cache warmth) and the difference is clamped at zero — best-of-N means
    # either side can win a coin-flip on an idle machine.
    from repro.obs.profiler import PROFILER

    canonical.clear_cache()
    sampler_off_s = _best_of(lambda: _replay(trace, corpus), SAMPLER_REPEATS)
    PROFILER.reset()
    PROFILER.force(SAMPLER_HZ)
    try:
        canonical.clear_cache()
        sampler_on_s = _best_of(
            lambda: _replay(trace, corpus), SAMPLER_REPEATS)
        sampler_samples = PROFILER.samples
    finally:
        PROFILER.force(None)
        PROFILER.reset()
    overhead_sampler_pct = max(
        0.0, 100 * (sampler_on_s - sampler_off_s) / sampler_off_s)

    return {
        "seed": seed,
        "actions": len(trace.actions),
        "noop_per_call_ns": {
            "span": 1e9 * costs["span_s"],
            "count": 1e9 * costs["count_s"],
            "sync_env": 1e9 * costs["sync_s"],
            "observe": 1e9 * costs["observe_s"],
            "record": 1e9 * costs["record_s"],
        },
        "noop_per_call_export_ns": {
            "sync_env": 1e9 * export_costs["sync_s"],
            "record": 1e9 * export_costs["record_s"],
        },
        "noop_per_call_service_ns": {
            "record_scoped": 1e9 * service_costs["record_scoped_s"],
            "slo_record": 1e9 * service_costs["slo_record_s"],
            "request_log": 1e9 * service_costs["request_log_s"],
        },
        "volume_per_session": {
            "spans": spans,
            "counter_increments": counter_incs,
            "env_syncs": syncs,
            "histogram_observations": observations,
            "recorder_calls": recorder_calls,
            "exported_events": emitted,
            "service_requests": requests,
        },
        "noop_per_session_s": per_session_s,
        "noop_per_session_service_s": per_session_service_s,
        "noop_per_session_export_s": per_session_export_s,
        "untraced_session_s": untraced_s,
        "traced_session_s": traced_s,
        "sampler_hz": SAMPLER_HZ,
        "sampler_off_session_s": sampler_off_s,
        "sampler_on_session_s": sampler_on_s,
        "sampler_samples": sampler_samples,
        "overhead_bound_pct": 100 * per_session_s / untraced_s,
        "overhead_bound_service_pct":
            100 * per_session_service_s / untraced_s,
        "overhead_bound_export_pct": 100 * per_session_export_s / untraced_s,
        "overhead_sampler_pct": overhead_sampler_pct,
        "traced_over_untraced": traced_s / untraced_s,
        "ceiling_pct": OVERHEAD_CEILING_PCT,
    }
