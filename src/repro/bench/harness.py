"""Benchmark harness: cached datasets/indexes/workloads and table emission.

Every table and figure of the paper's Section VIII has a bench module under
``benchmarks/``; they all build on this harness.  Datasets and indexes are
expensive to mine, so everything is cached on disk under ``.bench_cache/`` in
the repository root, keyed by content fingerprints — the first benchmark run
pays the mining cost once.

Scales default to laptop-size and honour ``REPRO_SCALE`` (see
:func:`repro.config.experiment_scale`); EXPERIMENTS.md records the mapping to
the paper's 40K/10K-80K datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import MiningParams, experiment_scale
from repro.datasets.aids import generate_aids_like
from repro.datasets.queries import (
    WorkloadQuery,
    standard_containment_workload,
    standard_similarity_workload,
)
from repro.datasets.synthetic import generate_graphgen_like
from repro.graph.database import GraphDatabase
from repro.index.builder import ActionAwareIndexes, build_indexes

#: Laptop-scale defaults (paper scale in parentheses).
AIDS_DEFAULT_SIZE = 1000        # paper: 40 000
SYNTHETIC_SWEEP_SIZES = (500, 1000, 2000, 3000, 4000)  # paper: 10K..80K
#: The cold-build scale sweep: 10x–100x the 60-graph perf-ledger corpus,
#: generated chunked (:mod:`repro.datasets.scale`) so corpora this large
#: can be produced in parallel.  ``bench_build_scaling`` sweeps these.
SCALE_SWEEP_SIZES = (600, 2000, 6000)
AIDS_PARAMS = MiningParams(min_support=0.1, size_threshold=4,
                           max_fragment_edges=8)
SYNTHETIC_PARAMS = MiningParams(min_support=0.05, size_threshold=4,
                                max_fragment_edges=8)
#: Mining parameters for the cold-build sweep — α matches AIDS_PARAMS; the
#: edge bound is 5 so a 100x corpus still builds in CI-friendly minutes.
BUILD_SCALING_PARAMS = MiningParams(min_support=0.1, size_threshold=4,
                                    max_fragment_edges=5)
DEFAULT_SIGMA = 3
QUERY_EDGES = 7


def repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def cache_dir() -> Path:
    path = repo_root() / ".bench_cache"
    path.mkdir(exist_ok=True)
    return path


def results_dir() -> Path:
    path = repo_root() / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def scaled(n: int) -> int:
    return max(20, int(round(n * experiment_scale())))


# ----------------------------------------------------------------------
# cached datasets / indexes / workloads
# ----------------------------------------------------------------------
_DB_CACHE: Dict[str, GraphDatabase] = {}
_INDEX_CACHE: Dict[str, ActionAwareIndexes] = {}


def aids_db(size: Optional[int] = None) -> GraphDatabase:
    size = scaled(AIDS_DEFAULT_SIZE) if size is None else size
    key = f"aids:{size}"
    if key not in _DB_CACHE:
        _DB_CACHE[key] = generate_aids_like(size)
    return _DB_CACHE[key]


def synthetic_db(size: int) -> GraphDatabase:
    key = f"synth:{size}"
    if key not in _DB_CACHE:
        _DB_CACHE[key] = generate_graphgen_like(size)
    return _DB_CACHE[key]


def synthetic_sweep_sizes() -> List[int]:
    return [scaled(s) for s in SYNTHETIC_SWEEP_SIZES]


def scale_db(size: int, workers: int = 1) -> GraphDatabase:
    """Chunk-generated AIDS-like corpus for the cold-build scale sweep.

    Worker-count independent (see :mod:`repro.datasets.scale`), so cached
    under the size alone.
    """
    from repro.datasets.scale import generate_scaled

    key = f"scale:{size}"
    if key not in _DB_CACHE:
        _DB_CACHE[key] = generate_scaled("aids", size, workers=workers)
    return _DB_CACHE[key]


def scale_sweep_sizes() -> List[int]:
    return [scaled(s) for s in SCALE_SWEEP_SIZES]


def indexes_for(
    db: GraphDatabase, params: MiningParams, tag: str
) -> ActionAwareIndexes:
    key = f"{tag}:{len(db)}:{params.min_support}:{params.size_threshold}:" \
          f"{params.max_fragment_edges}"
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = build_indexes(db, params, cache_dir=cache_dir())
    return _INDEX_CACHE[key]


def aids_indexes(
    size: Optional[int] = None, params: MiningParams = AIDS_PARAMS
) -> ActionAwareIndexes:
    return indexes_for(aids_db(size), params, "aids")


def synthetic_indexes(size: int) -> ActionAwareIndexes:
    return indexes_for(synthetic_db(size), SYNTHETIC_PARAMS, "synth")


def aids_similarity_workload(
    size: Optional[int] = None,
    sigma: int = DEFAULT_SIGMA,
    num_queries: int = 4,
) -> Dict[str, WorkloadQuery]:
    """Q1-Q4 analogues over the AIDS-like corpus (Q1 best case)."""
    db = aids_db(size)
    return standard_similarity_workload(
        db, aids_indexes(size), num_queries=num_queries,
        num_edges=QUERY_EDGES, sigma=sigma, prefix="Q",
    )


def synthetic_similarity_workload(
    size: int, sigma: int = DEFAULT_SIGMA, num_queries: int = 4
) -> Dict[str, WorkloadQuery]:
    """Q5-Q8 analogues over one synthetic corpus."""
    db = synthetic_db(size)
    out = standard_similarity_workload(
        db, synthetic_indexes(size), num_queries=num_queries,
        num_edges=QUERY_EDGES, sigma=sigma, prefix="S",
    )
    renamed = {}
    for i, (name, wq) in enumerate(sorted(out.items()), start=5):
        renamed[f"Q{i}"] = wq
    return renamed


def aids_containment_workload(size: Optional[int] = None):
    return standard_containment_workload(aids_db(size))


# ----------------------------------------------------------------------
# table emission
# ----------------------------------------------------------------------
def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:,.3f}" if abs(cell) < 100 else f"{cell:,.1f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, table: str, data: object) -> None:
    """Print the paper-style table and persist it under benchmarks/results."""
    print()
    print(table)
    out = results_dir()
    (out / f"{name}.md").write_text("```\n" + table + "\n```\n")
    with (out / f"{name}.json").open("w") as handle:
        json.dump(data, handle, indent=2, default=str)
