"""Small measurement helpers shared by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Tuple


def mb(num_bytes: int) -> float:
    """Bytes -> megabytes (the unit of Table II / Figure 10(a))."""
    return num_bytes / (1024.0 * 1024.0)


def ms(seconds: float) -> float:
    """Seconds -> milliseconds (the unit of Tables IV and V)."""
    return seconds * 1000.0


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class Stopwatch:
    """Accumulating stopwatch for multi-phase measurements."""

    def __init__(self) -> None:
        self.laps: dict = {}

    @contextmanager
    def lap(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def total(self) -> float:
        return sum(self.laps.values())
