"""The action-aware infrequent index (A2I) — Section III.

A2I is an array of DIFs in ascending size order.  Each entry stores the
canonical code of a DIF ``g`` and its full FSG-id list (DIFs are infrequent,
so the lists are short by construction; support-0 DIFs carry empty lists and
are the strongest pruners — probing one empties ``Rq`` immediately).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.graph.canonical import CanonicalCode
from repro.mining.fragments import FragmentCatalog
from repro.obs.histogram import observe
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER


class A2IEntry:
    """One DIF entry in the array."""

    __slots__ = ("a2i_id", "code", "size", "fsg_ids")

    def __init__(
        self, a2i_id: int, code: CanonicalCode, size: int, fsg_ids: FrozenSet[int]
    ) -> None:
        self.a2i_id = a2i_id
        self.code = code
        self.size = size
        self.fsg_ids = fsg_ids


class A2IIndex:
    """Lookup: canonical code -> a2iId -> FSG ids."""

    def __init__(self, difs: FragmentCatalog) -> None:
        ordered = sorted(difs.values(), key=lambda f: (f.size, f.code))
        self._entries: List[A2IEntry] = [
            A2IEntry(i, frag.code, frag.size, frag.fsg_ids)
            for i, frag in enumerate(ordered)
        ]
        self._by_code: Dict[CanonicalCode, int] = {
            e.code: e.a2i_id for e in self._entries
        }
        self._bits_cache: Dict[int, int] = {}

    def lookup(self, code: CanonicalCode) -> Optional[int]:
        """``a2iId`` of the DIF with this canonical code, if indexed."""
        start = time.perf_counter()
        a2i_id = self._by_code.get(code)
        observe("index.a2i.lookup", time.perf_counter() - start)
        count("a2i.lookup.hit" if a2i_id is not None else "a2i.lookup.miss")
        RECORDER.transition(
            "a2i.lookup", "hit" if a2i_id is not None else "miss"
        )
        return a2i_id

    def __contains__(self, code: CanonicalCode) -> bool:
        return code in self._by_code

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, a2i_id: int) -> A2IEntry:
        return self._entries[a2i_id]

    def fsg_ids(self, a2i_id: int) -> FrozenSet[int]:
        return self._entries[a2i_id].fsg_ids

    def fsg_bits(self, a2i_id: int) -> int:
        """``fsgIds`` as an int bitmask (memoised) — the A2I/bitset boundary."""
        cached = self._bits_cache.get(a2i_id)
        if cached is None:
            count("a2i.bits_cache.miss")
            # Local import: repro.core pulls in the index package at init.
            from repro.core.candidates import bits_of

            cached = bits_of(self._entries[a2i_id].fsg_ids)
            self._bits_cache[a2i_id] = cached
        else:
            count("a2i.bits_cache.hit")
        return cached

    def entries(self) -> Tuple[A2IEntry, ...]:
        return tuple(self._entries)

    def arena_payload(self) -> Dict[str, object]:
        """The lookup-table dict the shared-memory arena serializes.

        Mirrors :meth:`repro.index.a2f.A2FIndex.arena_payload` (minus β —
        the DIF array has no MF/DF split).
        """
        # Local import: repro.core pulls in the index package at init.
        from repro.core.candidates import mask_to_bytes

        return {
            "codes": [e.code for e in self._entries],
            "sizes": [e.size for e in self._entries],
            "bits": [
                mask_to_bytes(self.fsg_bits(e.a2i_id)) for e in self._entries
            ],
        }
