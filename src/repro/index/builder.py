"""Offline index construction: mine ``F`` and ``Id``, build A2F and A2I.

This is GBLENDER's / PRAGUE's preprocessing phase: gSpan extracts the frequent
fragments [13], the DIF generator derives the discriminative infrequent
fragments, and both are packaged into the action-aware indexes that the online
algorithms probe at every formulation step.

Index construction at realistic scales is minutes of CPU, so
:func:`build_indexes` supports an on-disk cache keyed by a content hash of the
database and the mining parameters (used by the test/benchmark fixtures).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.config import MiningParams, build_shards, build_workers
from repro.graph.database import GraphDatabase
from repro.index.a2f import A2FIndex
from repro.index.a2i import A2IIndex
from repro.mining.dif import mine_difs
from repro.mining.fragments import FragmentCatalog
from repro.mining.gspan import mine_frequent_fragments


@dataclass
class ActionAwareIndexes:
    """The full offline artefact: both indexes plus the raw catalogs."""

    a2f: A2FIndex
    a2i: A2IIndex
    frequent: FragmentCatalog
    difs: FragmentCatalog
    params: MiningParams
    db_size: int

    @property
    def min_support_abs(self) -> int:
        return self.params.absolute_support(self.db_size)


def database_fingerprint(db: GraphDatabase, params: MiningParams) -> str:
    """Stable content hash of (database, mining parameters) for caching."""
    h = hashlib.sha256()
    h.update(
        f"{params.min_support}|{params.size_threshold}|"
        f"{params.max_fragment_edges}|{len(db)}".encode()
    )
    for _, g in db.items():
        h.update(b"t")
        for node in sorted(g.nodes(), key=repr):
            h.update(f"v{node}{g.label(node)}".encode())
        for u, v in sorted(g.edges(), key=repr):
            h.update(f"e{u}{v}{g.edge_label(u, v)}".encode())
    return h.hexdigest()[:24]


def build_indexes(
    db: GraphDatabase,
    params: Optional[MiningParams] = None,
    cache_dir: Optional[Path] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    progress=None,
) -> ActionAwareIndexes:
    """Mine and build the A2F/A2I indexes for ``db``.

    With ``cache_dir`` set, a previous build for the identical database and
    parameters is loaded from disk instead of re-mined.

    ``workers``/``shards`` default to the ``REPRO_BUILD_WORKERS`` /
    ``REPRO_BUILD_SHARDS`` knobs.  ``workers == 1`` with default shards is
    the serial mining path; anything else routes through the sharded
    pipeline (:mod:`repro.index.sharded`), which produces equivalent indexes
    and reports per-shard ``progress`` events (also mirrored into the flight
    recorder, so ``repro top`` shows build progress).
    """
    params = params or MiningParams()
    workers = build_workers() if workers is None else max(1, workers)
    shards = build_shards() if shards is None else max(0, shards)
    cache_path: Optional[Path] = None
    if cache_dir is not None:
        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        cache_path = cache_dir / f"indexes_{database_fingerprint(db, params)}.pkl"
        if cache_path.exists():
            with cache_path.open("rb") as handle:
                frequent, difs = pickle.load(handle)
            return _assemble(db, params, frequent, difs)

    if workers > 1 or shards > 1:
        from repro.index.sharded import mine_sharded

        frequent, difs = mine_sharded(
            db, params, workers, shards, progress=progress
        )
    else:
        min_sup = params.absolute_support(len(db))
        frequent = mine_frequent_fragments(db, min_sup, params.max_fragment_edges)
        difs = mine_difs(db, frequent, min_sup, params.max_fragment_edges)

    if cache_path is not None:
        with cache_path.open("wb") as handle:
            pickle.dump((frequent, difs), handle, protocol=pickle.HIGHEST_PROTOCOL)
    return _assemble(db, params, frequent, difs)


def _assemble(
    db: GraphDatabase,
    params: MiningParams,
    frequent: FragmentCatalog,
    difs: FragmentCatalog,
) -> ActionAwareIndexes:
    return ActionAwareIndexes(
        a2f=A2FIndex(frequent, params.size_threshold),
        a2i=A2IIndex(difs),
        frequent=frequent,
        difs=difs,
        params=params,
        db_size=len(db),
    )
