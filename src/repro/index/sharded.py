"""Sharded parallel index construction with an exact global merge.

Cold-start index builds mine gSpan fragments and DIFs serially over the whole
database — minutes of CPU at the 10–100x dataset sizes the scale sweep targets
(``benchmarks/bench_build_scaling.py``).  This module parallelizes the build
as a data-parallel pipeline over database partitions:

1. **Shard** — split ``D`` into K contiguous partitions ``D_1 … D_K``.
2. **Mine** — run gSpan per shard in parallel worker processes, each at the
   *local* threshold ``⌈α·|D_i|⌉``.
3. **Merge** — union the shard catalogs and recount every candidate's global
   support exactly, level by level (details below).
4. **DIFs** — derive the discriminative infrequent fragments from the merged
   frequent catalog, with the extension work of levels ≥ 2 chunked across the
   same workers.

Why the union of shard catalogs is complete
-------------------------------------------
If a fragment ``g`` with global support ``sup(g) ≥ ⌈α·|D|⌉`` were locally
infrequent in *every* shard, then ``sup(g) = Σ_i sup_i(g) ≤ Σ_i (⌈α·|D_i|⌉−1)
< Σ_i α·|D_i| = α·|D| ≤ ⌈α·|D|⌉`` — a contradiction (the strict inequality
holds because ``⌈x⌉ − 1 < x`` for every real ``x``).  So every globally
frequent fragment is locally frequent in at least one shard, and — support
being antimonotone — so is every one of its connected subgraphs, which means
shard-local gSpan actually reaches and emits it.  The union of shard catalogs
is therefore a superset of the global frequent set, and the merge phase only
has to *filter*, never to discover.

How the merge recounts supports exactly
---------------------------------------
Level 1 (single-edge candidates) is recounted with one linear scan of ``D``.
For a level-k candidate (k ≥ 2) the merge intersects the already-recounted
global FSG lists of its connected (k−1)-edge subgraphs — a superset of the
candidate's true FSG set — and subtracts the graph ids already proven to
contain it by some shard miner (shard-local supports are exact within their
shard).  Only the remaining ids need a subgraph-isomorphism test, and those
tests are themselves fanned out to the workers.  A candidate one of whose
subgraph codes is missing from the accepted set is dropped without any test:
that subgraph is globally infrequent, hence so is the candidate.

Determinism: the output depends only on ``(db, params)`` — never on the
worker or shard count.  Catalogs are sorted by canonical code, frequent
representative graphs are the minimum-DFS-code graphs every shard miner
builds identically, and DIF representative graphs are normalized to
``DFSCode(code).to_graph()`` (serial :func:`repro.mining.dif.mine_difs`
keeps the extension-built graph instead, so sharded DIF graphs are
isomorphic — same canonical code — but not byte-identical to serial ones).
"""

from __future__ import annotations

import math
import multiprocessing
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.config import MiningParams
from repro.graph.canonical import CanonicalCode, canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import Graph
from repro.mining.dfs_code import DFSCode
from repro.mining.dif import (
    _single_edge_supports,
    connected_one_smaller_subgraphs,
    dif_extensions,
    dif_level1,
    mine_difs,
)
from repro.mining.fragments import Fragment, FragmentCatalog
from repro.mining.gspan import GSpanMiner, mine_frequent_fragments
from repro.obs.metrics import count, gauge
from repro.obs.recorder import RECORDER

#: Progress callback: ``(event_kind, fields)`` — mirrors the flight-recorder
#: events, for callers (the CLI, the service) that render build progress.
ProgressFn = Callable[[str, Dict[str, Any]], None]


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def partition_ids(ids: Sequence[int], shards: int) -> List[List[int]]:
    """Split ``ids`` into ``shards`` contiguous, near-equal partitions.

    Every id lands in exactly one partition and no partition is empty
    (``shards`` is clamped to ``len(ids)``).

    >>> partition_ids(range(7), 3)
    [[0, 1, 2], [3, 4], [5, 6]]
    """
    ids = list(ids)
    shards = max(1, min(shards, len(ids) or 1))
    base, extra = divmod(len(ids), shards)
    out: List[List[int]] = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        out.append(ids[start : start + size])
        start += size
    return out


class _ShardView:
    """Read-only view of a database subset that keeps *global* graph ids.

    :class:`~repro.mining.gspan.GSpanMiner` only calls ``items()`` and
    ``__getitem__``, so shard-local FSG lists come out in global-id space and
    merge without translation.
    """

    __slots__ = ("_db", "_gids")

    def __init__(self, db: GraphDatabase, gids: Sequence[int]) -> None:
        self._db = db
        self._gids = list(gids)

    def __len__(self) -> int:
        return len(self._gids)

    def items(self) -> Iterator[Tuple[int, Graph]]:
        for gid in self._gids:
            yield gid, self._db[gid]

    def __getitem__(self, gid: int) -> Graph:
        return self._db[gid]


# ----------------------------------------------------------------------
# worker plumbing — fork-inherited state, one pool per phase
# ----------------------------------------------------------------------
#: Parent sets this immediately before forking a phase pool; workers inherit
#: it copy-on-write, so the database is never pickled into task payloads.
_STATE: Dict[str, Any] = {}


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@contextmanager
def _phase_pool(workers: int, state: Dict[str, Any]):
    """Yield a fork pool seeded with ``state`` (or ``None`` for in-process).

    ``None`` means the caller runs its tasks serially in the parent — same
    task functions, same ``_STATE`` — so the serial fallback exercises the
    identical code path the workers run.
    """
    _STATE.clear()
    _STATE.update(state)
    pool = None
    try:
        if workers > 1 and _fork_available():
            pool = multiprocessing.get_context("fork").Pool(processes=workers)
        yield pool
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        _STATE.clear()


def _mine_shard_task(i: int) -> Tuple[int, FragmentCatalog]:
    params: MiningParams = _STATE["params"]
    gids = _STATE["shards"][i]
    local_min = max(1, math.ceil(params.min_support * len(gids)))
    view = _ShardView(_STATE["db"], gids)
    return i, GSpanMiner(view, local_min, params.max_fragment_edges).mine()


def _verify_chunk(
    db: GraphDatabase, chunk: List[Tuple[CanonicalCode, List[int]]]
) -> List[Tuple[CanonicalCode, List[int]]]:
    out: List[Tuple[CanonicalCode, List[int]]] = []
    for code, ids in chunk:
        g = DFSCode(code).to_graph()
        out.append((code, [gid for gid in ids if is_subgraph_isomorphic(g, db[gid])]))
    return out


def _verify_task(
    chunk: List[Tuple[CanonicalCode, List[int]]],
) -> List[Tuple[CanonicalCode, List[int]]]:
    return _verify_chunk(_STATE["db"], chunk)


def _dif_task(i: int) -> FragmentCatalog:
    s = _STATE
    return dif_extensions(
        s["db"],
        s["frequent"],
        s["chunks"][i],
        s["min_sup"],
        s["max_edges"],
        s["node_labels"],
        s["edge_labels"],
        s["triples"],
        seen=set(s["seen"]),
    )


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
def _graph_for_code(code: CanonicalCode) -> Graph:
    """Deterministic representative graph: DFS indices as node ids —
    exactly the graph shard/serial gSpan miners store for ``code``."""
    return DFSCode(code).to_graph().copy()


def merge_shard_catalogs(
    db: GraphDatabase,
    shard_catalogs: Sequence[FragmentCatalog],
    min_support_abs: int,
    supports: Optional[Dict[Tuple[str, str, str], Set[int]]] = None,
    pool=None,
    workers: int = 1,
) -> FragmentCatalog:
    """Exact global frequent catalog from shard-local ones (sorted by code).

    ``supports`` is the single-edge support map of the *full* database (one
    scan; computed here if absent).  ``pool``/``workers`` parallelize the
    isomorphism recounts; with ``pool=None`` they run in-process.
    Requires ``_STATE["db"]`` to be ``db`` when a pool is passed.
    """
    if supports is None:
        supports = _single_edge_supports(db)

    # Union the candidates: deterministic graph per code, exact known ids.
    graphs: Dict[CanonicalCode, Graph] = {}
    known: Dict[CanonicalCode, Set[int]] = {}
    for cat in shard_catalogs:
        for code, frag in cat.items():
            if code not in graphs:
                graphs[code] = frag.graph
                known[code] = set(frag.fsg_ids)
            else:
                known[code] |= frag.fsg_ids

    by_size: Dict[int, List[CanonicalCode]] = {}
    for code in graphs:
        by_size.setdefault(len(code), []).append(code)

    accepted: Dict[CanonicalCode, Fragment] = {}
    verifications = 0

    # Level 1: exact via the single-edge scan — no isomorphism tests.
    for code in sorted(by_size.get(1, ())):
        _i, _j, la, le, lb = code[0]
        key = (la, le, lb) if la <= lb else (lb, le, la)
        fsg = frozenset(supports.get(key, set()))
        if len(fsg) >= min_support_abs:
            accepted[code] = Fragment(code=code, graph=graphs[code], fsg_ids=fsg)

    # Levels ≥ 2: subgraph-FSG intersection minus shard-known positives,
    # isomorphism tests only on the remainder.
    for size in sorted(s for s in by_size if s >= 2):
        pending: List[Tuple[CanonicalCode, Set[int], List[int]]] = []
        for code in sorted(by_size[size]):
            graph = graphs[code]
            sub_codes = [
                canonical_code(s) for s in connected_one_smaller_subgraphs(graph)
            ]
            if not all(sc in accepted for sc in sub_codes):
                continue  # a proper subgraph is globally infrequent
            cand: Optional[Set[int]] = None
            for sc in sub_codes:
                ids = accepted[sc].fsg_ids
                cand = set(ids) if cand is None else cand & ids
            assert cand is not None
            confirmed = known[code] & cand
            unknown = sorted(cand - confirmed)
            pending.append((code, confirmed, unknown))

        tasks = [(code, unknown) for code, _, unknown in pending if unknown]
        verifications += sum(len(ids) for _, ids in tasks)
        hits: Dict[CanonicalCode, Set[int]] = {}
        if tasks:
            chunks = [tasks[i::workers] for i in range(workers)] if pool else [tasks]
            chunks = [c for c in chunks if c]
            if pool is not None:
                results = pool.map(_verify_task, chunks)
            else:
                results = [_verify_chunk(db, c) for c in chunks]
            for chunk_result in results:
                for code, ids in chunk_result:
                    hits[code] = set(ids)

        for code, confirmed, _unknown in pending:
            fsg = frozenset(confirmed | hits.get(code, set()))
            if len(fsg) >= min_support_abs:
                accepted[code] = Fragment(
                    code=code, graph=graphs[code], fsg_ids=fsg
                )

    count("index.build.merge_verifications", verifications)
    return dict(sorted(accepted.items()))


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def _emit(progress: Optional[ProgressFn], kind: str, **fields: Any) -> None:
    RECORDER.record(kind, **fields)
    if progress is not None:
        progress(kind, dict(fields))


def mine_sharded(
    db: GraphDatabase,
    params: MiningParams,
    workers: int,
    shards: int = 0,
    progress: Optional[ProgressFn] = None,
) -> Tuple[FragmentCatalog, FragmentCatalog]:
    """Mine ``(frequent, difs)`` for ``db`` via the sharded pipeline.

    Equivalent to the serial ``mine_frequent_fragments`` + ``mine_difs`` pair
    at every worker/shard count (same codes, same FSG-id lists, isomorphic
    representative graphs); catalogs come back sorted by canonical code.

    ``shards == 0`` uses one shard per worker; more shards than workers give
    finer progress granularity.  ``workers == 1`` (or platforms without
    ``fork``) runs every phase in-process over the same code path.
    """
    workers = max(1, workers)
    n = len(db)
    min_sup = params.absolute_support(n)  # validates alpha up front
    shards = shards if shards >= 1 else workers
    shards = max(shards, workers)
    shards = max(1, min(shards, n or 1))

    _emit(
        progress,
        "index.build.start",
        db_size=n,
        workers=workers,
        shards=shards,
        min_support_abs=min_sup,
        max_edges=params.max_fragment_edges,
    )

    if n < 2 or shards < 2:
        # Degenerate: one shard is the whole database — serial mine, but
        # normalized to the sharded pipeline's sorted/deterministic output.
        frequent = dict(
            sorted(
                mine_frequent_fragments(db, min_sup, params.max_fragment_edges).items()
            )
        )
        difs = dict(
            sorted(
                mine_difs(db, frequent, min_sup, params.max_fragment_edges).items()
            )
        )
        for code, frag in difs.items():
            difs[code] = Fragment(
                code=code, graph=_graph_for_code(code), fsg_ids=frag.fsg_ids
            )
        _emit(
            progress,
            "index.build.done",
            frequent=len(frequent),
            difs=len(difs),
            mode="serial",
        )
        gauge("index.build.frequent", len(frequent))
        gauge("index.build.difs", len(difs))
        return frequent, difs

    shard_gids = partition_ids([gid for gid, _ in db.items()], shards)

    # Phase 1 — mine each shard at its local threshold.
    shard_catalogs: List[Optional[FragmentCatalog]] = [None] * len(shard_gids)
    with _phase_pool(
        workers, {"db": db, "params": params, "shards": shard_gids}
    ) as pool:
        if pool is not None:
            results = pool.imap_unordered(_mine_shard_task, range(len(shard_gids)))
        else:
            results = map(_mine_shard_task, range(len(shard_gids)))
        for i, catalog in results:
            shard_catalogs[i] = catalog
            count("index.build.shards_done")
            _emit(
                progress,
                "index.build.shard",
                shard=i,
                shards=len(shard_gids),
                graphs=len(shard_gids[i]),
                fragments=len(catalog),
            )

    # Phase 2 — exact global merge.
    supports = _single_edge_supports(db)
    with _phase_pool(workers, {"db": db}) as pool:
        frequent = merge_shard_catalogs(
            db,
            [c for c in shard_catalogs if c is not None],
            min_sup,
            supports=supports,
            pool=pool,
            workers=workers,
        )
    candidates = len({c for cat in shard_catalogs if cat for c in cat})
    _emit(
        progress,
        "index.build.merge",
        candidates=candidates,
        frequent=len(frequent),
    )

    # Phase 3 — DIFs: level 1 in-process (one label-universe sweep over the
    # scan from phase 2), extension levels chunked across the workers.
    node_labels = list(db.node_label_universe())
    edge_labels = list(db.edge_label_universe())
    triples = {k for k, ids in supports.items() if len(ids) >= min_sup}
    level1 = dif_level1(db, min_sup, node_labels, edge_labels, supports=supports)
    chunks = [
        c for c in partition_ids(list(frequent), max(workers, 1)) if c
    ]
    with _phase_pool(
        workers,
        {
            "db": db,
            "frequent": frequent,
            "chunks": chunks,
            "min_sup": min_sup,
            "max_edges": params.max_fragment_edges,
            "node_labels": node_labels,
            "edge_labels": edge_labels,
            "triples": triples,
            "seen": set(level1),
        },
    ) as pool:
        if pool is not None:
            chunk_difs = pool.map(_dif_task, range(len(chunks)))
        else:
            chunk_difs = [_dif_task(i) for i in range(len(chunks))]

    difs: FragmentCatalog = dict(level1)
    for chunk in chunk_difs:
        for code, frag in chunk.items():
            if code not in difs:
                # Duplicate codes across chunks carry identical FSG lists
                # (support is recomputed exactly per candidate), so the
                # normalized graph makes the merge order-independent.
                difs[code] = Fragment(
                    code=code, graph=_graph_for_code(code), fsg_ids=frag.fsg_ids
                )
    difs = dict(sorted(difs.items()))

    _emit(
        progress,
        "index.build.done",
        frequent=len(frequent),
        difs=len(difs),
        mode="sharded",
    )
    gauge("index.build.frequent", len(frequent))
    gauge("index.build.difs", len(difs))
    return frequent, difs
