"""Incremental index maintenance under database growth.

The paper treats the database as static (indexes are mined offline).  A
production deployment also needs to *append* new data graphs without a full
re-mine.  This module provides exactly that, with honest semantics:

* every indexed fragment's FSG-id list is updated exactly (one subgraph-
  isomorphism test per indexed fragment against the new graph, pruned by the
  A2F DAG: if a fragment does not occur, none of its supergraphs can);
* appending can *invalidate the fragment partition* — an infrequent fragment
  may cross the α·|D| threshold, a frequent one may fall under it (|D| grew),
  or the new graph may contain fragments never seen before.  Those events are
  detected and reported; when any occurs the index is **stale** and the
  caller must rebuild (``build_indexes``) to restore the paper's invariants.

This mirrors how FG-Index-family systems are operated in practice: cheap
exact appends between periodic re-mines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import Graph
from repro.index.builder import ActionAwareIndexes
from repro.mining.fragments import Fragment


@dataclass
class AppendReport:
    """What one append did to the index."""

    graph_id: int
    updated_frequent: int = 0
    updated_difs: int = 0
    #: frequent fragments whose support fell below the new α·|D| threshold
    demoted_frequent: List[object] = field(default_factory=list)
    #: DIFs whose support now reaches the threshold (must become frequent)
    promoted_difs: List[object] = field(default_factory=list)
    #: new-label evidence: the graph holds labels the index never saw
    novel_labels: List[str] = field(default_factory=list)

    @property
    def index_stale(self) -> bool:
        """True when the fragment partition changed and a re-mine is due."""
        return bool(
            self.demoted_frequent or self.promoted_difs or self.novel_labels
        )


class IncrementalIndexMaintainer:
    """Keeps an :class:`ActionAwareIndexes` exact while the database grows."""

    def __init__(self, db: GraphDatabase, indexes: ActionAwareIndexes) -> None:
        if indexes.db_size != len(db):
            raise ValueError(
                "indexes were built for a database of a different size"
            )
        self.db = db
        self.indexes = indexes
        self._known_labels: Set[str] = set(db.node_label_universe())
        self.stale = False

    # ------------------------------------------------------------------
    def append(self, graph: Graph) -> AppendReport:
        """Add ``graph`` to the database and update every FSG-id list.

        Returns the :class:`AppendReport`; when ``report.index_stale`` the
        maintainer keeps the lists exact but the *partition* (what counts as
        frequent / DIF) no longer matches the thresholds — call
        :meth:`rebuild` before trusting frequency-dependent behaviour.
        """
        gid = self.db.add(graph)
        report = AppendReport(graph_id=gid)
        report.novel_labels = sorted(
            set(graph.node_labels()) - self._known_labels
        )
        self._known_labels.update(graph.node_labels())

        # --- frequent catalog: DAG-pruned containment sweep -------------
        a2f = self.indexes.a2f
        contains: Dict[int, bool] = {}
        for vid in sorted(
            range(len(a2f)), key=lambda i: a2f.vertex(i).size
        ):
            vertex = a2f.vertex(vid)
            if vertex.parents and not all(
                contains.get(p, False) for p in vertex.parents
            ):
                contains[vid] = False  # some subgraph is absent
                continue
            frag = self.indexes.frequent[vertex.code]
            contains[vid] = is_subgraph_isomorphic(frag.graph, graph)
        new_frequent: Dict = {}
        threshold = self.indexes.params.absolute_support(len(self.db))
        for code, frag in self.indexes.frequent.items():
            vid = a2f.lookup(code)
            assert vid is not None
            if contains.get(vid, False):
                frag = Fragment(
                    code=code, graph=frag.graph,
                    fsg_ids=frag.fsg_ids | {gid},
                )
                report.updated_frequent += 1
            if frag.support < threshold:
                report.demoted_frequent.append(code)
            new_frequent[code] = frag
        self.indexes.frequent = new_frequent

        # --- DIF catalog -------------------------------------------------
        new_difs: Dict = {}
        for code, frag in self.indexes.difs.items():
            if is_subgraph_isomorphic(frag.graph, graph):
                frag = Fragment(
                    code=code, graph=frag.graph,
                    fsg_ids=frag.fsg_ids | {gid},
                )
                report.updated_difs += 1
            if frag.support >= threshold:
                report.promoted_difs.append(code)
            new_difs[code] = frag
        self.indexes.difs = new_difs

        self._reassemble()
        self.indexes.db_size = len(self.db)
        if report.index_stale:
            self.stale = True
        return report

    def rebuild(self) -> ActionAwareIndexes:
        """Full re-mine (the periodic maintenance step); clears staleness."""
        from repro.index.builder import build_indexes

        self.indexes = build_indexes(self.db, self.indexes.params)
        self.stale = False
        return self.indexes

    # ------------------------------------------------------------------
    def _reassemble(self) -> None:
        """Rebuild the probe structures from the updated catalogs."""
        from repro.index.a2f import A2FIndex
        from repro.index.a2i import A2IIndex

        self.indexes.a2f = A2FIndex(
            self.indexes.frequent, self.indexes.params.size_threshold
        )
        self.indexes.a2i = A2IIndex(self.indexes.difs)
