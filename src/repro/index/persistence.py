"""Index persistence and size accounting (Table II / Figure 10(a)).

The paper compares *index sizes in MB* across systems.  We measure the pickled
footprint of each index component, which tracks the information content the
respective system must materialise:

* PRG — MF-index (memory) + DF-index clusters (disk) + the A2I DIF array;
* SG/GR — their shared frequent-feature index;
* DVP — its σ-dependent decomposition index (built per σ).
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Dict, Union

from repro.index.builder import ActionAwareIndexes


def pickled_size_bytes(obj: Any) -> int:
    """Size of the pickled representation of ``obj``."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def a2f_size_bytes(indexes: ActionAwareIndexes) -> Dict[str, int]:
    """MF (≤ β) and DF (> β) component sizes of the A2F-index, in bytes."""
    a2f = indexes.a2f
    mf_payload = [
        (v.a2f_id, v.code, v.size, v.del_ids, v.children, v.cluster_list)
        for v in a2f.mf_vertices()
    ]
    df_payload = [
        (v.a2f_id, v.code, v.size, v.del_ids, v.children)
        for v in a2f.df_vertices()
    ]
    return {
        "mf_bytes": pickled_size_bytes(mf_payload),
        "df_bytes": pickled_size_bytes(df_payload),
    }


def a2i_size_bytes(indexes: ActionAwareIndexes) -> int:
    payload = [
        (e.a2i_id, e.code, e.fsg_ids) for e in indexes.a2i.entries()
    ]
    return pickled_size_bytes(payload)


def prague_index_size_bytes(indexes: ActionAwareIndexes) -> int:
    """Total PRG index footprint (MF + DF + A2I)."""
    parts = a2f_size_bytes(indexes)
    return parts["mf_bytes"] + parts["df_bytes"] + a2i_size_bytes(indexes)


def save_indexes(indexes: ActionAwareIndexes, path: Union[str, Path]) -> int:
    """Pickle the raw catalogs to ``path``; returns bytes written."""
    path = Path(path)
    payload = (indexes.frequent, indexes.difs, indexes.params, indexes.db_size)
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    path.write_bytes(data)
    return len(data)


def load_indexes(path: Union[str, Path]) -> ActionAwareIndexes:
    """Inverse of :func:`save_indexes` (indexes are rebuilt from catalogs)."""
    from repro.index.a2f import A2FIndex
    from repro.index.a2i import A2IIndex
    from repro.index.builder import ActionAwareIndexes as _AAI

    with Path(path).open("rb") as handle:
        frequent, difs, params, db_size = pickle.load(handle)
    return _AAI(
        a2f=A2FIndex(frequent, params.size_threshold),
        a2i=A2IIndex(difs),
        frequent=frequent,
        difs=difs,
        params=params,
        db_size=db_size,
    )
