"""Index persistence and size accounting (Table II / Figure 10(a)).

The paper compares *index sizes in MB* across systems.  We measure the pickled
footprint of each index component, which tracks the information content the
respective system must materialise:

* PRG — MF-index (memory) + DF-index clusters (disk) + the A2I DIF array;
* SG/GR — their shared frequent-feature index;
* DVP — its σ-dependent decomposition index (built per σ).

Two on-disk formats coexist:

* :func:`save_indexes`/:func:`load_indexes` — the original pickle of the raw
  fragment catalogs;
* :func:`save_indexes_arena`/:func:`load_indexes_arena` — the arena format
  (:mod:`repro.index.arena`): the same catalogs plus the data graphs and the
  A2F/A2I lookup tables in one compact, versioned, mmap-readable buffer —
  the bytes that :func:`load_indexes_arena` maps are the very bytes pool
  workers would attach to in shared memory.

Both loaders rebuild byte-identical indexes: lookups and the size
accounting above cannot depend on which format a session restored from
(``tests/index/test_persistence.py`` holds that property).
"""

from __future__ import annotations

import mmap
import pickle
from pathlib import Path
from typing import Any, Dict, Union

from repro.index.builder import ActionAwareIndexes


def pickled_size_bytes(obj: Any) -> int:
    """Size of the pickled representation of ``obj``."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def a2f_size_bytes(indexes: ActionAwareIndexes) -> Dict[str, int]:
    """MF (≤ β) and DF (> β) component sizes of the A2F-index, in bytes."""
    a2f = indexes.a2f
    mf_payload = [
        (v.a2f_id, v.code, v.size, v.del_ids, v.children, v.cluster_list)
        for v in a2f.mf_vertices()
    ]
    df_payload = [
        (v.a2f_id, v.code, v.size, v.del_ids, v.children)
        for v in a2f.df_vertices()
    ]
    return {
        "mf_bytes": pickled_size_bytes(mf_payload),
        "df_bytes": pickled_size_bytes(df_payload),
    }


def a2i_size_bytes(indexes: ActionAwareIndexes) -> int:
    payload = [
        (e.a2i_id, e.code, e.fsg_ids) for e in indexes.a2i.entries()
    ]
    return pickled_size_bytes(payload)


def prague_index_size_bytes(indexes: ActionAwareIndexes) -> int:
    """Total PRG index footprint (MF + DF + A2I)."""
    parts = a2f_size_bytes(indexes)
    return parts["mf_bytes"] + parts["df_bytes"] + a2i_size_bytes(indexes)


def save_indexes(indexes: ActionAwareIndexes, path: Union[str, Path]) -> int:
    """Pickle the raw catalogs to ``path``; returns bytes written."""
    path = Path(path)
    payload = (indexes.frequent, indexes.difs, indexes.params, indexes.db_size)
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    path.write_bytes(data)
    return len(data)


def load_indexes(path: Union[str, Path]) -> ActionAwareIndexes:
    """Inverse of :func:`save_indexes` (indexes are rebuilt from catalogs)."""
    from repro.index.a2f import A2FIndex
    from repro.index.a2i import A2IIndex
    from repro.index.builder import ActionAwareIndexes as _AAI

    with Path(path).open("rb") as handle:
        frequent, difs, params, db_size = pickle.load(handle)
    return _AAI(
        a2f=A2FIndex(frequent, params.size_threshold),
        a2i=A2IIndex(difs),
        frequent=frequent,
        difs=difs,
        params=params,
        db_size=db_size,
    )


def save_indexes_arena(
    indexes: ActionAwareIndexes, db, path: Union[str, Path]
) -> int:
    """Write the arena persistence format to ``path``; returns bytes written.

    ``db`` is the database the indexes were built over — the arena embeds
    its graphs and content fingerprint, so a loaded arena can be published
    straight into shared memory for the verification pool.
    """
    # Local import: repro.core (via the arena's candidate algebra) pulls in
    # the index package at init.
    from repro.index.arena import encode_arena

    path = Path(path)
    data = encode_arena(db, indexes=indexes, include_catalogs=True)
    path.write_bytes(data)
    return len(data)


def load_indexes_arena(path: Union[str, Path]) -> ActionAwareIndexes:
    """Inverse of :func:`save_indexes_arena`.

    The file is mapped read-only (no up-front copy of the graph records);
    the fragment catalogs are decoded out of the mapping and the indexes
    rebuilt exactly as :func:`load_indexes` does, so both formats restore
    identical lookup behaviour and size accounting.
    """
    from repro.config import MiningParams
    from repro.index.a2f import A2FIndex
    from repro.index.a2i import A2IIndex
    from repro.index.arena import IndexArena
    from repro.index.builder import ActionAwareIndexes as _AAI

    with Path(path).open("rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            arena = IndexArena(mapped)
            frequent = arena.catalog("frequent")
            difs = arena.catalog("difs")
            min_support, size_threshold, max_fragment_edges = (
                arena.meta["params"]
            )
            db_size = arena.meta["db_size"]
            arena.close()
        finally:
            mapped.close()
    params = MiningParams(
        min_support=min_support,
        size_threshold=size_threshold,
        max_fragment_edges=max_fragment_edges,
    )
    return _AAI(
        a2f=A2FIndex(frequent, params.size_threshold),
        a2i=A2IIndex(difs),
        frequent=frequent,
        difs=difs,
        params=params,
        db_size=db_size,
    )
