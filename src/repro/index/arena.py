"""The shared-memory index plane — a compact read-only arena.

PRAGUE's residual work runs in a verification pool, and everything a worker
needs used to travel *by value*: candidate graphs re-pickled into every chunk
payload, per-process copies of the indexes.  The arena inverts that: the
database's graphs, the candidate algebra's int-bitmask universe and the
A2F/A2I lookup tables are serialized **once** into a versioned, read-only
byte buffer that lives in ``multiprocessing.shared_memory`` (or an
mmap-backed file for on-disk persistence).  Workers attach at spawn and chunk
payloads shrink to ``(arena_version, chunk_ids)`` tuples.

Layout (all integers little-endian)::

    MAGIC "PRGARENA" | u32 header_len | header JSON
    ...sections at the offsets the header records...

The header carries the format version, the **arena version** — a content
fingerprint of the database (:func:`db_fingerprint`), so a ``db.add()``
necessarily produces a different version and invalidates every attached
consumer — and the section table.  Sections:

========== ==========================================================
section     contents
========== ==========================================================
``meta``    pickled dict: db size, mining params (persistence only)
``universe``the all-graphs candidate bitmask, little-endian bytes
``labels``  pickled node/edge label table (index 0 ≙ unlabeled edge)
``graphs``  offset table + one compact binary record per data graph
``a2f``     pickled A2F lookup table: β, codes, sizes, FSG bitmask blobs
``a2i``     pickled A2I lookup table: codes, sizes, FSG bitmask blobs
``frequent``/``difs``  full fragment catalogs (persistence format only)
========== ==========================================================

Graph records use dense int arrays (label indices + edge index triples);
non-integer node ids degrade to an attached pickled id list.  Decoding is
lazy and memoised per consumer: a pool worker decodes each graph at most
once per arena version, no matter how many chunks touch it.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import struct
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.candidates import (
    bits_of,
    full_mask,
    ids_of,
    mask_from_bytes,
    mask_to_bytes,
)
from repro.exceptions import IndexError_
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph

MAGIC = b"PRGARENA"
FORMAT_VERSION = 1

_GRAPH_HEAD = struct.Struct("<BII")  # flags, num_nodes, num_edges
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_FLAG_DENSE_IDS = 1


def db_fingerprint(db: GraphDatabase) -> str:
    """Content fingerprint of the database — the arena version string.

    Folds every graph's cached structural fingerprint (order-invariant) plus
    its exact node/edge counts; ``db.add()`` changes the length and therefore
    the digest, which is what invalidates published arenas.
    """
    h = hashlib.sha256()
    h.update(_U64.pack(len(db)))
    for _, g in db.items():
        h.update(struct.pack("<qII", g.fingerprint(), g.num_nodes, g.num_edges))
    return h.hexdigest()[:24]


# ----------------------------------------------------------------------
# graph records
# ----------------------------------------------------------------------
def _encode_graph(g: Graph, label_of: Dict[Optional[str], int]) -> bytes:
    nodes = list(g.nodes())
    n = len(nodes)
    dense = all(isinstance(x, int) for x in nodes) and sorted(nodes) == list(
        range(n)
    )
    if dense:
        nodes = list(range(n))
    pos = {node: i for i, node in enumerate(nodes)}
    out = io.BytesIO()
    out.write(_GRAPH_HEAD.pack(_FLAG_DENSE_IDS if dense else 0, n, g.num_edges))
    for node in nodes:
        out.write(_U32.pack(label_of[g.label(node)]))
    for u, v in g.edges():
        out.write(_U32.pack(pos[u]))
        out.write(_U32.pack(pos[v]))
        out.write(_U32.pack(label_of[g.edge_label(u, v)]))
    if not dense:
        out.write(pickle.dumps(nodes, protocol=pickle.HIGHEST_PROTOCOL))
    return out.getvalue()


def _decode_graph(buf: memoryview, labels: Sequence[Optional[str]]) -> Graph:
    flags, n, m = _GRAPH_HEAD.unpack_from(buf, 0)
    off = _GRAPH_HEAD.size
    label_idx = [
        _U32.unpack_from(buf, off + 4 * i)[0] for i in range(n)
    ]
    off += 4 * n
    edges = [
        tuple(_U32.unpack_from(buf, off + 12 * i + 4 * j)[0] for j in range(3))
        for i in range(m)
    ]
    off += 12 * m
    if flags & _FLAG_DENSE_IDS:
        nodes: List = list(range(n))
    else:
        nodes = pickle.loads(bytes(buf[off:]))
    g = Graph()
    for node, li in zip(nodes, label_idx):
        g.add_node(node, labels[li])
    for u_i, v_i, e_i in edges:
        g.add_edge(nodes[u_i], nodes[v_i], labels[e_i])
    return g


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_arena(
    db: GraphDatabase,
    indexes=None,
    include_catalogs: bool = False,
) -> bytes:
    """Serialize the index plane for ``db`` into one arena byte string.

    ``indexes`` (an :class:`~repro.index.builder.ActionAwareIndexes`) adds
    the A2F/A2I lookup-table sections; ``include_catalogs`` additionally
    embeds the raw fragment catalogs and mining parameters — the on-disk
    persistence format (:func:`repro.index.persistence.save_indexes_arena`),
    from which the full indexes can be rebuilt.
    """
    label_of: Dict[Optional[str], int] = {None: 0}
    for g in db:
        for node in g.nodes():
            label_of.setdefault(g.label(node), len(label_of))
        for u, v in g.edges():
            label_of.setdefault(g.edge_label(u, v), len(label_of))

    sections: Dict[str, bytes] = {}
    meta: Dict[str, object] = {"db_size": len(db)}
    sections["universe"] = mask_to_bytes(full_mask(len(db)))

    blobs = []
    if include_catalogs and indexes is not None:
        for catalog in (indexes.frequent, indexes.difs):
            for frag in catalog.values():
                for node in frag.graph.nodes():
                    label_of.setdefault(frag.graph.label(node), len(label_of))
                for u, v in frag.graph.edges():
                    label_of.setdefault(
                        frag.graph.edge_label(u, v), len(label_of)
                    )
    labels = [None] * len(label_of)
    for label, idx in label_of.items():
        labels[idx] = label
    sections["labels"] = pickle.dumps(labels, protocol=pickle.HIGHEST_PROTOCOL)

    for _, g in db.items():
        blobs.append(_encode_graph(g, label_of))
    offsets = [0]
    for blob in blobs:
        offsets.append(offsets[-1] + len(blob))
    graphs = io.BytesIO()
    graphs.write(_U32.pack(len(blobs)))
    for off in offsets:
        graphs.write(_U64.pack(off))
    for blob in blobs:
        graphs.write(blob)
    sections["graphs"] = graphs.getvalue()

    if indexes is not None:
        sections["a2f"] = pickle.dumps(
            indexes.a2f.arena_payload(), protocol=pickle.HIGHEST_PROTOCOL
        )
        sections["a2i"] = pickle.dumps(
            indexes.a2i.arena_payload(), protocol=pickle.HIGHEST_PROTOCOL
        )
        if include_catalogs:
            meta["params"] = (
                indexes.params.min_support,
                indexes.params.size_threshold,
                indexes.params.max_fragment_edges,
            )
            for name, catalog in (
                ("frequent", indexes.frequent), ("difs", indexes.difs)
            ):
                records = [
                    (
                        frag.code,
                        mask_to_bytes(bits_of(frag.fsg_ids)),
                        _encode_graph(frag.graph, label_of),
                    )
                    for frag in sorted(
                        catalog.values(), key=lambda f: (f.size, f.code)
                    )
                ]
                sections[name] = pickle.dumps(
                    records, protocol=pickle.HIGHEST_PROTOCOL
                )

    sections["meta"] = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)

    # Section offsets are relative to the end of the header, so the header's
    # own length never feeds back into them.
    import json

    order = sorted(sections)
    offset = 0
    table = {}
    for name in order:
        table[name] = [offset, len(sections[name])]
        offset += len(sections[name])
    header = {
        "format": FORMAT_VERSION,
        "version": db_fingerprint(db),
        "db_size": len(db),
        "sections": table,
    }
    encoded = json.dumps(header).encode()

    out = io.BytesIO()
    out.write(MAGIC)
    out.write(_U32.pack(len(encoded)))
    out.write(encoded)
    for name in order:
        out.write(sections[name])
    return out.getvalue()


# ----------------------------------------------------------------------
# the arena object
# ----------------------------------------------------------------------
class ArenaIndexTable:
    """Read-only A2F/A2I lookup view decoded from an arena section.

    Bitmasks decode lazily and memoise — probing one entry does not pay for
    the whole table.
    """

    __slots__ = ("codes", "sizes", "_blobs", "_by_code", "_bits", "beta")

    def __init__(self, payload: Dict[str, object]) -> None:
        self.codes: List = list(payload["codes"])
        self.sizes: List[int] = list(payload["sizes"])
        self._blobs: List[bytes] = list(payload["bits"])
        self.beta: Optional[int] = payload.get("beta")
        self._by_code = {code: i for i, code in enumerate(self.codes)}
        self._bits: Dict[int, int] = {}

    def lookup(self, code) -> Optional[int]:
        return self._by_code.get(code)

    def __contains__(self, code) -> bool:
        return code in self._by_code

    def __len__(self) -> int:
        return len(self.codes)

    def fsg_bits(self, idx: int) -> int:
        cached = self._bits.get(idx)
        if cached is None:
            cached = mask_from_bytes(self._blobs[idx])
            self._bits[idx] = cached
        return cached

    def fsg_ids(self, idx: int) -> FrozenSet[int]:
        return ids_of(self.fsg_bits(idx))


class IndexArena:
    """A parsed arena over any buffer (bytes, shared memory, or mmap).

    The instance memoises decoded graphs — in a pool worker that makes graph
    materialization a once-per-arena-version cost, amortized across every
    chunk the worker ever processes.
    """

    def __init__(self, buffer, shm=None, owner: bool = False) -> None:
        import json

        self._buf = memoryview(buffer)
        self._shm = shm
        self._owner = owner
        if bytes(self._buf[: len(MAGIC)]) != MAGIC:
            raise IndexError_("not an arena buffer (bad magic)")
        (header_len,) = _U32.unpack_from(self._buf, len(MAGIC))
        header = json.loads(
            bytes(self._buf[len(MAGIC) + 4 : len(MAGIC) + 4 + header_len])
        )
        if header.get("format", 0) > FORMAT_VERSION:
            raise IndexError_(
                f"arena format {header.get('format')} is newer than this "
                f"reader (max {FORMAT_VERSION})"
            )
        self.version: str = header["version"]
        self.db_size: int = header["db_size"]
        data_start = len(MAGIC) + 4 + header_len
        self._sections: Dict[str, Tuple[int, int]] = {
            name: (data_start + off, length)
            for name, (off, length) in header["sections"].items()
        }
        self._labels: Optional[List[Optional[str]]] = None
        self._graph_cache: Dict[int, Graph] = {}
        self._graph_offsets: Optional[List[int]] = None
        self._tables: Dict[str, ArenaIndexTable] = {}
        self._universe: Optional[int] = None
        self._meta: Optional[Dict[str, object]] = None

    # -- section access ------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._buf.nbytes

    def has_section(self, name: str) -> bool:
        return name in self._sections

    def _section(self, name: str) -> memoryview:
        try:
            off, length = self._sections[name]
        except KeyError:
            raise IndexError_(f"arena has no {name!r} section") from None
        return self._buf[off : off + length]

    @property
    def meta(self) -> Dict[str, object]:
        if self._meta is None:
            self._meta = pickle.loads(bytes(self._section("meta")))
        return self._meta

    @property
    def universe_bits(self) -> int:
        """The candidate algebra's all-graphs bitmask."""
        if self._universe is None:
            self._universe = mask_from_bytes(bytes(self._section("universe")))
        return self._universe

    def labels(self) -> List[Optional[str]]:
        if self._labels is None:
            self._labels = pickle.loads(bytes(self._section("labels")))
        return self._labels

    # -- graphs --------------------------------------------------------
    def _offsets(self) -> Tuple[List[int], int]:
        section = self._section("graphs")
        (count,) = _U32.unpack_from(section, 0)
        if self._graph_offsets is None:
            self._graph_offsets = [
                _U64.unpack_from(section, 4 + 8 * i)[0] for i in range(count + 1)
            ]
        return self._graph_offsets, 4 + 8 * (count + 1)

    def graph(self, gid: int) -> Graph:
        """Decode data graph ``gid`` (memoised per arena instance)."""
        cached = self._graph_cache.get(gid)
        if cached is not None:
            return cached
        if not 0 <= gid < self.db_size:
            raise IndexError_(f"graph id {gid} outside arena (|D|={self.db_size})")
        offsets, base = self._offsets()
        section = self._section("graphs")
        record = section[base + offsets[gid] : base + offsets[gid + 1]]
        g = _decode_graph(record, self.labels())
        self._graph_cache[gid] = g
        return g

    def items(self, ids: Sequence[int]) -> List[Tuple[int, Graph]]:
        """``(gid, graph)`` pairs for a chunk of ids — the worker fetch API."""
        return [(gid, self.graph(gid)) for gid in ids]

    # -- index tables --------------------------------------------------
    def a2f_table(self) -> ArenaIndexTable:
        if "a2f" not in self._tables:
            self._tables["a2f"] = ArenaIndexTable(
                pickle.loads(bytes(self._section("a2f")))
            )
        return self._tables["a2f"]

    def a2i_table(self) -> ArenaIndexTable:
        if "a2i" not in self._tables:
            self._tables["a2i"] = ArenaIndexTable(
                pickle.loads(bytes(self._section("a2i")))
            )
        return self._tables["a2i"]

    def catalog(self, name: str):
        """Rebuild a fragment catalog section (persistence format only)."""
        from repro.mining.fragments import Fragment

        records = pickle.loads(bytes(self._section(name)))
        labels = self.labels()
        out = {}
        for code, mask_blob, graph_blob in records:
            graph = _decode_graph(memoryview(graph_blob), labels)
            out[code] = Fragment(
                code=code,
                graph=graph,
                fsg_ids=ids_of(mask_from_bytes(mask_blob)),
            )
        return out

    # -- shared-memory lifecycle ---------------------------------------
    @classmethod
    def build(cls, db: GraphDatabase, indexes=None) -> "IndexArena":
        """Encode the runtime plane for ``db`` into a bytes-backed arena."""
        return cls(encode_arena(db, indexes=indexes))

    def publish(self) -> Optional[str]:
        """Copy the arena into a ``SharedMemory`` segment (memoised).

        Returns the segment name pool workers attach with, or ``None`` when
        shared memory is unavailable on this platform — callers then fall
        back to by-value payloads.
        """
        if self._shm is not None:
            return self._shm.name
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=self._buf.nbytes)
        except Exception:
            return None
        shm.buf[: self._buf.nbytes] = self._buf
        # Re-point the view at the shared buffer; the private copy is freed.
        # Slice to nbytes: the OS may round the segment up to a page.
        self._buf = shm.buf[: self._buf.nbytes]
        self._shm = shm
        self._owner = True
        return shm.name

    @classmethod
    def attach(cls, name: str, expected_version: Optional[str] = None) -> "IndexArena":
        """Open a published arena by segment name (worker side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        arena = cls(shm.buf, shm=shm, owner=False)
        if expected_version is not None and arena.version != expected_version:
            arena.close()
            raise IndexError_(
                f"arena version mismatch: attached {arena.version}, "
                f"expected {expected_version}"
            )
        return arena

    def close(self) -> None:
        """Release this process's mapping (does not destroy the segment)."""
        self._buf.release()
        self._buf = memoryview(b"")
        if self._shm is not None:
            shm, self._shm = self._shm, None
            shm.close()

    def dispose(self) -> None:
        """Close and, when this process owns the segment, unlink it."""
        shm, owner = self._shm, self._owner
        self.close()
        if shm is not None and owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
