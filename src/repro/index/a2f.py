"""The action-aware frequent index (A2F) — Section III.

A2F is a DAG over all frequent fragments: an edge ``f' → f`` whenever
``f' ⊂ f`` and ``|f| = |f'| + 1``.  It has two components:

* the memory-resident **MF-index** holding fragments of size ≤ β (small,
  frequently probed while the user draws the first edges);
* the disk-resident **DF-index**, an array of *fragment clusters* for
  fragments of size > β.  Each leaf of the MF-index (size = β) carries a
  cluster list pointing at the clusters whose roots are its supergraphs.

Space optimisation (from FG-Index, the paper's [2]): since ``f' ⊂ f`` implies
``fsgIds(f) ⊆ fsgIds(f')``, each vertex stores only the *delta*
``delId(f) = fsgIds(f) − ⋃_{children c} fsgIds(c)``; full FSG-id lists are
reconstructed on demand (memoised).

Because all fragments here are *frequent*, the DAG edges can be computed
without isomorphism tests: every (k−1)-edge connected subgraph of a frequent
fragment is frequent, hence in the catalog, so parent links come from
canonical-code lookups of one-smaller subgraphs.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import IndexError_
from repro.graph.canonical import CanonicalCode
from repro.mining.dif import connected_one_smaller_subgraphs
from repro.mining.fragments import Fragment, FragmentCatalog
from repro.graph.canonical import canonical_code
from repro.obs.histogram import observe
from repro.obs.metrics import count
from repro.obs.recorder import RECORDER


class A2FVertex:
    """One frequent fragment in the A2F DAG."""

    __slots__ = ("a2f_id", "code", "size", "del_ids", "children", "parents",
                 "cluster_list")

    def __init__(self, a2f_id: int, code: CanonicalCode, size: int) -> None:
        self.a2f_id = a2f_id
        self.code = code
        self.size = size
        self.del_ids: FrozenSet[int] = frozenset()
        self.children: Tuple[int, ...] = ()
        self.parents: Tuple[int, ...] = ()
        # Only populated on MF leaves (size == beta): DF cluster ids whose
        # root is a supergraph of this fragment.
        self.cluster_list: Tuple[int, ...] = ()


class FragmentCluster:
    """A DF-index cluster: a weakly-connected DAG of size > β fragments.

    The paper describes one root per cluster; when several minimal fragments
    are weakly connected we keep them in one cluster with multiple roots
    (recorded in ``roots``) — the functional behaviour (probe by code, fetch
    FSG ids) is identical and the size accounting stays honest.
    """

    __slots__ = ("cluster_id", "vertex_ids", "roots")

    def __init__(self, cluster_id: int, vertex_ids: Tuple[int, ...],
                 roots: Tuple[int, ...]) -> None:
        self.cluster_id = cluster_id
        self.vertex_ids = vertex_ids
        self.roots = roots


class A2FIndex:
    """Lookup: canonical code -> a2fId -> FSG ids (reconstructed from deltas)."""

    def __init__(self, frequent: FragmentCatalog, beta: int) -> None:
        if beta < 1:
            raise IndexError_("beta (fragment size threshold) must be >= 1")
        self.beta = beta
        self._vertices: List[A2FVertex] = []
        self._by_code: Dict[CanonicalCode, int] = {}
        self._fsg_cache: Dict[int, FrozenSet[int]] = {}
        self._bits_cache: Dict[int, int] = {}
        self.clusters: List[FragmentCluster] = []
        self._build(frequent)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, frequent: FragmentCatalog) -> None:
        ordered = sorted(frequent.values(), key=lambda f: (f.size, f.code))
        for frag in ordered:
            vid = len(self._vertices)
            self._vertices.append(A2FVertex(vid, frag.code, frag.size))
            self._by_code[frag.code] = vid
        # Parent/child edges through one-smaller connected subgraphs.
        children: Dict[int, Set[int]] = {v.a2f_id: set() for v in self._vertices}
        parents: Dict[int, Set[int]] = {v.a2f_id: set() for v in self._vertices}
        for frag in ordered:
            vid = self._by_code[frag.code]
            if frag.size == 1:
                continue
            for sub in connected_one_smaller_subgraphs(frag.graph):
                pcode = canonical_code(sub)
                pid = self._by_code.get(pcode)
                if pid is None:
                    raise IndexError_(
                        "frequent catalog is not downward closed; "
                        "mine with the same thresholds"
                    )
                children[pid].add(vid)
                parents[vid].add(pid)
        for v in self._vertices:
            v.children = tuple(sorted(children[v.a2f_id]))
            v.parents = tuple(sorted(parents[v.a2f_id]))
        # delId deltas: fsgIds(f) minus the union of the children's fsgIds.
        by_code_frag = {frag.code: frag for frag in ordered}
        for v in self._vertices:
            full = by_code_frag[v.code].fsg_ids
            covered: Set[int] = set()
            for cid in v.children:
                covered |= by_code_frag[self._vertices[cid].code].fsg_ids
            v.del_ids = frozenset(full - covered)
        self._build_clusters()

    def _build_clusters(self) -> None:
        """Group size > β fragments into weakly-connected DF clusters."""
        df_ids = [v.a2f_id for v in self._vertices if v.size > self.beta]
        df_set = set(df_ids)
        unassigned = set(df_ids)
        cluster_of: Dict[int, int] = {}
        while unassigned:
            seed = min(unassigned)
            component = {seed}
            stack = [seed]
            while stack:
                vid = stack.pop()
                for nb in self._vertices[vid].children + self._vertices[vid].parents:
                    if nb in df_set and nb not in component:
                        component.add(nb)
                        stack.append(nb)
            cid = len(self.clusters)
            members = tuple(sorted(component))
            roots = tuple(
                sorted(
                    vid
                    for vid in component
                    if not any(p in df_set for p in self._vertices[vid].parents)
                )
            )
            self.clusters.append(FragmentCluster(cid, members, roots))
            for vid in members:
                cluster_of[vid] = cid
            unassigned -= component
        # MF leaves (size == beta) point at the clusters of their supergraphs.
        for v in self._vertices:
            if v.size != self.beta:
                continue
            cids = {cluster_of[c] for c in v.children if c in cluster_of}
            v.cluster_list = tuple(sorted(cids))

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def lookup(self, code: CanonicalCode) -> Optional[int]:
        """``a2fId`` of the fragment with this canonical code, if frequent."""
        start = time.perf_counter()
        a2f_id = self._by_code.get(code)
        observe("index.a2f.lookup", time.perf_counter() - start)
        count("a2f.lookup.hit" if a2f_id is not None else "a2f.lookup.miss")
        RECORDER.transition(
            "a2f.lookup", "hit" if a2f_id is not None else "miss"
        )
        return a2f_id

    def __contains__(self, code: CanonicalCode) -> bool:
        return code in self._by_code

    def __len__(self) -> int:
        return len(self._vertices)

    def vertex(self, a2f_id: int) -> A2FVertex:
        return self._vertices[a2f_id]

    def fsg_ids(self, a2f_id: int) -> FrozenSet[int]:
        """Reconstruct ``fsgIds`` from delta lists (memoised)."""
        cached = self._fsg_cache.get(a2f_id)
        if cached is not None:
            count("a2f.fsg_cache.hit")
            return cached
        count("a2f.fsg_cache.miss")
        v = self._vertices[a2f_id]
        ids: Set[int] = set(v.del_ids)
        for cid in v.children:
            ids |= self.fsg_ids(cid)
        out = frozenset(ids)
        self._fsg_cache[a2f_id] = out
        return out

    def fsg_bits(self, a2f_id: int) -> int:
        """``fsgIds`` as an int bitmask (memoised) — the A2F/bitset boundary."""
        cached = self._bits_cache.get(a2f_id)
        if cached is None:
            count("a2f.bits_cache.miss")
            # Local import: repro.core pulls in the index package at init.
            from repro.core.candidates import bits_of

            cached = bits_of(self.fsg_ids(a2f_id))
            self._bits_cache[a2f_id] = cached
        else:
            count("a2f.bits_cache.hit")
        return cached

    def support(self, a2f_id: int) -> int:
        return len(self.fsg_ids(a2f_id))

    def arena_payload(self) -> Dict[str, object]:
        """The lookup-table dict the shared-memory arena serializes.

        Codes, sizes and fully materialised FSG bitmask blobs in ``a2fId``
        order — enough for an attached consumer to answer ``lookup`` and
        ``fsg_bits`` probes without replaying the delta-list reconstruction
        walk (see :class:`repro.index.arena.ArenaIndexTable`).
        """
        # Local import: repro.core pulls in the index package at init.
        from repro.core.candidates import mask_to_bytes

        return {
            "beta": self.beta,
            "codes": [v.code for v in self._vertices],
            "sizes": [v.size for v in self._vertices],
            "bits": [
                mask_to_bytes(self.fsg_bits(i))
                for i in range(len(self._vertices))
            ],
        }

    # ------------------------------------------------------------------
    # components / accounting
    # ------------------------------------------------------------------
    def mf_vertices(self) -> List[A2FVertex]:
        """Memory-resident component: fragments of size ≤ β."""
        return [v for v in self._vertices if v.size <= self.beta]

    def df_vertices(self) -> List[A2FVertex]:
        """Disk-resident component: fragments of size > β."""
        return [v for v in self._vertices if v.size > self.beta]

    def spill_df_index(self, directory: Path) -> List[Path]:
        """Serialise each DF cluster to its own file (disk residency).

        Returns the written paths; used by the index-size benchmarks to
        account the MF (memory) and DF (disk) components separately.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for cluster in self.clusters:
            payload = {
                "cluster_id": cluster.cluster_id,
                "roots": cluster.roots,
                "vertices": [
                    (v.a2f_id, v.code, v.size, v.del_ids, v.children, v.parents)
                    for v in (self._vertices[i] for i in cluster.vertex_ids)
                ],
            }
            path = directory / f"cluster_{cluster.cluster_id:05d}.pkl"
            with path.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            paths.append(path)
        return paths
