"""Action-aware indexes (A2F and A2I) plus construction and persistence."""

from repro.index.a2f import A2FIndex, A2FVertex, FragmentCluster
from repro.index.a2i import A2IEntry, A2IIndex
from repro.index.builder import ActionAwareIndexes, build_indexes, database_fingerprint
from repro.index.maintenance import AppendReport, IncrementalIndexMaintainer
from repro.index.sharded import merge_shard_catalogs, mine_sharded, partition_ids
from repro.index.persistence import (
    a2f_size_bytes,
    a2i_size_bytes,
    load_indexes,
    load_indexes_arena,
    pickled_size_bytes,
    prague_index_size_bytes,
    save_indexes,
    save_indexes_arena,
)

__all__ = [
    "A2FIndex",
    "A2FVertex",
    "FragmentCluster",
    "A2IIndex",
    "A2IEntry",
    "ActionAwareIndexes",
    "build_indexes",
    "database_fingerprint",
    "a2f_size_bytes",
    "a2i_size_bytes",
    "prague_index_size_bytes",
    "pickled_size_bytes",
    "save_indexes",
    "load_indexes",
    "save_indexes_arena",
    "load_indexes_arena",
    "IncrementalIndexMaintainer",
    "AppendReport",
    "mine_sharded",
    "merge_shard_catalogs",
    "partition_ids",
]
