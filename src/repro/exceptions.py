"""Exception hierarchy for the PRAGUE reproduction library."""


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Invalid graph manipulation (missing node, duplicate edge, ...)."""


class MiningError(ReproError):
    """Frequent-fragment or DIF mining failed or was misconfigured."""


class IndexError_(ReproError):
    """Action-aware index construction or probing failed."""


class SpigError(ReproError):
    """SPIG construction or maintenance failed."""


class QueryError(ReproError):
    """Invalid visual query manipulation (disconnecting deletion, ...)."""


class SessionError(ReproError):
    """Invalid action sequence in a formulation session."""
