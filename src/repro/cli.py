"""Command-line interface: datasets, indexes, queries and scripted sessions.

The paper's system is a GUI; this CLI is its headless counterpart for
scripting and inspection::

    python -m repro generate --kind aids --size 500 --out db.lg
    python -m repro stats db.lg
    python -m repro index db.lg --alpha 0.1 --beta 4 --out db.idx
    python -m repro query db.lg db.idx --query q.lg --sigma 2 --dot out.dot
    python -m repro session db.lg db.idx --script session.txt

The ``session`` subcommand replays a formulation script, one GUI action per
line, printing the Figure 3-style status after every step::

    node a C        # drop a node labelled C
    node b O
    edge a b        # draw an edge (optionally: edge a b <edge-label>)
    delete 1        # delete edge e1
    relabel a N     # relabel node a
    similar         # opt into similarity search (the dialogue's SimQuery)
    run             # press Run
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.config import MiningParams
from repro.core import PragueEngine
from repro.core.statistics import collect_statistics
from repro.datasets import generate_aids_like, generate_graphgen_like
from repro.exceptions import ReproError
from repro.graph.serialization import read_database, write_database
from repro.index import (
    build_indexes,
    load_indexes,
    prague_index_size_bytes,
    save_indexes,
)
from repro.render import graph_to_dot, graph_to_text, results_to_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PRAGUE (ICDE 2012) reproduction — blended visual "
                    "subgraph querying",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--kind", choices=("aids", "graphgen"), default="aids")
    gen.add_argument("--size", type=int, default=500)
    gen.add_argument("--seed", type=int, default=2012)
    gen.add_argument("--workers", type=int, default=1,
                     help="generate in parallel chunks (chunked corpora are "
                          "a different seeded family than the serial "
                          "generators; output is worker-count independent)")
    gen.add_argument("--out", type=Path, required=True)

    stats = sub.add_parser("stats", help="summarise a dataset file")
    stats.add_argument("database", type=Path)

    index = sub.add_parser("index", help="mine and build the A2F/A2I indexes")
    index.add_argument("database", type=Path)
    index.add_argument("--alpha", type=float, default=0.1,
                       help="minimum support threshold (0 < alpha < 1)")
    index.add_argument("--beta", type=int, default=4,
                       help="MF/DF fragment size threshold")
    index.add_argument("--max-edges", type=int, default=8,
                       help="largest mined fragment size")
    index.add_argument("--workers", type=int, default=None,
                       help="parallel build workers (default: "
                            "REPRO_BUILD_WORKERS; 1 = serial mining)")
    index.add_argument("--shards", type=int, default=None,
                       help="database partitions for a sharded build "
                            "(default: REPRO_BUILD_SHARDS; 0 = one per worker)")
    index.add_argument("--out", type=Path, required=True)

    query = sub.add_parser("query", help="answer one query graph")
    query.add_argument("database", type=Path)
    query.add_argument("indexes", type=Path)
    query.add_argument("--query", type=Path, required=True,
                       help="gSpan-format file whose first graph is the query")
    query.add_argument("--sigma", type=int, default=0,
                       help="subgraph distance budget (0 = exact only)")
    query.add_argument("--dot", type=Path, default=None,
                       help="write the query graph as Graphviz DOT")

    session = sub.add_parser("session", help="replay a formulation script")
    session.add_argument("database", type=Path)
    session.add_argument("indexes", type=Path)
    session.add_argument("--script", type=Path, required=True)
    session.add_argument("--sigma", type=int, default=3)

    report = sub.add_parser(
        "report", help="render the combined evaluation report"
    )
    report.add_argument(
        "--results", type=Path, default=None,
        help="results directory (default: benchmarks/results in the repo)",
    )

    smoke = sub.add_parser(
        "bench-smoke",
        help="fast hot-path microbenchmark (CI guard for the perf layer)",
    )
    smoke.add_argument("--size", type=int, default=80,
                       help="corpus size for the smoke run")
    smoke.add_argument("--seed", type=int, default=2012)

    oracle = sub.add_parser(
        "oracle-smoke",
        help="differential-oracle sweep: fuzzed sessions replayed across "
             "the hot-path config matrix plus naive/fresh-replay oracles",
    )
    oracle.add_argument("--sessions", type=int, default=50,
                        help="number of seeded fuzzer sessions to check")
    oracle.add_argument("--seed", type=int, default=0,
                        help="base seed (session i uses seed base+i)")
    oracle.add_argument("--sigma", type=int, default=None,
                        help="similarity budget (default: varied per seed)")
    oracle.add_argument("--out", type=Path, default=None,
                        help="write the sweep manifest as JSON")

    tracecmd = sub.add_parser(
        "trace",
        help="replay a session with tracing on: span tree, metrics and the "
             "per-action SRT ledger",
    )
    tracecmd.add_argument(
        "--trace", type=Path, default=None,
        help="JSON oracle trace (repro.oracle.trace.save_trace); default: "
             "generate one with the session fuzzer",
    )
    tracecmd.add_argument("--seed", type=int, default=0,
                          help="fuzzer seed when no --trace file is given")
    tracecmd.add_argument("--sigma", type=int, default=None,
                          help="similarity budget for fuzzed traces "
                               "(default: varied per seed)")
    tracecmd.add_argument(
        "--latency", type=float, default=None,
        help="per-gesture GUI latency in seconds for the SRT ledger "
             "(default: the paper's 2 s lower bound)",
    )
    tracecmd.add_argument("--min-ms", type=float, default=0.0,
                          help="prune spans shorter than this many ms")
    tracecmd.add_argument("--json", type=Path, default=None,
                          help="also write the full report as JSON")
    tracecmd.add_argument(
        "--diff", type=Path, nargs=2, metavar=("A", "B"), default=None,
        help="instead of replaying, print per-site percentile and counter "
             "deltas between two --json trace reports (before -> after)",
    )

    profilecmd = sub.add_parser(
        "profile",
        help="replay a session under the statistical sampler and export "
             "collapsed stacks + a self-contained flamegraph",
    )
    profilecmd.add_argument(
        "--trace", type=Path, default=None,
        help="JSON oracle trace to replay (default: generate one with the "
             "session fuzzer)",
    )
    profilecmd.add_argument("--seed", type=int, default=0,
                            help="fuzzer seed when no --trace file is given")
    profilecmd.add_argument("--sigma", type=int, default=None,
                            help="similarity budget for fuzzed traces")
    profilecmd.add_argument("--hz", type=float, default=100.0,
                            help="sampler frequency (overrides "
                                 "REPRO_PROFILE_HZ for the run)")
    profilecmd.add_argument("--mem", type=int, default=0, metavar="N",
                            help="also bracket actions with tracemalloc and "
                                 "keep the top-N allocating lines")
    profilecmd.add_argument("--seconds", type=float, default=1.0,
                            help="replay the session repeatedly until this "
                                 "much wall time has been sampled")
    profilecmd.add_argument("--top", type=int, default=10,
                            help="hottest frames to print")
    profilecmd.add_argument("--out", type=Path, default=Path("profile"),
                            help="output directory for profile.folded, "
                                 "profile.json and flamegraph.html")

    top = sub.add_parser(
        "top",
        help="live terminal view of an exporting session "
             "(REPRO_OBS_EXPORT): per-action percentiles, cache hit "
             "rates, pool utilization, recent events",
    )
    top.add_argument(
        "--dir", type=Path, default=None,
        help="export directory to tail (default: $REPRO_OBS_EXPORT)",
    )
    top.add_argument(
        "--server", default=None, metavar="URL",
        help="poll a running service's /obs instead of tailing a "
             "directory (e.g. http://127.0.0.1:8765)",
    )
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period in seconds")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no screen clear)")
    top.add_argument("--frames", type=int, default=0,
                     help="stop after N refreshes (0 = until interrupted)")
    top.add_argument("--events", type=int, default=8,
                     help="how many recent events to show")

    perf = sub.add_parser(
        "perf",
        help="bounded perf-regression suite: append a machine-normalized "
             "record to the trajectory, or --check against the last record",
    )
    perf.add_argument("--label", default="checkpoint",
                      help="label stored on the appended record")
    perf.add_argument("--seed", type=int, default=2012)
    perf.add_argument("--threshold", type=float, default=None,
                      help="regression threshold in percent (default: 20)")
    perf.add_argument(
        "--trajectory", type=Path, default=None,
        help="trajectory file (default: benchmarks/results/trajectory.json)",
    )
    perf.add_argument(
        "--check", action="store_true",
        help="compare against the last record instead of appending; exit 1 "
             "on a regression, 2 when no baseline exists",
    )
    perf.add_argument(
        "--explain", nargs=2, metavar=("A", "B"), default=None,
        help="instead of running the suite, diff the sampled profiles "
             "attached to two trajectory entries (by 1-based index or "
             "label) and name the frames responsible for the delta",
    )
    perf.add_argument(
        "--no-profile", action="store_true",
        help="skip attaching a sampled profile to the appended record",
    )

    postmortem = sub.add_parser(
        "postmortem",
        help="render a flight-recorder post-mortem bundle as a timeline, "
             "or fetch one request's correlated bundle from a server",
    )
    postmortem.add_argument("bundle", type=Path, nargs="?", default=None,
                            help="JSON bundle written by the recorder")
    postmortem.add_argument(
        "--server", default=None, metavar="URL",
        help="fetch from a running service instead of a file "
             "(requires --request)",
    )
    postmortem.add_argument(
        "--request", dest="request_id", default=None, metavar="ID",
        help="request id to fetch from --server (the X-Prague-Request "
             "value echoed on the original response)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-session HTTP service (one shared index plane, "
             "one engine per session id)",
    )
    serve.add_argument("database", type=Path, nargs="?", default=None,
                       help="dataset file; omitted = synthetic corpus")
    serve.add_argument("indexes", type=Path, nargs="?", default=None,
                       help="index file (default: mine at startup)")
    serve.add_argument("--synthetic", type=int, default=120,
                       help="graphs in the synthetic corpus when no dataset "
                            "file is given")
    serve.add_argument("--seed", type=int, default=2012)
    serve.add_argument("--alpha", type=float, default=0.1,
                       help="minimum support when mining at startup")
    serve.add_argument("--beta", type=int, default=4)
    serve.add_argument("--max-edges", type=int, default=5)
    serve.add_argument("--build-workers", type=int, default=None,
                       help="parallel workers for the startup index build "
                            "(default: REPRO_BUILD_WORKERS; 1 = serial)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="default: $REPRO_SERVICE_PORT or 8765 "
                            "(0 = ephemeral)")
    serve.add_argument("--sigma", type=int, default=3,
                       help="similarity budget for new sessions")
    serve.add_argument("--max-sessions", type=int, default=None,
                       help="admission cap (default: "
                            "$REPRO_SERVICE_MAX_SESSIONS)")
    serve.add_argument("--ttl", type=float, default=None,
                       help="idle-session eviction in seconds (default: "
                            "$REPRO_SERVICE_TTL; 0 disables)")
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args) -> int:
    if args.workers > 1:
        from repro.datasets.scale import generate_scaled

        db = generate_scaled(
            args.kind, args.size, seed=args.seed, workers=args.workers
        )
    elif args.kind == "aids":
        db = generate_aids_like(args.size, seed=args.seed)
    else:
        db = generate_graphgen_like(args.size, seed=args.seed)
    write_database(db, args.out)
    stats = db.stats()
    print(f"wrote {args.out}: {stats['graphs']:.0f} graphs, "
          f"avg {stats['avg_nodes']:.1f} nodes / {stats['avg_edges']:.1f} edges")
    return 0


def _cmd_stats(args) -> int:
    db = read_database(args.database)
    stats = db.stats()
    print(f"graphs     : {stats['graphs']:.0f}")
    print(f"avg nodes  : {stats['avg_nodes']:.2f}")
    print(f"avg edges  : {stats['avg_edges']:.2f}")
    print(f"max nodes  : {stats['max_nodes']:.0f}")
    print(f"max edges  : {stats['max_edges']:.0f}")
    print(f"node labels: {', '.join(db.node_label_universe())}")
    return 0


def _index_progress(kind: str, fields: dict) -> None:
    """Render sharded-build progress events (mirrors the flight recorder)."""
    if kind == "index.build.start":
        print(f"  sharded build: {fields['db_size']} graphs, "
              f"{fields['shards']} shards x {fields['workers']} workers")
    elif kind == "index.build.shard":
        print(f"  shard {fields['shard'] + 1}/{fields['shards']} mined "
              f"({fields['graphs']} graphs, {fields['fragments']} candidates)")
    elif kind == "index.build.merge":
        print(f"  merged {fields['candidates']} candidates -> "
              f"{fields['frequent']} frequent")


def _cmd_index(args) -> int:
    db = read_database(args.database)
    params = MiningParams(args.alpha, args.beta, args.max_edges)
    indexes = build_indexes(
        db, params,
        workers=args.workers, shards=args.shards,
        progress=_index_progress,
    )
    written = save_indexes(indexes, args.out)
    print(f"mined {len(indexes.frequent)} frequent fragments and "
          f"{len(indexes.difs)} DIFs "
          f"(alpha={args.alpha}, support >= {indexes.min_support_abs})")
    print(f"wrote {args.out}: {written} bytes on disk, "
          f"{prague_index_size_bytes(indexes) / 1e6:.2f} MB index footprint")
    return 0


def _cmd_query(args) -> int:
    db = read_database(args.database)
    indexes = load_indexes(args.indexes)
    queries = read_database(args.query)
    query_graph = queries[0]
    print(graph_to_text(query_graph, title="query:"))
    engine = PragueEngine(db, indexes, sigma=max(args.sigma, 0))
    for node in query_graph.nodes():
        engine.add_node(node, query_graph.label(node))
    from repro.testing import connected_order

    for u, v in connected_order(query_graph):
        report = engine.add_edge(u, v, query_graph.edge_label(u, v))
        size = report.rq_size if report.rq_size is not None \
            else report.candidate_count
        print(f"  e{report.edge_id}: {report.status.value} "
              f"(candidates: {size})")
    result = engine.run()
    print(results_to_text(result.results, db))
    if args.dot is not None:
        args.dot.write_text(graph_to_dot(query_graph, name="query"))
        print(f"wrote {args.dot}")
    return 0


def _cmd_session(args) -> int:
    db = read_database(args.database)
    indexes = load_indexes(args.indexes)
    engine = PragueEngine(db, indexes, sigma=args.sigma)
    node_of = {}
    for lineno, raw in enumerate(args.script.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        op, operands = parts[0], parts[1:]
        try:
            if op == "node" and len(operands) == 2:
                node_of[operands[0]] = engine.add_node(operands[0], operands[1])
                print(f"{lineno:3d} node {operands[0]}:{operands[1]}")
            elif op == "edge" and len(operands) in (2, 3):
                label = operands[2] if len(operands) == 3 else None
                report = engine.add_edge(operands[0], operands[1], label)
                print(f"{lineno:3d} edge e{report.edge_id}: "
                      f"{report.status.value} |Rq|={report.rq_size}")
            elif op == "delete" and len(operands) <= 1:
                edge_id = int(operands[0]) if operands else None
                report = engine.delete_edge(edge_id)
                print(f"{lineno:3d} deleted e{report.edge_id}: "
                      f"{report.status.value}")
            elif op == "relabel" and len(operands) == 2:
                engine.relabel_node(operands[0], operands[1])
                print(f"{lineno:3d} relabeled {operands[0]} -> {operands[1]}")
            elif op == "similar" and not operands:
                report = engine.enable_similarity()
                print(f"{lineno:3d} similarity search on "
                      f"({report.candidate_count} candidates)")
            elif op == "run" and not operands:
                result = engine.run()
                print(f"{lineno:3d} run "
                      f"({1000 * result.processing_seconds:.2f} ms):")
                print(results_to_text(result.results, db))
            else:
                print(f"{lineno:3d} !! unknown action: {line!r}",
                      file=sys.stderr)
                return 2
        except ReproError as exc:
            print(f"{lineno:3d} !! {exc}", file=sys.stderr)
            return 1
    print("\nsession statistics:")
    for line in collect_statistics(engine).summary_lines():
        print(f"  {line}")
    return 0


def _cmd_bench_smoke(args) -> int:
    """Toy-scale run of the hot-path microbenchmarks (correctness + timing).

    Speedup floors are only asserted by the full ``bench_micro_hotpaths``
    suite — at smoke scale the constant overheads dominate; here the value is
    that every optimised path still *agrees* with its reference (the bench
    functions assert identical answers internally).
    """
    from repro.bench.harness import format_table
    from repro.bench.micro import run_micro_hotpaths
    from repro.datasets.aids import generate_aids_like

    db = generate_aids_like(max(args.size, 20), seed=args.seed)
    data = run_micro_hotpaths(db, smoke=True, seed=args.seed)
    rows = [
        [name, f"{section['speedup']:.2f}x"]
        for name, section in (
            ("canonical code (memoized)", data["canonical"]),
            ("containment scan (compiled)", data["scan"]),
            ("candidate intersection (bitset)", data["intersection"]),
        )
    ]
    print(format_table(
        f"bench-smoke: hot paths agree with reference, |D|={len(db)}",
        ["hot path", "speedup"],
        rows,
    ))
    print("bench-smoke OK")
    return 0


def _cmd_oracle_smoke(args) -> int:
    """Bounded seeded sweep of the differential oracle (the CI guard).

    Zero divergences across the full configuration matrix and both
    independent oracles is the pass condition; any divergence is shrunk to a
    minimal trace and printed as a paste-able regression test.
    """
    import json

    from repro.oracle import CONFIG_MATRIX, run_sweep

    report = run_sweep(
        sessions=args.sessions,
        base_seed=args.seed,
        sigma=args.sigma,
        progress=lambda message: print(f"  {message}"),
    )
    print(
        f"oracle-smoke: {report.sessions} sessions, "
        f"{report.total_steps} actions, {report.total_replays} replays "
        f"across {len(CONFIG_MATRIX)} configs "
        f"+ naive-baseline + fresh-replay oracles"
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report.manifest(), indent=2) + "\n")
        print(f"wrote {args.out}")
    if not report.ok:
        for result in report.failures:
            print(f"\nseed {result.trace.seed} diverged:", file=sys.stderr)
            for divergence in result.divergences:
                print(divergence.describe(), file=sys.stderr)
            if result.reproducer:
                print("\n--- minimal reproducer "
                      "(paste into tests/oracle/) ---", file=sys.stderr)
                print(result.reproducer, file=sys.stderr)
        return 1
    print("oracle-smoke OK (divergence-free)")
    return 0


def _cmd_trace(args) -> int:
    """Replay one session with tracing on and print where the time went.

    The SRT ledger's ``total processing`` row is reconciled against the
    end-to-end wall time of the replay loop: the difference is replay
    bookkeeping (observation glue, span plumbing), not engine work —
    ``docs/PERFORMANCE.md`` ("Reading a trace") walks through an example.
    """
    import json
    import time

    from repro import obs
    from repro.config import DEFAULT_EDGE_LATENCY_SECONDS
    from repro.core.prague import RunReport, StepReport
    from repro.oracle.corpus import corpus_for
    from repro.oracle.fuzzer import generate_trace
    from repro.oracle.trace import apply_action, load_trace

    if args.diff is not None:
        path_a, path_b = args.diff
        reports = [
            obs.open_envelope(
                json.loads(path.read_text()), expect_kind="trace-report"
            )
            for path in (path_a, path_b)
        ]
        diff = obs.diff_trace_reports(*reports)
        print(obs.render_report_diff(
            diff, label_a=str(path_a), label_b=str(path_b)
        ))
        return 0

    if args.trace is not None:
        trace = load_trace(args.trace)
        source = str(args.trace)
    else:
        trace = generate_trace(seed=args.seed, sigma=args.sigma)
        source = f"fuzzer seed {args.seed}"
    latency = (
        args.latency if args.latency is not None
        else DEFAULT_EDGE_LATENCY_SECONDS
    )
    corpus = corpus_for(trace.spec)
    engine = PragueEngine(corpus.db, corpus.indexes, sigma=trace.sigma)

    def step_event(report: StepReport):
        label = report.action.value
        if report.edge_id is not None:
            label += f" e{report.edge_id}"
        return (label, report.processing_seconds, latency)

    events = []
    with obs.trace() as tracer:
        wall_start = time.perf_counter()
        for action in trace.actions:
            result = apply_action(engine, action)
            if isinstance(result, StepReport):
                events.append(step_event(result))
            elif isinstance(result, list) and result and \
                    isinstance(result[0], StepReport):
                events.extend(step_event(r) for r in result)
            elif isinstance(result, RunReport):
                # Run offers no drawing gap; a non-terminal Run (the user
                # kept drawing afterwards) still contributes a ledger row.
                events.append(("run", result.processing_seconds, 0.0))
        wall_seconds = time.perf_counter() - wall_start
        snapshot = obs.full_snapshot()

    run_seconds = 0.0
    if events and events[-1][0] == "run":
        run_seconds = events.pop()[1]
    ledger = obs.build_ledger(events, run_seconds=run_seconds)

    print(f"trace: {source} — {len(trace.actions)} actions, "
          f"sigma={trace.sigma}, corpus seed={trace.spec.seed} "
          f"({trace.spec.num_graphs} graphs)")
    print(f"\nspans ({tracer.span_count()} recorded):")
    print(obs.render_span_tree(tracer.roots, min_seconds=args.min_ms / 1000))
    print("\nmetrics:")
    print(obs.render_metrics(snapshot))
    print("\nlatency histograms (always-on):")
    print(obs.render_histograms(snapshot.get("histograms", {})))
    print(f"\nSRT ledger (latency {latency:.2f} s per gesture):")
    print(obs.render_ledger(ledger))
    covered = 100 * ledger.total_processing / wall_seconds if wall_seconds else 0
    print(f"\nend-to-end wall time   {1000 * wall_seconds:9.2f} ms "
          f"(ledger covers {covered:.1f}%; the rest is replay bookkeeping)")
    if args.json is not None:
        payload = obs.envelope("trace-report", obs.report_to_dict(
            tracer.roots, snapshot, ledger,
            wall_seconds=wall_seconds, source=source,
            actions=len(trace.actions), sigma=trace.sigma,
        ))
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_perf(args) -> int:
    """Run the bounded perf suite and maintain the regression trajectory.

    Default mode appends a machine-normalized record to the trajectory file
    (creating it with a first record when absent); ``--check`` instead
    compares the fresh run against the *last* checked-in record and fails on
    any metric more than the threshold above it — the CI gate.
    """
    from repro.bench import ledger as perf_ledger
    from repro.bench.harness import format_table

    threshold = (
        args.threshold if args.threshold is not None
        else perf_ledger.REGRESSION_THRESHOLD_PCT
    )
    path = (
        args.trajectory if args.trajectory is not None
        else perf_ledger.trajectory_path()
    )
    if args.explain is not None:
        return _perf_explain(path, args.explain)
    records = perf_ledger.load_trajectory(path)
    baseline = records[-1] if records else None
    calibration = perf_ledger.calibrate()
    metrics = perf_ledger.run_perf_suite(seed=args.seed)
    record = perf_ledger.make_record(metrics, calibration, label=args.label)
    comparisons = (
        perf_ledger.compare_records(baseline, record, threshold)
        if baseline is not None else []
    )
    by_name = {c["metric"]: c for c in comparisons}

    rows = []
    for name in sorted(metrics):
        comp = by_name.get(name)
        verdict = "-" if comp is None else (
            f"{comp['change_pct']:+.1f}% "
            + ("REGRESSED" if comp["regression"] else "ok")
        )
        # Dimensionless metrics (e.g. service.slo_attainment) are recorded
        # raw but never normalized — raw is already machine-independent.
        normalized = record["normalized"].get(name)
        rows.append([
            name,
            f"{1000 * metrics[name]:.3f} ms" if name.endswith("_s")
            else f"{metrics[name]:.4f}",
            f"{normalized:.4f}" if normalized is not None else "-",
            verdict,
        ])
    print(format_table(
        f"perf suite (calibration {1000 * calibration:.3f} ms, baseline: "
        f"{baseline['label'] if baseline else 'none'})",
        ["metric", "raw", "normalized", "vs baseline"],
        rows,
    ))

    if args.check:
        if baseline is None:
            print(f"perf --check: no baseline record in {path}",
                  file=sys.stderr)
            return 2
        regressions = [c for c in comparisons if c["regression"]]
        if regressions:
            for c in regressions:
                print(f"perf regression: {c['metric']} "
                      f"{c['change_pct']:+.1f}% (threshold {threshold:g}%)",
                      file=sys.stderr)
            return 1
        print(f"perf --check OK "
              f"({len(comparisons)} metrics within {threshold:g}%)")
        return 0
    if not args.no_profile:
        # Attach a compact sampled profile so a future --explain can name
        # the frames behind whatever regression this record ends up in.
        record["profile"] = perf_ledger.collect_profile(seed=args.seed)
    perf_ledger.append_record(path, record)
    print(f"appended record {len(records) + 1} ({args.label!r}) to {path}")
    return 0


def _lookup_trajectory_record(records, token: str):
    """A trajectory record by 1-based index (negatives count from the end)
    or by label (last match wins); ``None`` when nothing matches."""
    try:
        index = int(token)
    except ValueError:
        matches = [r for r in records if r.get("label") == token]
        return matches[-1] if matches else None
    if index == 0 or abs(index) > len(records):
        return None
    return records[index - 1] if index > 0 else records[index]


def _perf_explain(path: Path, tokens) -> int:
    """``repro perf --explain A B``: name the frames behind a perf delta."""
    from repro.bench import ledger as perf_ledger
    from repro.bench.harness import format_table

    records = perf_ledger.load_trajectory(path)
    if not records:
        print(f"perf --explain: no trajectory at {path}", file=sys.stderr)
        return 2
    resolved = []
    for token in tokens:
        record = _lookup_trajectory_record(records, token)
        if record is None:
            print(f"perf --explain: no trajectory entry {token!r} "
                  f"(have 1..{len(records)} and labels "
                  f"{sorted({r.get('label', '?') for r in records})})",
                  file=sys.stderr)
            return 2
        resolved.append(record)
    record_a, record_b = resolved
    profile_a = record_a.get("profile")
    profile_b = record_b.get("profile")
    for token, profile in zip(tokens, (profile_a, profile_b)):
        if not profile or not profile.get("stacks"):
            print(f"perf --explain: entry {token!r} carries no sampled "
                  "profile — append records with a current checkout "
                  "(`python -m repro perf`) to attach one",
                  file=sys.stderr)
            return 2
    rows = perf_ledger.explain_profiles(profile_a, profile_b)
    label_a = record_a.get("label", tokens[0])
    label_b = record_b.get("label", tokens[1])
    table_rows = []
    for row in rows:
        if not row["in_a"]:
            mark = "(new)"
        elif not row["in_b"]:
            mark = "(gone)"
        else:
            mark = ""
        table_rows.append([
            f"{row['frame']} {mark}".strip(),
            f"{1000 * row['self_a_s']:.2f} ms",
            f"{1000 * row['self_b_s']:.2f} ms",
            f"{1000 * row['delta_s']:+.2f} ms",
        ])
    print(format_table(
        f"perf --explain: {label_a} -> {label_b} "
        f"(self time per frame, sampled at "
        f"{profile_b.get('hz', 0):g} Hz)",
        ["frame", "self A", "self B", "delta"],
        table_rows,
    ))
    slowed = [r for r in rows if r["delta_s"] > 0]
    if slowed:
        worst = slowed[0]
        print(f"\nbiggest slowdown: {worst['frame']} "
              f"({1000 * worst['delta_s']:+.2f} ms self time)")
    else:
        print("\nno frame got slower between these entries")
    return 0


def _read_snapshot_bundle(directory: Path):
    """The export directory's current ``snapshot.json``, or ``None``.

    Reads are tolerant by design: the exporting session owns the files and
    rewrites them atomically, but the directory may not exist yet, or the
    tail may race the very first write — a missing/garbled snapshot is
    "waiting", never a crash.
    """
    import json

    from repro.obs import open_envelope

    path = directory / "snapshot.json"
    try:
        return open_envelope(
            json.loads(path.read_text()), expect_kind="metrics-snapshot"
        )
    except (OSError, ValueError):
        return None


def _tail_events(directory: Path, limit: int):
    """The last ``limit`` parseable events of ``events.jsonl`` (oldest first)."""
    import json

    path = directory / "events.jsonl"
    try:
        with open(path, "rb") as handle:
            handle.seek(0, 2)
            handle.seek(max(0, handle.tell() - 16384))
            raw_lines = handle.read().decode("utf-8", "replace").splitlines()
    except OSError:
        return []
    events = []
    for line in raw_lines[-limit - 1:]:  # first line may be a partial read
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events[-limit:]


def _parse_server(url: str):
    """``(host, port)`` from a ``--server`` URL (port defaults to config)."""
    from urllib.parse import urlsplit

    from repro.config import service_port

    parts = urlsplit(url if "//" in url else f"http://{url}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port if parts.port is not None else service_port()
    return host, port


def _cmd_top(args) -> int:
    """Live terminal view of a session: tail an export directory, or (with
    ``--server``) poll a running service's ``/obs`` over HTTP.

    Both modes share the render loop; only the fetch closure differs.  The
    server mode reshapes the ``/obs`` payload into the same bundle the
    directory exporter writes, plus the slowest-requests tail only the
    service knows about.
    """
    import time

    from repro import obs
    from repro.config import obs_export_dir

    if args.server is not None:
        from repro.service.client import ServiceClient

        host, port = _parse_server(args.server)
        client = ServiceClient(host=host, port=port)
        target = args.server

        def fetch():
            try:
                data = client.obs()
            except (OSError, ValueError, ReproError):
                client.close()  # poison the keep-alive; retry fresh
                return None, [], ()
            # Tolerate payloads from a server one PR behind: every newer
            # section degrades to its zero/"n/a" form rather than a
            # KeyError mid-frame.
            if not isinstance(data, dict):
                return None, [], ()
            snapshot = data.get("snapshot")
            bundle = {
                "pid": data.get("pid"),
                "sequence": frames + 1,
                "events_emitted": len(data.get("events") or ()),
                "metrics": snapshot if isinstance(snapshot, dict) else {},
            }
            profile = data.get("profile")
            if isinstance(profile, dict):
                bundle["profile"] = profile
            requests_section = data.get("requests")
            if isinstance(requests_section, dict):
                requests = requests_section.get("slowest") or ()
            else:
                requests = None  # old server: no requests section at all
            events = data.get("events") or ()
            return bundle, events[-args.events:], requests
    else:
        directory = args.dir
        if directory is None:
            from_env = obs_export_dir()
            if from_env is None:
                print(
                    "repro top: no target — pass --dir, --server, or set "
                    "REPRO_OBS_EXPORT on the session you want to watch "
                    "(see docs/CONFIGURATION.md)",
                    file=sys.stderr,
                )
                return 2
            directory = Path(from_env)
        target = str(directory)

        def fetch():
            return (
                _read_snapshot_bundle(directory),
                _tail_events(directory, args.events),
                (),
            )

    frames = 0
    try:
        while True:
            bundle, events, requests = fetch()
            frame = obs.render_top(
                bundle, events, directory=target, requests=requests
            )
            if frames and not args.once:
                print("\x1b[2J\x1b[H", end="")  # clear + home between frames
            print(frame)
            frames += 1
            if args.once or (args.frames and frames >= args.frames):
                return 0
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _cmd_postmortem(args) -> int:
    """Render a post-mortem: a recorder bundle file, or (with ``--server``
    and ``--request``) one request's correlated telemetry from a service."""
    import json

    from repro.obs import (
        open_envelope,
        render_postmortem,
        render_request_bundle,
    )

    if args.server is not None or args.request_id is not None:
        if args.server is None or args.request_id is None:
            print(
                "repro postmortem: --server and --request go together "
                "(a request id is only resolvable against the server "
                "that minted it)",
                file=sys.stderr,
            )
            return 2
        from repro.service.client import ServiceClient

        host, port = _parse_server(args.server)
        try:
            with ServiceClient(host=host, port=port) as client:
                data = client.request_bundle(args.request_id)
        except (OSError, ValueError, ReproError) as exc:
            print(f"repro postmortem: could not fetch request "
                  f"{args.request_id!r} from {args.server}: {exc} "
                  "(server down, or an older server without "
                  "/v1/requests support?)",
                  file=sys.stderr)
            return 1
        if not isinstance(data, dict):
            print(f"repro postmortem: malformed bundle from {args.server}",
                  file=sys.stderr)
            return 1
        print(render_request_bundle(data))
        return 0
    if args.bundle is None:
        print(
            "repro postmortem: pass a bundle file, or --server URL "
            "--request ID to fetch a live request's bundle",
            file=sys.stderr,
        )
        return 2
    bundle = open_envelope(
        json.loads(args.bundle.read_text()), expect_kind="postmortem"
    )
    print(render_postmortem(bundle))
    return 0


def _cmd_profile(args) -> int:
    """Replay a session under the statistical sampler and export profiles.

    The headless twin of attaching the sampler to a live service: replays a
    seeded (or saved) formulation session — fresh engine per pass — until
    ``--seconds`` of wall time has been sampled, then writes the collapsed
    stacks (``profile.folded``), the attributed profile with its summary
    (``profile.json``, a schema-v2 ``profile`` envelope) and a
    self-contained ``flamegraph.html`` into ``--out``.
    """
    import json
    import time

    from repro import obs
    from repro.obs.profiler import (
        PROFILER,
        folded_lines,
        render_flamegraph_html,
        top_frames,
    )
    from repro.oracle.corpus import corpus_for
    from repro.oracle.fuzzer import generate_trace
    from repro.oracle.trace import apply_action, load_trace

    if args.trace is not None:
        trace = load_trace(args.trace)
        source = str(args.trace)
    else:
        trace = generate_trace(seed=args.seed, sigma=args.sigma)
        source = f"fuzzer seed {args.seed}"
    corpus = corpus_for(trace.spec)

    PROFILER.reset()
    PROFILER.force(args.hz)
    if args.mem:
        PROFILER.force_mem(args.mem)
    start = time.perf_counter()
    replays = 0
    try:
        while True:
            engine = PragueEngine(
                corpus.db, corpus.indexes, sigma=trace.sigma
            )
            for action in trace.actions:
                apply_action(engine, action)
            replays += 1
            wall_seconds = time.perf_counter() - start
            if wall_seconds >= max(args.seconds, 0.0) or replays >= 1000:
                break
    finally:
        PROFILER.force(None)
        if args.mem:
            PROFILER.force_mem(None)

    profile = PROFILER.collect()
    stacks = PROFILER.stacks()
    PROFILER.reset()
    summary = obs.profile_summary(profile)

    print(f"profile: {source} — {len(trace.actions)} actions x "
          f"{replays} replays, {wall_seconds:.2f} s sampled at "
          f"{args.hz:g} Hz -> {profile['samples']} samples")
    if not stacks:
        print("(no samples — the session finished between sampler ticks; "
              "raise --hz or --seconds)", file=sys.stderr)
    hottest = top_frames(stacks, args.top)
    if hottest:
        print(f"\nhottest frames (self samples, top {len(hottest)}):")
        for frame, samples in hottest:
            print(f"  {samples:>6}  {frame}")
    if args.mem and profile.get("memory"):
        print("\nmemory brackets (tracemalloc, top allocating lines):")
        for site in sorted(profile["memory"]):
            stats = profile["memory"][site]
            print(f"  {site}: peak {stats.get('peak_bytes', 0)} bytes")
            for entry in stats.get("top", [])[:3]:
                print(f"    {entry.get('size_diff_bytes', 0):>+10} B  "
                      f"{entry.get('site', '?')}")

    args.out.mkdir(parents=True, exist_ok=True)
    folded_path = args.out / "profile.folded"
    folded_path.write_text("\n".join(folded_lines(stacks)) + "\n")
    json_path = args.out / "profile.json"
    json_path.write_text(json.dumps(obs.envelope("profile", {
        "source": source,
        "wall_seconds": wall_seconds,
        "replays": replays,
        "profile": profile,
        "summary": summary,
    }), indent=2, default=str) + "\n")
    html_path = args.out / "flamegraph.html"
    html_path.write_text(render_flamegraph_html(
        stacks, title=f"repro profile — {source}"
    ))
    print(f"\nwrote {folded_path}, {json_path}, {html_path}")
    return 0


def _cmd_serve(args) -> int:
    """Run the session service until SIGTERM/SIGINT (clean shutdown)."""
    from repro.core.plane import SharedPlane
    from repro.service import PragueService, SessionManager, serve_forever

    if args.database is not None:
        db = read_database(args.database)
        if args.indexes is not None:
            indexes = load_indexes(args.indexes)
        else:
            indexes = build_indexes(
                db, MiningParams(args.alpha, args.beta, args.max_edges),
                workers=args.build_workers, progress=_index_progress,
            )
    else:
        db = generate_aids_like(max(args.synthetic, 10), seed=args.seed)
        indexes = build_indexes(
            db, MiningParams(args.alpha, args.beta, args.max_edges),
            workers=args.build_workers, progress=_index_progress,
        )
    plane = SharedPlane(db, indexes)
    plane.warm()  # pay the arena build before the first Run, not during it
    manager = SessionManager(
        plane,
        max_sessions=args.max_sessions,
        ttl=args.ttl,
        sigma=args.sigma,
    )
    server = PragueService(manager, host=args.host, port=args.port)
    host, port = server.address
    print(
        f"serving PRAGUE sessions on http://{host}:{port} "
        f"({len(db)} graphs, cap {manager.max_sessions()} sessions, "
        f"ttl {manager.ttl():g}s)",
        flush=True,
    )
    serve_forever(server)
    print("server stopped")
    return 0


def _cmd_report(args) -> int:
    from repro.bench.harness import results_dir
    from repro.bench.report import render_report

    directory = args.results if args.results is not None else results_dir()
    print(render_report(directory))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "index": _cmd_index,
    "query": _cmd_query,
    "session": _cmd_session,
    "report": _cmd_report,
    "bench-smoke": _cmd_bench_smoke,
    "oracle-smoke": _cmd_oracle_smoke,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "perf": _cmd_perf,
    "profile": _cmd_profile,
    "postmortem": _cmd_postmortem,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
