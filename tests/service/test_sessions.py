"""SessionManager: admission, TTL eviction, isolation, serialization."""

import threading
import time

import pytest

from repro import obs
from repro.core import PragueEngine
from repro.service import (
    AdmissionError,
    SessionManager,
    UnknownSessionError,
)
from repro.service.sessions import SERVICE_OPS


class TestAdmission:
    def test_cap_rejects_with_admission_error(self, plane):
        manager = SessionManager(plane, max_sessions=2, ttl=0)
        manager.create()
        manager.create()
        with pytest.raises(AdmissionError, match="session cap"):
            manager.create()
        assert manager.stats()["rejected"] == 1

    def test_closing_reopens_a_slot(self, plane):
        manager = SessionManager(plane, max_sessions=1, ttl=0)
        first = manager.create()
        manager.close(first.sid)
        assert manager.create() is not None

    def test_admission_counters(self, plane):
        manager = SessionManager(plane, max_sessions=1, ttl=0)
        with obs.trace():
            manager.create()
            with pytest.raises(AdmissionError):
                manager.create()
            counters = obs.full_snapshot()["counters"]
        assert counters.get("service.sessions.created", 0) == 1
        assert counters.get("service.sessions.rejected", 0) == 1


class TestTtlEviction:
    def test_idle_session_is_evicted(self, plane):
        manager = SessionManager(plane, max_sessions=8, ttl=0.01)
        session = manager.create()
        time.sleep(0.05)
        with pytest.raises(UnknownSessionError):
            manager.get(session.sid)
        assert manager.stats()["evicted"] == 1

    def test_actions_rearm_the_clock(self, plane):
        manager = SessionManager(plane, max_sessions=8, ttl=0.2)
        session = manager.create()
        for _ in range(3):
            time.sleep(0.05)
            manager.act(session.sid, "add_node", ("n", "A"))
        # Idle time never exceeded the TTL, so the session survived well
        # past creation + TTL.
        assert manager.get(session.sid) is session

    def test_ttl_zero_disables_eviction(self, plane):
        manager = SessionManager(plane, max_sessions=8, ttl=0)
        session = manager.create()
        time.sleep(0.02)
        assert manager.evict_expired() == 0
        assert manager.get(session.sid) is session

    def test_eviction_frees_admission_slots(self, plane):
        manager = SessionManager(plane, max_sessions=1, ttl=0.01)
        manager.create()
        time.sleep(0.05)
        assert manager.create() is not None  # the expired one made room


class TestIsolation:
    def test_concurrent_sessions_do_not_cross_contaminate(self, plane):
        """Two interleaved sessions must answer exactly like two dedicated
        engines over the same (db, indexes)."""
        manager = SessionManager(plane, max_sessions=8, ttl=0, sigma=2)
        a = manager.create()
        b = manager.create()
        # Interleave the two formulations action by action.
        manager.act(a.sid, "add_node", ("x", "A"))
        manager.act(b.sid, "add_node", ("x", "B"))
        manager.act(a.sid, "add_node", ("y", "B"))
        manager.act(b.sid, "add_node", ("y", "C"))
        manager.act(a.sid, "add_edge", ("x", "y", None))
        manager.act(b.sid, "add_edge", ("x", "y", None))
        _, run_a = manager.act(a.sid, "run")
        _, run_b = manager.act(b.sid, "run")

        def reference(pairs):
            engine = PragueEngine(plane.db, plane.indexes, sigma=2)
            for node, label in pairs:
                engine.add_node(node, label)
            engine.add_edge("x", "y")
            return engine.run()

        ref_a = reference([("x", "A"), ("y", "B")])
        ref_b = reference([("x", "B"), ("y", "C")])
        assert run_a.results.exact_ids == ref_a.results.exact_ids
        assert run_b.results.exact_ids == ref_b.results.exact_ids
        assert a.engine.query.num_edges == 1
        assert b.engine.query.num_edges == 1

    def test_undo_stacks_are_per_session(self, plane):
        manager = SessionManager(plane, max_sessions=8, ttl=0)
        a = manager.create()
        b = manager.create()
        manager.act(a.sid, "add_node", ("x", "A"))
        manager.act(a.sid, "add_node", ("y", "B"))
        manager.act(a.sid, "add_edge", ("x", "y", None))
        assert a.engine.can_undo
        assert not b.engine.can_undo
        manager.act(a.sid, "undo")
        assert a.engine.query.num_edges == 0
        assert not b.engine.can_redo


class TestSerialization:
    def test_racing_actions_on_one_session_all_land(self, plane):
        manager = SessionManager(plane, max_sessions=8, ttl=0)
        session = manager.create()
        errors = []

        def hammer(tag):
            try:
                for i in range(20):
                    manager.act(
                        session.sid, "add_node", (f"{tag}-{i}", "A")
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert session.action_count == 80


class TestDispatch:
    def test_unknown_op_is_rejected(self, plane):
        manager = SessionManager(plane, max_sessions=8, ttl=0)
        session = manager.create()
        with pytest.raises(ValueError, match="unknown op"):
            manager.act(session.sid, "drop_table")

    def test_service_ops_cover_the_gui_actions(self):
        for op in ("add_edge", "delete_edge", "enable_similarity", "run",
                   "undo", "redo"):
            assert op in SERVICE_OPS

    def test_unknown_session_raises(self, plane):
        manager = SessionManager(plane, max_sessions=8, ttl=0)
        with pytest.raises(UnknownSessionError):
            manager.act("nope", "run")
