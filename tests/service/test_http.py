"""The HTTP layer: routes, protocol envelopes, error mapping, concurrency."""

import threading

import pytest

from repro.core import PragueEngine
from repro.service import ServiceClient, ServiceClientError


class TestOpsEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema"] == 2
        assert health["kind"] == "service-response"
        assert health["max_sessions"] == 4
        assert health["db_graphs"] > 0

    def test_obs_surfaces_the_full_snapshot(self, client):
        data = client.obs()
        assert set(data["snapshot"]) >= {"counters", "gauges", "histograms"}
        assert data["service"]["active"] == len(client.sessions())


class TestSessionRoutes:
    def test_formulation_round_trip_matches_direct_engine(
        self, client, plane
    ):
        sid = client.create_session(sigma=2)
        client.add_node(sid, "a", "A")
        client.add_node(sid, "b", "B")
        step = client.add_edge(sid, "a", "b")
        assert step["step"]["action"] == "New"
        assert step["num_edges"] == 1
        run = client.run(sid)["run"]

        engine = PragueEngine(plane.db, plane.indexes, sigma=2)
        engine.add_node("a", "A")
        engine.add_node("b", "B")
        engine.add_edge("a", "b")
        reference = engine.run()
        assert run["exact"] == sorted(reference.results.exact_ids)
        assert run["verification_free"] == reference.verification_free
        client.close_session(sid)

    def test_undo_redo_over_http(self, client):
        sid = client.create_session()
        client.add_node(sid, "a", "A")
        client.add_node(sid, "b", "B")
        client.add_edge(sid, "a", "b")
        assert client.undo(sid)["num_edges"] == 0
        assert client.redo(sid)["num_edges"] == 1
        client.close_session(sid)

    def test_list_and_close(self, client):
        sid = client.create_session()
        assert sid in {s["session"] for s in client.sessions()}
        client.close_session(sid)
        assert sid not in {s["session"] for s in client.sessions()}


class TestErrorMapping:
    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.run("doesnotexist")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "UnknownSessionError"

    def test_bad_gesture_is_400(self, client):
        sid = client.create_session()
        with pytest.raises(ServiceClientError) as excinfo:
            client.act(sid, "drop_table")
        assert excinfo.value.status == 400
        client.close_session(sid)

    def test_admission_overflow_is_503(self, client):
        sids = [client.create_session() for _ in range(4)]
        with pytest.raises(ServiceClientError) as excinfo:
            client.create_session()
        assert excinfo.value.status == 503
        assert excinfo.value.error_type == "AdmissionError"
        for sid in sids:
            client.close_session(sid)

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404


class TestConcurrentClients:
    def test_parallel_users_formulate_independently(self, server):
        host, port = server.address
        results = {}
        errors = []

        def user(tag, labels):
            try:
                with ServiceClient(host, port, timeout=10.0) as c:
                    sid = c.create_session(sigma=2)
                    c.add_node(sid, "x", labels[0])
                    c.add_node(sid, "y", labels[1])
                    c.add_edge(sid, "x", "y")
                    results[tag] = c.run(sid)["run"]["exact"]
                    c.close_session(sid)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((tag, exc))

        threads = [
            threading.Thread(target=user, args=(tag, labels))
            for tag, labels in (("ab", "AB"), ("bc", "BC"), ("ca", "CA"))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Each user got the answer their own query implies (and at least
        # one pair differs, or the check would be vacuous).
        assert len(results) == 3
        assert any(
            results[a] != results[b]
            for a, b in (("ab", "bc"), ("bc", "ca"), ("ab", "ca"))
        )
