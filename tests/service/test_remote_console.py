"""The remote ops console: ``repro top --server`` and remote postmortems.

Drives the real CLI entry points against the live in-process server the
service suite already runs — the same rendering as the directory-tail mode,
fed from ``/obs`` over HTTP, plus the ``--server --request`` postmortem
fetch.  The always-on request ring is what makes the postmortem work with
tracing off: an operator can resolve an id *after* the fact.
"""

import pytest

from repro.cli import _parse_server, main


class TestParseServer:
    def test_full_url(self):
        assert _parse_server("http://10.0.0.5:9999") == ("10.0.0.5", 9999)

    def test_host_port_without_scheme(self):
        assert _parse_server("localhost:8123") == ("localhost", 8123)

    def test_bare_host_uses_the_configured_port(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_PORT", raising=False)
        assert _parse_server("http://example.test") == ("example.test", 8765)


class TestTopServerMode:
    def test_once_renders_a_live_frame(self, server, client, capsys):
        client.health()  # at least one request in the ring
        host, port = server.address
        code = main(["top", "--server", f"http://{host}:{port}", "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top — pid" in out
        assert "SLOs (rolling window):" in out
        assert "request_errors" in out
        assert "slowest recent requests" in out

    def test_unreachable_server_renders_the_waiting_frame(self, capsys):
        code = main([
            "top", "--server", "http://127.0.0.1:1", "--once",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "waiting for http://127.0.0.1:1/obs" in out
        assert "is the server up?" in out


class TestRemotePostmortem:
    def test_fetches_and_renders_a_request_bundle(
        self, server, client, capsys
    ):
        sid = client.create_session()
        client.request(
            "POST", f"/v1/sessions/{sid}/actions",
            {"op": "add_node", "args": ["a", "A"]},
            request_id="console-req",
        )
        host, port = server.address
        code = main([
            "postmortem", "--server", f"http://{host}:{port}",
            "--request", "console-req",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "request console-req" in out
        assert f"/v1/sessions/{sid}/actions -> 200" in out
        client.close_session(sid)

    def test_server_without_request_id_is_usage_error(self, capsys):
        code = main(["postmortem", "--server", "http://127.0.0.1:1"])
        assert code == 2
        assert "--request" in capsys.readouterr().err

    def test_no_bundle_and_no_server_is_usage_error(self, capsys):
        code = main(["postmortem"])
        assert code == 2
        assert "bundle" in capsys.readouterr().err
