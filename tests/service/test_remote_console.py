"""The remote ops console: ``repro top --server`` and remote postmortems.

Drives the real CLI entry points against the live in-process server the
service suite already runs — the same rendering as the directory-tail mode,
fed from ``/obs`` over HTTP, plus the ``--server --request`` postmortem
fetch.  The always-on request ring is what makes the postmortem work with
tracing off: an operator can resolve an id *after* the fact.
"""

import json
import threading
import time

import pytest

from repro.cli import _parse_server, main
from repro.obs.profiler import PROFILER


@pytest.fixture
def older_server():
    """A fake service one PR behind: ``/obs`` with no ``slo``, ``requests``
    or ``profile`` sections, and no ``/v1/requests/<id>`` route at all."""
    from http.server import BaseHTTPRequestHandler, HTTPServer

    payload = {
        "schema": 2, "kind": "service-response", "protocol": 1,
        "pid": 4242,
        "snapshot": {
            "counters": {"canonical.cache.hits": 1},
            "gauges": {},
            "histograms": {"action.new": {
                "count": 1, "sum_s": 0.01, "min_s": 0.01, "max_s": 0.01,
                "p50_s": 0.01, "p90_s": 0.01, "p99_s": 0.01,
            }},
        },
        "events": [],
    }

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            if self.path == "/obs":
                body = json.dumps(payload).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self.send_error(404)

        def log_message(self, *args):
            pass

    httpd = HTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.shutdown()
    thread.join(timeout=5.0)
    httpd.server_close()


class TestParseServer:
    def test_full_url(self):
        assert _parse_server("http://10.0.0.5:9999") == ("10.0.0.5", 9999)

    def test_host_port_without_scheme(self):
        assert _parse_server("localhost:8123") == ("localhost", 8123)

    def test_bare_host_uses_the_configured_port(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_PORT", raising=False)
        assert _parse_server("http://example.test") == ("example.test", 8765)


class TestTopServerMode:
    def test_once_renders_a_live_frame(self, server, client, capsys):
        client.health()  # at least one request in the ring
        host, port = server.address
        code = main(["top", "--server", f"http://{host}:{port}", "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top — pid" in out
        assert "SLOs (rolling window):" in out
        assert "request_errors" in out
        assert "slowest recent requests" in out

    def test_unreachable_server_renders_the_waiting_frame(self, capsys):
        code = main([
            "top", "--server", "http://127.0.0.1:1", "--once",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "waiting for http://127.0.0.1:1/obs" in out
        assert "is the server up?" in out


class TestConsoleDegradesAgainstOlderServers:
    """Satellite regression: the console CLIs must not KeyError against a
    server that predates the slo/requests/profile sections."""

    def test_top_renders_na_labels_not_a_crash(self, older_server, capsys):
        code = main(["top", "--server", older_server, "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top — pid 4242" in out
        assert "action.new" in out
        assert "SLOs (rolling window): n/a" in out
        assert "slowest recent requests: n/a" in out

    def test_postmortem_reports_the_missing_route_cleanly(
        self, older_server, capsys
    ):
        code = main([
            "postmortem", "--server", older_server, "--request", "r-1",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "could not fetch request" in err
        assert "older server" in err

    def test_postmortem_reports_a_down_server_cleanly(self, capsys):
        code = main([
            "postmortem", "--server", "http://127.0.0.1:1",
            "--request", "r-1",
        ])
        assert code == 1
        assert "could not fetch request" in capsys.readouterr().err


class TestProfileSurfaces:
    """The live profiling surfaces: ``/obs`` summary and the per-request
    slice in ``/v1/requests/<id>`` (the server fixture is in-process, so
    the test can drive the process-wide sampler directly)."""

    @pytest.fixture(autouse=True)
    def _sampler_off_after(self):
        yield
        PROFILER.force(None)
        PROFILER.reset()

    def test_obs_profile_is_null_while_sampler_is_off(self, client):
        PROFILER.force(None)
        PROFILER.reset()
        assert client.obs()["profile"] is None

    def test_obs_and_request_bundle_carry_profile_slices(
        self, server, client, capsys
    ):
        PROFILER.reset()
        PROFILER.force(1000.0)
        sid = client.create_session()
        client.act(sid, "add_node", ("a", "A"))
        # add_edge is an instrumented action site ("new") — samples taken
        # inside it attribute to the request id; growing the query makes
        # each SPIG build a little heavier, so the sampler lands quickly
        deadline = time.monotonic() + 30
        i = 0
        while time.monotonic() < deadline:
            i += 1
            client.act(sid, "add_node", (f"n{i}", "B"))
            client.request(
                "POST", f"/v1/sessions/{sid}/actions",
                {"op": "add_edge", "args": ["a", f"n{i}", "x"]},
                request_id="profiled-req",
            )
            if PROFILER.slice_for_request("profiled-req"):
                break

        data = client.obs()
        profile = data["profile"]
        assert profile and profile["samples"] > 0
        assert profile["top_frames"]
        assert any(
            s["request_id"] == "profiled-req" for s in profile["slices"]
        )

        bundle = client.request_bundle("profiled-req")
        assert bundle["profile"]
        assert sum(bundle["profile"].values()) > 0
        PROFILER.force(None)

        host, port = server.address
        code = main([
            "postmortem", "--server", f"http://{host}:{port}",
            "--request", "profiled-req",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile slice" in out
        client.close_session(sid)


class TestRemotePostmortem:
    def test_fetches_and_renders_a_request_bundle(
        self, server, client, capsys
    ):
        sid = client.create_session()
        client.request(
            "POST", f"/v1/sessions/{sid}/actions",
            {"op": "add_node", "args": ["a", "A"]},
            request_id="console-req",
        )
        host, port = server.address
        code = main([
            "postmortem", "--server", f"http://{host}:{port}",
            "--request", "console-req",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "request console-req" in out
        assert f"/v1/sessions/{sid}/actions -> 200" in out
        client.close_session(sid)

    def test_server_without_request_id_is_usage_error(self, capsys):
        code = main(["postmortem", "--server", "http://127.0.0.1:1"])
        assert code == 2
        assert "--request" in capsys.readouterr().err

    def test_no_bundle_and_no_server_is_usage_error(self, capsys):
        code = main(["postmortem"])
        assert code == 2
        assert "bundle" in capsys.readouterr().err
