"""End-to-end correlation: one id stitches client → handler → worker.

The acceptance test of the telemetry plane: drive one formulation through
the *real* HTTP server with ``REPRO_WORKERS=2`` and a pool floor low
enough that Run's verification actually dispatches to worker processes,
then assert the same client-supplied request id appears on

* the response's ``X-Prague-Request`` echo,
* the action's root span tree (``request_id`` span attribute),
* the recorder's structured ``service.request`` access-log event, and
* at least one *worker-side* event merged back through the pool's
  observability-delta protocol (recognisable by its ``pid-*`` src label),

all reassembled by ``GET /v1/requests/<id>`` — the postmortem route.
"""

import random

import pytest

from repro import obs
from repro.config import MiningParams
from repro.core.plane import SharedPlane
from repro.datasets import generate_aids_like
from repro.graph.generators import random_connected_subgraph
from repro.index import build_indexes
from repro.obs.recorder import RECORDER
from repro.obs.tracer import TRACER
from repro.service import PragueService, ServiceClient, SessionManager
from repro.testing import connected_order


@pytest.fixture()
def correlated_stack(monkeypatch):
    """A live server over a corpus big enough to engage the pool.

    Tracing and the recorder are forced on (correlation stamps root spans
    only while tracing is enabled); the pool floor is pinned below the
    candidate counts this corpus produces, and the index's fragment size is
    capped low so a 5-edge query always leaves the indexed envelope and
    forces Run-side verification.
    """
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "2")
    TRACER.force(True)
    TRACER.reset()
    RECORDER.force(True)
    RECORDER.reset()
    db = generate_aids_like(60, seed=7)
    indexes = build_indexes(db, MiningParams(
        min_support=0.15, size_threshold=3, max_fragment_edges=3
    ))
    plane = SharedPlane(db, indexes)
    plane.warm()
    server = PragueService(
        SessionManager(plane, max_sessions=4, ttl=0, sigma=2), port=0
    )
    thread = server.serve_background()
    try:
        yield server, db
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        TRACER.force(None)
        TRACER.reset()
        RECORDER.force(None)
        RECORDER.reset()
        obs.sync_env()


def _query(db, seed, edges=5):
    rng = random.Random(seed)
    while True:
        g = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, g, min(edges, g.num_edges))
        if sub is not None and sub.num_edges >= 4:
            return sub


def test_one_id_stitches_client_handler_session_and_workers(
    correlated_stack,
):
    server, db = correlated_stack
    host, port = server.address
    sub = _query(db, seed=2012)
    sent = []
    with ServiceClient(host, port, timeout=60.0) as client:
        sid = client.create_session(sigma=2)

        def act(op, args):
            rid = f"e2e-{len(sent):03d}"
            sent.append(rid)
            client.request(
                "POST", f"/v1/sessions/{sid}/actions",
                {"op": op, "args": list(args)}, request_id=rid,
            )
            # the echo leg: the response header carries the id we minted
            assert client.last_request_id == rid

        for node in sub.nodes():
            act("add_node", (repr(node), sub.label(node)))
        for u, v in connected_order(sub):
            act("add_edge", (repr(u), repr(v), sub.edge_label(u, v)))
        act("run", ())

        counters = obs.full_snapshot()["counters"]
        if counters.get("verify.pool.fallbacks", 0):
            pytest.skip("pool unavailable on this platform")
        chunk_events = [
            e for e in RECORDER.snapshot() if e["kind"] == "pool.chunk"
        ]
        assert chunk_events, (
            "verification never dispatched to the pool — the correlation "
            "test needs worker-side events to merge back"
        )
        correlated = [
            e for e in chunk_events
            if e.get("request_id", "").startswith("e2e-")
        ]
        assert correlated, (
            "no pool chunk carried a request id: the worker-context hop "
            "lost the correlation"
        )
        rid = correlated[-1]["request_id"]
        assert rid in sent

        # One fetch reassembles the whole story (the postmortem route).
        bundle = client.request_bundle(rid)
        assert bundle["request_id"] == rid
        # ... the access-log leg
        assert bundle["request"]["request_id"] == rid
        assert bundle["request"]["session"] == sid
        assert bundle["request"]["status"] == 200
        kinds = {e["kind"] for e in bundle["events"]}
        assert "service.request" in kinds
        # ... the worker leg: merged events keep their pid-* provenance
        worker_side = [
            e for e in bundle["events"]
            if e.get("src", "").startswith("pid-")
        ]
        assert worker_side, "worker-side events must correlate by id"
        assert all(e["request_id"] == rid for e in bundle["events"])
        # ... the span leg: the action's root span tree is stamped
        assert bundle["spans"], "the dispatching action's spans must appear"
        assert all(
            span["attrs"]["request_id"] == rid for span in bundle["spans"]
        )
        client.close_session(sid)
