"""Shared service-layer fixtures: one plane, one live server per module."""

import pytest

from repro.core.plane import SharedPlane
from repro.service import PragueService, ServiceClient, SessionManager


@pytest.fixture(scope="module")
def plane(small_db, small_indexes):
    return SharedPlane(small_db, small_indexes)


@pytest.fixture()
def manager(plane):
    return SessionManager(plane, max_sessions=8, ttl=0, sigma=2)


@pytest.fixture(scope="module")
def server(plane):
    service = PragueService(
        SessionManager(plane, max_sessions=4, ttl=0, sigma=2), port=0
    )
    thread = service.serve_background()
    yield service
    service.shutdown()
    thread.join(timeout=5.0)
    service.server_close()


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServiceClient(host, port, timeout=10.0) as c:
        yield c
        # Leave no sessions behind for the next test (the cap is small).
        for session in c.sessions():
            c.close_session(session["session"])
