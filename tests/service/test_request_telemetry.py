"""Request-scoped service telemetry: correlation, SLOs, new ops routes.

Covers the telemetry plane end to end at the HTTP layer: the
``X-Prague-Request`` round trip (honored, minted, sanitized), the
structured access-log event, the ``/obs`` and ``/healthz`` payload schemas
(including the ``slo`` section shape), the per-session
``GET /v1/sessions/<sid>/obs`` view, ``GET /v1/requests/<rid>`` bundles,
the 413 oversized-body mapping and the mid-write disconnect guard.
"""

import http.client
import json

import pytest

from repro.obs.metrics import METRICS
from repro.obs.recorder import RECORDER
from repro.obs.requests import REQUEST_LOG
from repro.obs.slo import DEFAULT_OBJECTIVES
from repro.service import ServiceClientError
from repro.service.http import MAX_BODY_BYTES, ServiceHandler


@pytest.fixture()
def recording():
    """Force the flight recorder on and hand back a clean ring."""
    RECORDER.force(True)
    RECORDER.reset()
    yield
    RECORDER.force(None)
    RECORDER.reset()


class TestRequestIdRoundTrip:
    def test_client_supplied_id_is_honored_and_echoed(self, client):
        client.request("GET", "/healthz", request_id="my-req.001")
        assert client.last_request_id == "my-req.001"

    def test_server_mints_an_id_when_none_is_sent(self, client):
        client.health()
        first = client.last_request_id
        assert first and len(first) == 16
        client.health()
        assert client.last_request_id != first  # fresh per request

    def test_hostile_header_value_is_replaced_with_a_minted_id(self, client):
        client.request("GET", "/healthz", request_id="x" * 65)
        assert client.last_request_id != "x" * 65
        assert len(client.last_request_id) == 16

    def test_error_responses_still_echo_the_id(self, client):
        with pytest.raises(ServiceClientError):
            client.request("GET", "/nope", request_id="err-req")
        assert client.last_request_id == "err-req"


class TestAccessLog:
    def test_completed_request_lands_in_recorder_and_ring(
        self, client, recording
    ):
        sid = client.create_session()
        client.add_node(sid, "a", "A", )
        rid = client.last_request_id
        event = next(
            e for e in RECORDER.snapshot()
            if e["kind"] == "service.request" and e.get("request_id") == rid
        )
        assert event["method"] == "POST"
        assert event["path"] == f"/v1/sessions/{sid}/actions"
        assert event["status"] == 200
        assert event["duration_ms"] > 0
        assert event["session_id"] == sid
        entry = REQUEST_LOG.get(rid)
        assert entry is not None
        assert entry["status"] == 200
        assert entry["session"] == sid
        client.close_session(sid)


class TestObsSchemas:
    def test_healthz_envelope_schema(self, client):
        health = client.health()
        assert health["schema"] == 2
        assert health["kind"] == "service-response"
        assert health["protocol"] == 1
        assert health["status"] == "ok"
        for field in ("active", "created", "evicted", "max_sessions",
                      "db_graphs"):
            assert field in health, field

    def test_obs_envelope_and_slo_section_shape(self, client):
        client.health()  # at least one completed request in the window
        data = client.obs()
        assert data["schema"] == 2
        assert data["kind"] == "service-response"
        assert data["protocol"] == 1
        assert isinstance(data["pid"], int)
        assert set(data["snapshot"]) >= {"counters", "gauges", "histograms",
                                         "slo"}
        assert set(data["slo"]) == {o.name for o in DEFAULT_OBJECTIVES}
        for state in data["slo"].values():
            assert set(state) >= {
                "description", "objective", "window_s", "samples", "good",
                "bad", "attainment", "burn_rate", "budget_remaining", "met",
            }
        errors = data["slo"]["request_errors"]
        assert errors["samples"] >= 1
        assert errors["attainment"] is not None
        requests = data["requests"]
        assert requests["tracked"] >= 1
        assert isinstance(requests["slowest"], list)
        assert isinstance(requests["recent"], list)
        assert {"request_id", "method", "path", "status", "duration_ms"} <= \
            set(requests["recent"][-1])
        assert isinstance(data["events"], list)


class TestSessionObsRoute:
    def test_session_obs_payload(self, client):
        sid = client.create_session(sigma=2)
        client.add_node(sid, "a", "A")
        client.add_node(sid, "b", "B")
        client.add_edge(sid, "a", "b")
        client.run(sid)
        data = client.session_obs(sid)
        assert data["session"] == sid
        assert data["actions"] == 4
        latency = data["action_latency"]
        assert latency["count"] == 4
        assert 0 < latency["p50_s"] <= latency["p99_s"] <= latency["max_s"]
        srt = data["srt"]
        assert srt["entries"], "edge gestures must produce ledger rows"
        assert srt["srt_seconds"] >= 0.0
        assert srt["run_seconds"] >= 0.0
        tail = data["requests"]
        assert tail, "request ring should hold this session's actions"
        assert all(e["session"] == sid for e in tail)
        client.close_session(sid)

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.session_obs("ghost")
        assert excinfo.value.status == 404


class TestRequestBundleRoute:
    def test_bundle_returns_the_correlated_story(self, client, recording):
        sid = client.create_session()
        client.add_node(sid, "a", "A")
        rid = client.last_request_id
        bundle = client.request_bundle(rid)
        assert bundle["request_id"] == rid
        assert bundle["request"]["status"] == 200
        kinds = {e["kind"] for e in bundle["events"]}
        assert "service.request" in kinds
        assert all(e["request_id"] == rid for e in bundle["events"])
        client.close_session(sid)

    def test_unknown_request_id_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.request_bundle("00000000deadbeef")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "UnknownRequestError"


class TestOversizedBody:
    def test_claimed_oversized_body_is_413(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request(
                "POST", "/v1/sessions", body=b"{}",
                headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
            )
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        assert response.status == 413
        payload = json.loads(raw.decode("utf-8"))
        assert payload["error"]["type"] == "BodyTooLargeError"
        assert str(MAX_BODY_BYTES) in payload["error"]["message"]

    def test_normal_bodies_still_pass_after_a_rejection(self, client):
        sid = client.create_session()
        client.close_session(sid)


class _ClosedPipe:
    """A write side whose client already hung up."""

    def write(self, data):
        raise BrokenPipeError(32, "Broken pipe")

    def flush(self):  # pragma: no cover - never reached after the raise
        pass


class TestDisconnectGuard:
    def _bare_handler(self):
        handler = ServiceHandler.__new__(ServiceHandler)
        handler.request_version = "HTTP/1.1"
        handler.requestline = "GET /obs HTTP/1.1"
        handler.path = "/obs"
        handler.close_connection = False
        handler._request_id = "gone-client"
        handler.wfile = _ClosedPipe()
        return handler

    def test_mid_write_disconnect_is_counted_not_raised(self, recording):
        handler = self._bare_handler()
        before = METRICS.counter("service.client_disconnects")
        handler._send(200, {"ok": True})  # must not raise
        assert METRICS.counter("service.client_disconnects") == before + 1
        assert handler.close_connection is True
        event = next(
            e for e in RECORDER.snapshot()
            if e["kind"] == "service.disconnect"
        )
        assert event["path"] == "/obs"
        assert event["status"] == 200

    def test_live_server_survives_an_early_close(self, server, client):
        """A client that closes before reading must not kill the server
        (nor print a ThreadingHTTPServer traceback)."""
        host, port = server.address
        raw = http.client.HTTPConnection(host, port, timeout=10.0)
        raw.request("GET", "/obs")
        raw.close()  # hang up without reading the (large) response
        # the server still answers the next request on a fresh connection
        assert client.health()["status"] == "ok"
