"""Chunked scale-sweep generation: determinism and worker independence."""

import pytest

from repro.datasets.scale import (
    CHUNK_SIZE,
    chunk_plan,
    chunk_seed,
    generate_scaled,
)


def _shape(db):
    """Structure fingerprint: labeled edge multisets per graph, in order."""
    return [
        sorted(
            (g.label(u), g.label(v)) if g.label(u) <= g.label(v)
            else (g.label(v), g.label(u))
            for u, v in g.edges()
        )
        for _, g in db.items()
    ]


class TestChunkPlan:
    def test_covers_exactly(self):
        assert sum(chunk_plan(1234)) == 1234
        assert chunk_plan(CHUNK_SIZE) == [CHUNK_SIZE]
        assert chunk_plan(CHUNK_SIZE + 1) == [CHUNK_SIZE, 1]

    def test_empty(self):
        assert chunk_plan(0) == []
        assert chunk_plan(-5) == []

    def test_chunk_seeds_are_distinct(self):
        seeds = [chunk_seed(2012, i) for i in range(200)]
        assert len(set(seeds)) == len(seeds)


class TestGenerateScaled:
    def test_worker_count_never_changes_the_corpus(self):
        serial = generate_scaled("aids", 2 * CHUNK_SIZE + 40, seed=5, workers=1)
        parallel = generate_scaled("aids", 2 * CHUNK_SIZE + 40, seed=5, workers=3)
        assert len(serial) == len(parallel) == 2 * CHUNK_SIZE + 40
        assert _shape(serial) == _shape(parallel)

    def test_seeded_reproducibility(self):
        a = generate_scaled("aids", 30, seed=7)
        b = generate_scaled("aids", 30, seed=7)
        c = generate_scaled("aids", 30, seed=8)
        assert _shape(a) == _shape(b)
        assert _shape(a) != _shape(c)

    def test_graphgen_kind(self):
        db = generate_scaled("graphgen", 25, seed=3)
        assert len(db) == 25
        assert all(g.num_edges >= 2 for _, g in db.items())

    def test_kwargs_reach_the_generator(self):
        db = generate_scaled("aids", 10, seed=3, bond_labels=True)
        labels = {
            g.edge_label(u, v) for _, g in db.items() for u, v in g.edges()
        }
        assert labels - {None}  # bond labels actually present

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus kind"):
            generate_scaled("proteins", 10)
