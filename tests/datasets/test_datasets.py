"""Dataset generators: paper-shape statistics and determinism."""

import pytest

from repro.datasets import generate_aids_like, generate_graphgen_like
from repro.datasets.aids import ATOM_WEIGHTS
from repro.datasets.synthetic import _nodes_for_density


class TestAidsLike:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_aids_like(300, seed=1)

    def test_shape_matches_paper(self, db):
        """avg ~25 nodes / ~27 edges, like the AIDS Antiviral dataset."""
        stats = db.stats()
        assert 20 <= stats["avg_nodes"] <= 30
        assert 21 <= stats["avg_edges"] <= 33
        assert stats["max_nodes"] <= 222

    def test_carbon_dominates(self, db):
        from collections import Counter

        counts = Counter()
        for g in db:
            counts.update(g.node_labels())
        total = sum(counts.values())
        assert counts["C"] / total > 0.5
        assert set(counts) <= set(ATOM_WEIGHTS)

    def test_all_graphs_valid(self, db):
        for g in db:
            assert g.is_connected()
            assert g.num_edges >= 1

    def test_deterministic(self):
        a = generate_aids_like(20, seed=5)
        b = generate_aids_like(20, seed=5)
        for i in range(20):
            assert a[i].same_structure(b[i])

    def test_different_seeds_differ(self):
        a = generate_aids_like(20, seed=5)
        b = generate_aids_like(20, seed=6)
        assert any(not a[i].same_structure(b[i]) for i in range(20))


class TestGraphGenLike:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_graphgen_like(300, seed=1)

    def test_shape_matches_parameters(self, db):
        stats = db.stats()
        assert 25 <= stats["avg_edges"] <= 35
        assert 20 <= stats["avg_nodes"] <= 30

    def test_density_equation(self):
        # D = 2E/(V(V-1)); E=30, D=0.1 -> V ~ 25
        assert _nodes_for_density(30, 0.1) == 25

    def test_density_validation(self):
        with pytest.raises(ValueError):
            _nodes_for_density(30, 0.0)

    def test_label_alphabet(self, db):
        labels = set()
        for g in db:
            labels.update(g.node_labels())
        assert labels <= {f"L{i}" for i in range(8)}

    def test_deterministic(self):
        a = generate_graphgen_like(10, seed=3)
        b = generate_graphgen_like(10, seed=3)
        for i in range(10):
            assert a[i].same_structure(b[i])
