"""Query workload builders: drawability, bold steps, best/worst roles."""

import random

import pytest

from repro.core import PragueEngine
from repro.datasets import (
    connected_edge_order,
    sample_containment_query,
    sample_similarity_query,
    spec_from_graph,
    standard_containment_workload,
    standard_similarity_workload,
)
from repro.datasets.queries import sample_joined_similarity_query
from repro.testing import graph_from_spec, sample_subgraph


class TestConnectedOrder:
    def test_prefixes_connected(self, small_db):
        rng = random.Random(0)
        q = sample_subgraph(rng, small_db, 4, 5)
        order = connected_edge_order(q)
        seen = []
        for edge in order:
            seen.append(edge)
            assert q.edge_subgraph(seen).is_connected()

    def test_covers_all_edges(self, small_db):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 3, 5)
        assert len(connected_edge_order(q)) == q.num_edges

    def test_spec_from_graph(self, small_db):
        rng = random.Random(2)
        q = sample_subgraph(rng, small_db, 3, 4)
        spec = spec_from_graph("x", q)
        assert spec.size == q.num_edges
        from repro.graph import are_isomorphic

        assert are_isomorphic(spec.graph(), q)


class TestSamplers:
    def test_containment_query_has_matches(self, small_db, small_indexes):
        rng = random.Random(3)
        spec = sample_containment_query(small_db, rng, 3)
        engine = PragueEngine(small_db, small_indexes)
        for node, label in spec.nodes.items():
            engine.add_node(node, label)
        for u, v in spec.edges:
            report = engine.add_edge(u, v)
            assert report.rq_size > 0  # never empties: it's a real subgraph
        assert engine.run().results.exact_ids

    def test_similarity_query_empties(self, small_db, small_indexes):
        rng = random.Random(4)
        wq = sample_similarity_query(small_db, small_indexes, rng, 4, sigma=2)
        assert wq is not None
        assert wq.empty_step is not None
        assert 1 <= wq.empty_step <= wq.spec.size

    def test_joined_query_empties_late(self, small_db, small_indexes):
        rng = random.Random(5)
        wq = sample_joined_similarity_query(
            small_db, small_indexes, rng, 5, sigma=2, min_empty_step=3
        )
        if wq is None:
            pytest.skip("no joined query found in this tiny corpus")
        assert wq.empty_step >= 3


class TestStandardWorkloads:
    def test_similarity_workload_roles(self, small_db, small_indexes):
        wl = standard_similarity_workload(
            small_db, small_indexes, num_queries=3, num_edges=4,
            sigma=2, pool_size=10,
        )
        assert list(wl) == ["Q1", "Q2", "Q3"]
        fractions = [wq.free_fraction for wq in wl.values()]
        # Q1 plays the best case: maximal verification-free share.
        assert fractions[0] == max(fractions)
        for wq in wl.values():
            assert wq.empty_step is not None
            assert wq.spec.size == 4

    def test_containment_workload(self, small_db):
        wl = standard_containment_workload(small_db, num_queries=4, sizes=(2, 3))
        assert list(wl) == ["C1", "C2", "C3", "C4"]
        assert [s.size for s in wl.values()] == [2, 3, 2, 3]
