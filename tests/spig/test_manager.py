"""SPIG-set management: registry, deletion maintenance, state equivalence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SpigError
from repro.graph import canonical_code
from repro.graph.generators import random_connected_graph
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import graph_from_spec


def _drive(indexes, graph):
    from repro.datasets.queries import connected_edge_order

    query = VisualQuery()
    for node in graph.nodes():
        query.add_node(node, graph.label(node))
    manager = SpigManager(indexes)
    for u, v in connected_edge_order(graph):
        eid = query.add_edge(u, v, graph.edge_label(u, v))
        manager.on_new_edge(query, eid)
    return query, manager


class TestRegistry:
    def test_target_vertex_is_full_query(self, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        query, manager = _drive(small_indexes, g)
        target = manager.target_vertex(query)
        assert target.level == query.num_edges
        assert query.edge_id_set() in target.edge_sets

    def test_target_missing_raises(self, small_indexes):
        manager = SpigManager(small_indexes)
        query = VisualQuery()
        query.add_node(0, "A")
        query.add_node(1, "B")
        query.add_edge(0, 1)
        with pytest.raises(SpigError):
            manager.target_vertex(query)

    def test_duplicate_spig_rejected(self, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        query, manager = _drive(small_indexes, g)
        with pytest.raises(SpigError):
            manager.on_new_edge(query, 1)

    def test_vertex_for_every_subset(self, small_indexes):
        g = graph_from_spec(
            {0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2), (2, 0)]
        )
        query, manager = _drive(small_indexes, g)
        # every single edge subset resolvable
        for eid in query.edge_ids():
            assert manager.vertex_for(frozenset({eid})) is not None

    def test_clear(self, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        query, manager = _drive(small_indexes, g)
        manager.clear()
        assert manager.num_vertices() == 0
        assert manager.vertex_for(frozenset({1})) is None


class TestDeletionMaintenance:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_state_equals_fresh_formulation(self, seed, small_indexes):
        """After deleting an edge, the surviving edge-set registry equals the
        registry a fresh formulation of the reduced query would build."""
        rng = random.Random(seed)
        n = rng.randint(3, 5)
        g = random_connected_graph(rng, n, rng.randint(n, n + 2), "ABC")
        query, manager = _drive(small_indexes, g)
        from repro.core.modify import deletable_edges

        dels = deletable_edges(query)
        victim = dels[rng.randrange(len(dels))]
        query.delete_edge(victim)
        manager.on_delete_edge(victim)
        if query.num_edges == 0:
            assert manager.num_vertices() == 0
            return
        # Surviving registry entries: exactly the connected subsets of the
        # reduced query.
        survivors = set()
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                for es in vertex.edge_sets:
                    survivors.add(es)
                    assert victim not in es
        from repro.testing import all_connected_edge_subsets

        id_of = {}
        for eid in query.edge_ids():
            u, v, _ = query.edge(eid)
            id_of[frozenset((u, v))] = eid
        reduced = query.graph()
        truth = {
            frozenset(id_of[frozenset(e)] for e in subset)
            for subset in all_connected_edge_subsets(reduced)
        }
        assert survivors == truth
        # Fragment lists of survivors are still consistent with their codes.
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                for es in vertex.edge_sets:
                    sub = query.edge_subgraph_by_ids(es)
                    assert canonical_code(sub) == vertex.code

    def test_delete_whole_spig(self, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        query, manager = _drive(small_indexes, g)
        last = max(query.edge_ids())
        query.delete_edge(last)
        manager.on_delete_edge(last)
        assert last not in manager.spigs
        assert manager.vertex_for(frozenset({last})) is None

    def test_delete_unknown_edge_noop(self, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        query, manager = _drive(small_indexes, g)
        before = manager.num_vertices()
        manager.on_delete_edge(99)
        assert manager.num_vertices() == before
