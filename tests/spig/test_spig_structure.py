"""SPIG structure: vertices, levels, dedup, spindle shape (Definition 4)."""

import pytest

from repro.exceptions import SpigError
from repro.graph import canonical_code
from repro.spig.spig import SPIG, FragmentList, SpigVertex
from repro.testing import graph_from_spec


@pytest.fixture
def fragment():
    return graph_from_spec({0: "A", 1: "B"}, [(0, 1)])


class TestVertex:
    def test_identifier_pair(self, fragment):
        v = SpigVertex(5, 3, canonical_code(fragment), 1, fragment)
        assert v.vertex_id == (5, 3)  # the paper's v_(ℓ,k)

    def test_primary_edge_set_deterministic(self, fragment):
        v = SpigVertex(1, 1, canonical_code(fragment), 1, fragment)
        v.edge_sets = {frozenset({2, 3}), frozenset({1, 4})}
        assert v.primary_edge_set == frozenset({1, 4})

    def test_fragment_list_defaults(self):
        fl = FragmentList()
        assert fl.freq_id is None
        assert fl.dif_id is None
        assert fl.phi == frozenset()
        assert fl.upsilon == frozenset()
        assert not fl.dead
        assert not fl.is_indexed

    def test_is_indexed(self):
        assert FragmentList(freq_id=3).is_indexed
        assert FragmentList(dif_id=0).is_indexed
        assert not FragmentList(phi=frozenset({1})).is_indexed


class TestSpig:
    def test_get_or_create_dedups_by_code(self, fragment):
        spig = SPIG(1)
        v1, created1 = spig.get_or_create(1, canonical_code(fragment), fragment)
        v2, created2 = spig.get_or_create(1, canonical_code(fragment), fragment)
        assert created1 and not created2
        assert v1 is v2
        assert spig.num_vertices == 1

    def test_positions_sequential(self, fragment):
        other = graph_from_spec({0: "A", 1: "C"}, [(0, 1)])
        spig = SPIG(1)
        v1, _ = spig.get_or_create(1, canonical_code(fragment), fragment)
        v2, _ = spig.get_or_create(2, canonical_code(other), other)
        assert v1.position == 1
        assert v2.position == 2

    def test_source_vertex(self, fragment):
        spig = SPIG(1)
        v, _ = spig.get_or_create(1, canonical_code(fragment), fragment)
        assert spig.source_vertex is v

    def test_source_missing(self):
        with pytest.raises(SpigError):
            SPIG(1).source_vertex

    def test_target_vertex_is_top_level(self, fragment):
        bigger = graph_from_spec({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)])
        spig = SPIG(1)
        spig.get_or_create(1, canonical_code(fragment), fragment)
        v2, _ = spig.get_or_create(2, canonical_code(bigger), bigger)
        assert spig.target_vertex is v2

    def test_levels_sorted(self, fragment):
        bigger = graph_from_spec({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)])
        spig = SPIG(1)
        spig.get_or_create(2, canonical_code(bigger), bigger)
        spig.get_or_create(1, canonical_code(fragment), fragment)
        assert spig.levels() == [1, 2]

    def test_remove_vertex_detaches(self, fragment):
        bigger = graph_from_spec({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)])
        spig = SPIG(1)
        v1, _ = spig.get_or_create(1, canonical_code(fragment), fragment)
        v2, _ = spig.get_or_create(2, canonical_code(bigger), bigger)
        v1.children.add(v2)
        v2.parents.add(v1)
        spig.remove_vertex(v2)
        assert spig.num_vertices == 1
        assert v2 not in v1.children
        assert spig.vertices_at(2) == []

    def test_remove_foreign_vertex_rejected(self, fragment):
        spig = SPIG(1)
        foreign = SpigVertex(9, 1, canonical_code(fragment), 1, fragment)
        with pytest.raises(SpigError):
            spig.remove_vertex(foreign)
