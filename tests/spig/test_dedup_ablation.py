"""The dedup=False SPIG configuration (ablation A1's code path)."""

import random

from repro.baselines.naive import naive_containment_search
from repro.core import exact_sub_candidates
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import connected_order, sample_subgraph


def _drive(indexes, g, dedup):
    query = VisualQuery()
    for n in g.nodes():
        query.add_node(n, g.label(n))
    manager = SpigManager(indexes, dedup=dedup)
    for u, v in connected_order(g):
        eid = query.add_edge(u, v, g.edge_label(u, v))
        manager.on_new_edge(query, eid)
    return query, manager


class TestNoDedup:
    def test_one_vertex_per_edge_set(self, small_db, small_indexes):
        rng = random.Random(2)
        q = sample_subgraph(rng, small_db, 3, 5)
        query, manager = _drive(small_indexes, q, dedup=False)
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                assert len(vertex.edge_sets) == 1

    def test_same_candidates_with_and_without(self, small_db, small_indexes):
        rng = random.Random(3)
        q = sample_subgraph(rng, small_db, 3, 5)
        results = []
        for dedup in (True, False):
            query, manager = _drive(small_indexes, q, dedup=dedup)
            target = manager.target_vertex(query)
            rq = exact_sub_candidates(
                target, small_indexes, frozenset(small_db.ids())
            )
            results.append(set(rq))
        assert results[0] == results[1]

    def test_dedup_never_more_vertices(self, small_db, small_indexes):
        rng = random.Random(4)
        q = sample_subgraph(rng, small_db, 4, 6)
        _, dedup_mgr = _drive(small_indexes, q, dedup=True)
        _, plain_mgr = _drive(small_indexes, q, dedup=False)
        assert dedup_mgr.num_vertices() <= plain_mgr.num_vertices()

    def test_deletion_maintenance_without_dedup(self, small_db, small_indexes):
        from repro.core.modify import deletable_edges

        rng = random.Random(5)
        q = sample_subgraph(rng, small_db, 3, 5)
        query, manager = _drive(small_indexes, q, dedup=False)
        victim = deletable_edges(query)[0]
        query.delete_edge(victim)
        manager.on_delete_edge(victim)
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                assert all(victim not in es for es in vertex.edge_sets)
        target = manager.target_vertex(query)
        rq = exact_sub_candidates(
            target, small_indexes, frozenset(small_db.ids())
        )
        truth = set(naive_containment_search(query.graph(), small_db))
        assert truth <= set(rq)
