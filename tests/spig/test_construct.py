"""SPIG construction (Algorithm 2): enumeration completeness, Fragment-List
correctness against a direct Definition-4 computation, Lemma 1, and the
formulation-sequence invariance of Section V-B."""

import math
import random
from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import canonical_code, is_subgraph_isomorphic
from repro.graph.generators import random_connected_graph
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import all_connected_edge_subsets, graph_from_spec


def _drive(indexes, graph, order=None):
    """Formulate ``graph`` into a fresh manager; returns (query, manager)."""
    from repro.datasets.queries import connected_edge_order

    query = VisualQuery()
    for node in graph.nodes():
        query.add_node(node, graph.label(node))
    manager = SpigManager(indexes)
    for u, v in (order or connected_edge_order(graph)):
        eid = query.add_edge(u, v, graph.edge_label(u, v))
        manager.on_new_edge(query, eid)
    return query, manager


def _random_query(seed, n_lo=3, n_hi=5):
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    return random_connected_graph(rng, n, rng.randint(n - 1, n + 2), "ABC")


class TestEnumeration:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_vertices_cover_all_connected_subsets(self, seed, small_indexes):
        """Across the SPIG set, the realising edge-sets are exactly the
        connected edge subsets of the query (each in the SPIG of its max id)."""
        g = _random_query(seed)
        query, manager = _drive(small_indexes, g)
        id_of = {}
        for eid in query.edge_ids():
            u, v, _ = query.edge(eid)
            id_of[frozenset((u, v))] = eid
        truth = set()
        for subset in all_connected_edge_subsets(g):
            truth.add(frozenset(id_of[frozenset(e)] for e in subset))
        seen = set()
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                for es in vertex.edge_sets:
                    assert max(es) == spig.edge_id  # owned by max-id SPIG
                    seen.add(es)
        assert seen == truth

    def test_source_and_target(self, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        query, manager = _drive(small_indexes, g)
        last = manager.spigs[max(manager.spigs)]
        assert last.source_vertex.level == 1
        assert last.target_vertex.level == query.num_edges

    def test_vertex_fragments_match_edge_sets(self, small_indexes):
        g = _random_query(11)
        query, manager = _drive(small_indexes, g)
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                for es in vertex.edge_sets:
                    sub = query.edge_subgraph_by_ids(es)
                    assert canonical_code(sub) == vertex.code

    def test_dag_parent_child_levels(self, small_indexes):
        g = _random_query(13)
        _, manager = _drive(small_indexes, g)
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                for child in vertex.children:
                    assert child.level == vertex.level + 1
                for parent in vertex.parents:
                    assert parent.level == vertex.level - 1


class TestFragmentLists:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_definition4_direct_recomputation(self, seed, small_db, small_indexes):
        """Recompute every Fragment List from scratch per Definition 4."""
        g = _random_query(seed)
        query, manager = _drive(small_indexes, g)
        a2f, a2i = small_indexes.a2f, small_indexes.a2i
        for spig in manager.spigs.values():
            for vertex in spig.vertices():
                fl = vertex.fragment_list
                code = vertex.code
                if a2f.lookup(code) is not None:
                    # Condition 1: frequent fragment.
                    assert fl.freq_id == a2f.lookup(code)
                    assert fl.dif_id is None and not fl.phi and not fl.upsilon
                elif a2i.lookup(code) is not None:
                    # Condition 2: DIF.
                    assert fl.dif_id == a2i.lookup(code)
                    assert fl.freq_id is None and not fl.phi and not fl.upsilon
                else:
                    # Condition 3: NIF — check Φ and Υ by brute force.
                    frag = vertex.fragment
                    expected_phi = set()
                    from repro.mining.dif import connected_one_smaller_subgraphs

                    for sub in connected_one_smaller_subgraphs(frag):
                        fid = a2f.lookup(canonical_code(sub))
                        if fid is not None:
                            expected_phi.add(fid)
                    expected_upsilon = set()
                    for subset in all_connected_edge_subsets(frag):
                        sub = frag.edge_subgraph(subset)
                        did = a2i.lookup(canonical_code(sub))
                        if did is not None:
                            expected_upsilon.add(did)
                    assert fl.phi == expected_phi, (vertex, fl)
                    assert fl.upsilon == expected_upsilon, (vertex, fl)


class TestLemma1:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_level_counts_bounded_by_binomial(self, seed, small_indexes):
        """Lemma 1: N(k) ≤ C(n, k)."""
        g = _random_query(seed)
        query, manager = _drive(small_indexes, g)
        n = query.num_edges
        for k in range(1, n + 1):
            assert manager.total_vertices_at(k) <= math.comb(n, k)


class TestSequenceInvariance:
    def test_level_counts_identical_across_sequences(self, small_indexes):
        """Section V-B: Ni(k) = Nj(k) for any two formulation sequences."""
        g = graph_from_spec(
            {0: "A", 1: "B", 2: "A", 3: "C"},
            [(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        from repro.datasets.queries import connected_edge_order

        base_order = connected_edge_order(g)
        counts = []
        orders = [p for p in permutations(base_order)][:8]
        for order in orders:
            # only connected-prefix orders are drawable
            try:
                query, manager = _drive(small_indexes, g, order=order)
            except Exception:
                continue
            counts.append(
                tuple(
                    manager.total_vertices_at(k)
                    for k in range(1, query.num_edges + 1)
                )
            )
        assert len(counts) >= 2
        assert len(set(counts)) == 1
