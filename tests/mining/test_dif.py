"""DIF mining: the three DIF properties of Section III plus completeness."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphDatabase, canonical_code, is_subgraph_isomorphic
from repro.mining import (
    connected_one_smaller_subgraphs,
    mine_difs,
    mine_frequent_fragments,
)
from repro.testing import all_connected_edge_subsets, graph_from_spec, small_database


@pytest.fixture(scope="module")
def mined():
    db = small_database(seed=1, num_graphs=20, max_nodes=6)
    min_sup, max_edges = 5, 4
    frequent = mine_frequent_fragments(db, min_sup, max_edges)
    difs = mine_difs(db, frequent, min_sup, max_edges)
    return db, min_sup, max_edges, frequent, difs


class TestDifProperties:
    def test_difs_are_infrequent(self, mined):
        _, min_sup, _, _, difs = mined
        assert all(f.support < min_sup for f in difs.values())

    def test_all_proper_subgraphs_frequent(self, mined):
        """The defining minimality: sub(g) ⊂ F (or |g| = 1)."""
        _, _, _, frequent, difs = mined
        for frag in difs.values():
            if frag.size == 1:
                continue
            for sub in connected_one_smaller_subgraphs(frag.graph):
                assert canonical_code(sub) in frequent

    def test_disjoint_from_frequent(self, mined):
        _, _, _, frequent, difs = mined
        assert not (set(difs) & set(frequent))

    def test_fsg_ids_exact(self, mined):
        db, _, _, _, difs = mined
        for frag in difs.values():
            truth = {
                gid for gid, g in db.items()
                if is_subgraph_isomorphic(frag.graph, g)
            }
            assert set(frag.fsg_ids) == truth

    def test_supergraph_of_dif_is_infrequent(self, mined):
        """Paper property 1: g ∈ Id and g ⊂ g' implies g' ∈ I."""
        db, min_sup, max_edges, frequent, difs = mined
        # Check via the frequent catalog: no frequent fragment may contain
        # a DIF as a subgraph.
        for dif in list(difs.values())[:30]:
            for frag in frequent.values():
                if frag.size <= dif.size:
                    continue
                assert not is_subgraph_isomorphic(dif.graph, frag.graph)


class TestCompleteness:
    @given(st.integers(0, 500))
    @settings(max_examples=12, deadline=None)
    def test_every_in_db_dif_is_mined(self, seed):
        db = small_database(seed=seed, num_graphs=12, max_nodes=6)
        min_sup, max_edges = 4, 3
        frequent = mine_frequent_fragments(db, min_sup, max_edges)
        difs = mine_difs(db, frequent, min_sup, max_edges)
        # brute-force DIFs among fragments occurring in the database
        support = defaultdict(set)
        rep = {}
        for gid, g in db.items():
            for subset in all_connected_edge_subsets(g, max_edges):
                sub = g.edge_subgraph(subset)
                code = canonical_code(sub)
                support[code].add(gid)
                rep.setdefault(code, sub)
        for code, ids in support.items():
            if len(ids) >= min_sup:
                continue
            sub = rep[code]
            if sub.num_edges > 1:
                smaller = connected_one_smaller_subgraphs(sub)
                if not all(canonical_code(s) in frequent for s in smaller):
                    continue  # a NIF
            assert code in difs, f"missed DIF {code}"
            assert set(difs[code].fsg_ids) == ids

    def test_zero_support_label_pairs_included(self):
        """Single edges over the universe that never occur are support-0 DIFs."""
        g1 = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        g2 = graph_from_spec({0: "B", 1: "B"}, [(0, 1)])
        db = GraphDatabase([g1, g2])
        frequent = mine_frequent_fragments(db, 2, 3)
        difs = mine_difs(db, frequent, 2, 3)
        ab = canonical_code(graph_from_spec({0: "A", 1: "B"}, [(0, 1)]))
        assert ab in difs
        assert difs[ab].support == 0

    def test_size_cap_respected(self, mined):
        _, _, max_edges, _, difs = mined
        assert all(f.size <= max_edges for f in difs.values())


class TestConnectedOneSmaller:
    def test_bridge_removal_excluded(self):
        # path A-B-C: removing the middle edge disconnects -> only the two
        # leaf-edge removals yield fragments.
        g = graph_from_spec(
            {0: "A", 1: "B", 2: "C", 3: "D"}, [(0, 1), (1, 2), (2, 3)]
        )
        subs = connected_one_smaller_subgraphs(g)
        assert len(subs) == 2
        assert all(s.num_edges == 2 and s.is_connected() for s in subs)

    def test_leaf_removal_drops_isolated_node(self):
        g = graph_from_spec({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)])
        for sub in connected_one_smaller_subgraphs(g):
            assert sub.num_nodes == 2  # dangling endpoint removed

    def test_cycle_all_removals_valid(self):
        g = graph_from_spec(
            {0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2), (2, 0)]
        )
        assert len(connected_one_smaller_subgraphs(g)) == 3

    def test_single_edge_yields_nothing(self):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        assert connected_one_smaller_subgraphs(g) == []
