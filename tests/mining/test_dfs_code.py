"""DFSCode state machinery (rightmost path, graph building, minimality)."""

from repro.graph.canonical import canonical_code
from repro.mining.dfs_code import DFSCode
from repro.testing import graph_from_spec


class TestDfsCode:
    def test_single_edge(self):
        code = DFSCode(((0, 1, "A", "", "B"),))
        assert len(code) == 1
        assert code.num_vertices == 2
        assert code.rightmost_path == (0, 1)

    def test_path_rightmost(self):
        code = DFSCode((
            (0, 1, "A", "", "A"),
            (1, 2, "A", "", "A"),
        ))
        assert code.rightmost_path == (0, 1, 2)

    def test_branch_rightmost(self):
        # Star: 0-1, 0-2; the rightmost path goes through the newest branch.
        code = DFSCode((
            (0, 1, "A", "", "A"),
            (0, 2, "A", "", "B"),
        ))
        assert code.rightmost_path == (0, 2)

    def test_backward_edge_keeps_path(self):
        # Triangle: forward 0-1, forward 1-2, backward 2-0.
        code = DFSCode((
            (0, 1, "A", "", "A"),
            (1, 2, "A", "", "A"),
            (2, 0, "A", "", "A"),
        ))
        assert code.rightmost_path == (0, 1, 2)
        assert code.num_vertices == 3

    def test_to_graph(self):
        code = DFSCode((
            (0, 1, "A", "x", "B"),
            (1, 2, "B", "", "C"),
        ))
        g = code.to_graph()
        assert g.num_nodes == 3
        assert g.label(0) == "A"
        assert g.edge_label(0, 1) == "x"
        assert g.edge_label(1, 2) is None

    def test_child_extends(self):
        code = DFSCode(((0, 1, "A", "", "A"),))
        child = code.child((1, 2, "A", "", "B"))
        assert len(child) == 2
        assert len(code) == 1  # parent untouched

    def test_minimality_true(self):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        min_code = canonical_code(g)
        assert DFSCode(min_code).is_minimal()

    def test_minimality_false(self):
        # (0,1,B,,A) is the flipped, non-minimal code of edge A-B.
        assert not DFSCode(((0, 1, "B", "", "A"),)).is_minimal()

    def test_canonical_returns_tuples(self):
        tuples = ((0, 1, "A", "", "A"),)
        assert DFSCode(tuples).canonical() == tuples
