"""Fragment record semantics."""

from repro.graph import canonical_code
from repro.mining import Fragment, is_frequent
from repro.testing import graph_from_spec


class TestFragment:
    def test_support_is_fsg_count(self):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        frag = Fragment(
            code=canonical_code(g), graph=g, fsg_ids=frozenset({1, 4, 9})
        )
        assert frag.support == 3

    def test_size_is_edge_count(self):
        g = graph_from_spec({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)])
        frag = Fragment(code=canonical_code(g), graph=g, fsg_ids=frozenset())
        assert frag.size == 2

    def test_equality_by_code(self):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        h = graph_from_spec({5: "B", 9: "A"}, [(5, 9)])
        f1 = Fragment(code=canonical_code(g), graph=g, fsg_ids=frozenset({1}))
        f2 = Fragment(code=canonical_code(h), graph=h, fsg_ids=frozenset({2}))
        assert f1 == f2  # same isomorphism class

    def test_is_frequent_threshold(self):
        assert is_frequent(5, 5)
        assert not is_frequent(4, 5)
