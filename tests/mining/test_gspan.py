"""gSpan: exact agreement with brute-force frequent-fragment enumeration."""

import random
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MiningError
from repro.graph import GraphDatabase, canonical_code
from repro.mining import mine_frequent_fragments
from repro.testing import all_connected_edge_subsets, graph_from_spec, small_database


def brute_force_frequent(db, min_support, max_edges):
    """Ground truth: enumerate every connected fragment of every graph."""
    support = defaultdict(set)
    for gid, g in db.items():
        codes = set()
        for subset in all_connected_edge_subsets(g, max_edges):
            codes.add(canonical_code(g.edge_subgraph(subset)))
        for code in codes:
            support[code].add(gid)
    return {
        code: ids for code, ids in support.items() if len(ids) >= min_support
    }


class TestAgainstBruteForce:
    @given(st.integers(0, 1_000), st.integers(2, 8), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_fragments_and_supports_match(self, seed, min_sup, max_edges):
        db = small_database(seed=seed, num_graphs=12, max_nodes=6)
        truth = brute_force_frequent(db, min_sup, max_edges)
        mined = mine_frequent_fragments(db, min_sup, max_edges)
        assert set(mined) == set(truth)
        for code, frag in mined.items():
            assert set(frag.fsg_ids) == truth[code]

    def test_single_graph_database(self):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        db = GraphDatabase([g])
        mined = mine_frequent_fragments(db, 1, 2)
        # fragments: A-B (x1 class), A-B-A path
        assert len(mined) == 2


class TestProperties:
    def test_downward_closure(self, small_db):
        """Every subgraph of a frequent fragment is frequent (anti-monotone)."""
        from repro.mining.dif import connected_one_smaller_subgraphs

        mined = mine_frequent_fragments(small_db, 5, 4)
        for frag in mined.values():
            for sub in connected_one_smaller_subgraphs(frag.graph):
                assert canonical_code(sub) in mined

    def test_support_monotone(self, small_db):
        from repro.mining.dif import connected_one_smaller_subgraphs

        mined = mine_frequent_fragments(small_db, 5, 4)
        for frag in mined.values():
            for sub in connected_one_smaller_subgraphs(frag.graph):
                parent = mined[canonical_code(sub)]
                assert frag.fsg_ids <= parent.fsg_ids

    def test_max_edges_respected(self, small_db):
        mined = mine_frequent_fragments(small_db, 5, 3)
        assert all(f.size <= 3 for f in mined.values())

    def test_keys_are_canonical(self, small_db):
        mined = mine_frequent_fragments(small_db, 5, 3)
        for code, frag in mined.items():
            assert canonical_code(frag.graph) == code

    def test_fragment_graphs_connected(self, small_db):
        mined = mine_frequent_fragments(small_db, 5, 4)
        assert all(f.graph.is_connected() for f in mined.values())

    def test_higher_support_fewer_fragments(self, small_db):
        low = mine_frequent_fragments(small_db, 3, 3)
        high = mine_frequent_fragments(small_db, 10, 3)
        assert set(high) <= set(low)


class TestValidation:
    def test_rejects_zero_support(self, small_db):
        with pytest.raises(MiningError):
            mine_frequent_fragments(small_db, 0, 3)

    def test_rejects_zero_max_edges(self, small_db):
        with pytest.raises(MiningError):
            mine_frequent_fragments(small_db, 1, 0)

    def test_empty_database(self):
        assert mine_frequent_fragments(GraphDatabase(), 1, 3) == {}
