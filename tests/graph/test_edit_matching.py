"""Edit-operation matching: the alternative similarity measure of Sec. IV-A."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import is_subgraph_isomorphic
from repro.graph.edit_matching import edit_matching_cost, edit_similarity_search
from repro.graph.generators import random_connected_graph
from repro.testing import graph_from_spec, sample_subgraph


class TestEditMatchingCost:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_zero_iff_contained(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        q = random_connected_graph(rng, n, rng.randint(n - 1, n + 1), "AB")
        m = rng.randint(2, 6)
        g = random_connected_graph(rng, m, rng.randint(m - 1, m + 2), "AB")
        cost = edit_matching_cost(q, g)
        if cost == 0:
            assert is_subgraph_isomorphic(q, g)
        if is_subgraph_isomorphic(q, g):
            assert cost == 0

    def test_single_label_mismatch(self):
        q = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        g = graph_from_spec({0: "A", 1: "C"}, [(0, 1)])
        assert edit_matching_cost(q, g) == 1

    def test_single_missing_edge(self):
        q = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2), (2, 0)])
        g = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        assert edit_matching_cost(q, g) == 1  # the triangle-closing edge

    def test_query_larger_than_target(self):
        q = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        g = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        assert edit_matching_cost(q, g) is None

    def test_budget_respected(self):
        q = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        g = graph_from_spec({0: "C", 1: "C"}, [(0, 1)])
        assert edit_matching_cost(q, g, max_cost=1) is None  # needs 2 relabels
        assert edit_matching_cost(q, g, max_cost=2) == 2

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=25, deadline=None)
    def test_cost_always_within_trivial_budget(self, seed, small_db):
        """Whenever the target has enough nodes, SOME mapping exists, and its
        cost can never exceed relabeling every node and missing every edge.
        (Edit cost and MCCS distance are incomparable in general — precisely
        the paper's point about edit costs being hard to interpret.)"""
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 2, 4)
        gid = rng.randrange(len(small_db))
        g = small_db[gid]
        if g.num_nodes < q.num_nodes:
            assert edit_matching_cost(q, g) is None
            return
        cost = edit_matching_cost(q, g)
        assert cost is not None
        assert 0 <= cost <= q.num_edges + q.num_nodes


class TestEditSimilaritySearch:
    def test_contains_exact_matches_at_zero(self, small_db):
        rng = random.Random(3)
        q = sample_subgraph(rng, small_db, 2, 3)
        results = edit_similarity_search(q, small_db, budget=1)
        for gid, g in small_db.items():
            if is_subgraph_isomorphic(q, g):
                assert results.get(gid) == 0

    def test_budget_filters(self, small_db):
        q = graph_from_spec({0: "Z", 1: "Z", 2: "Z"}, [(0, 1), (1, 2)])
        strict = edit_similarity_search(q, small_db, budget=0)
        assert strict == {}  # all-Z queries need relabeling
        loose = edit_similarity_search(q, small_db, budget=3)
        assert set(strict) <= set(loose)
