"""Subgraph isomorphism: soundness, completeness, and exact embedding counts."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    count_embeddings,
    find_embedding,
    is_subgraph_isomorphic,
    iter_embeddings,
)
from repro.graph.generators import random_connected_graph, random_connected_subgraph
from repro.testing import brute_force_embeddings, graph_from_spec


def _pair(seed: int):
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    target = random_connected_graph(rng, n, rng.randint(n - 1, n + 2), "AB")
    m = rng.randint(1, 4)
    pattern = random_connected_graph(rng, m, rng.randint(m - 1, m + 1), "AB")
    return pattern, target


class TestAgainstBruteForce:
    @given(st.integers(0, 100_000))
    @settings(max_examples=150, deadline=None)
    def test_embedding_count_matches_brute_force(self, seed):
        pattern, target = _pair(seed)
        assert count_embeddings(pattern, target) == brute_force_embeddings(
            pattern, target
        )

    @given(st.integers(0, 100_000))
    @settings(max_examples=80, deadline=None)
    def test_sampled_subgraph_always_embeds(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 8)
        target = random_connected_graph(rng, n, rng.randint(n - 1, n + 3), "ABC")
        sub = random_connected_subgraph(rng, target, rng.randint(1, target.num_edges))
        assert sub is not None
        assert is_subgraph_isomorphic(sub, target)


class TestSemantics:
    def test_non_induced(self):
        """A path pattern matches inside a triangle: extra edges are allowed."""
        path = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        tri = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2), (0, 2)])
        assert is_subgraph_isomorphic(path, tri)

    def test_labels_must_match(self):
        p = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        t = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        assert not is_subgraph_isomorphic(p, t)

    def test_edge_labels_must_match(self):
        p = Graph(); p.add_node(0, "A"); p.add_node(1, "A"); p.add_edge(0, 1, "x")
        t = Graph(); t.add_node(0, "A"); t.add_node(1, "A"); t.add_edge(0, 1, "y")
        assert not is_subgraph_isomorphic(p, t)

    def test_injective_mapping(self):
        """Two pattern nodes cannot share one target node."""
        p = graph_from_spec({0: "B", 1: "A", 2: "B"}, [(0, 1), (1, 2)])
        t = graph_from_spec({0: "B", 1: "A"}, [(0, 1)])
        assert not is_subgraph_isomorphic(p, t)

    def test_empty_pattern_matches(self):
        t = graph_from_spec({0: "A"}, [])
        assert is_subgraph_isomorphic(Graph(), t)

    def test_pattern_larger_than_target(self):
        p = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        t = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        assert not is_subgraph_isomorphic(p, t)

    def test_disconnected_pattern(self):
        p = graph_from_spec({0: "A", 1: "A", 2: "B", 3: "B"}, [(0, 1), (2, 3)])
        t = graph_from_spec(
            {0: "A", 1: "A", 2: "B", 3: "B", 4: "C"},
            [(0, 1), (1, 4), (4, 2), (2, 3)],
        )
        assert is_subgraph_isomorphic(p, t)

    def test_disconnected_pattern_injectivity_across_components(self):
        p = graph_from_spec({0: "A", 1: "A", 2: "A", 3: "A"}, [(0, 1), (2, 3)])
        t = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        assert not is_subgraph_isomorphic(p, t)


class TestApi:
    def test_find_embedding_valid(self):
        p = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        t = graph_from_spec({0: "B", 1: "A", 2: "B"}, [(0, 1), (1, 2)])
        emb = find_embedding(p, t)
        assert emb is not None
        assert t.label(emb[0]) == "A"
        assert t.label(emb[1]) == "B"
        assert t.has_edge(emb[0], emb[1])

    def test_find_embedding_none(self):
        p = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        t = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        assert find_embedding(p, t) is None

    def test_limit_stops_enumeration(self):
        p = graph_from_spec({0: "A"}, [])
        t = graph_from_spec({i: "A" for i in range(5)}, [(i, i + 1) for i in range(4)])
        assert count_embeddings(p, t) == 5
        assert count_embeddings(p, t, limit=2) == 2

    def test_iter_embeddings_distinct(self):
        p = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        t = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2), (0, 2)])
        embs = list(iter_embeddings(p, t))
        assert len(embs) == 6  # 3 edges x 2 orientations
        assert len({tuple(sorted(e.items())) for e in embs}) == 6
