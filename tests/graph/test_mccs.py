"""MCCS and the similarity measures of Definitions 1-3."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    is_similar,
    mccs_at_least,
    mccs_size,
    subgraph_distance,
    subgraph_similarity_degree,
)
from repro.graph.generators import random_connected_graph, random_connected_subgraph
from repro.graph.mccs import iter_connected_subgraph_levels
from repro.testing import brute_force_mccs, graph_from_spec


def _pair(seed: int):
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    q = random_connected_graph(rng, n, rng.randint(n - 1, n + 2), "AB")
    m = rng.randint(2, 6)
    g = random_connected_graph(rng, m, rng.randint(m - 1, m + 2), "AB")
    return q, g


class TestMccsSize:
    @given(st.integers(0, 100_000))
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, seed):
        q, g = _pair(seed)
        assert mccs_size(q, g) == brute_force_mccs(q, g)

    def test_full_match(self):
        q = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        g = graph_from_spec({0: "B", 1: "A", 2: "B"}, [(0, 1), (1, 2)])
        assert mccs_size(q, g) == 1

    def test_no_common_edge(self):
        q = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        g = graph_from_spec({0: "B", 1: "B"}, [(0, 1)])
        assert mccs_size(q, g) == 0

    def test_paper_example_shape(self):
        """Figure 1 analogue: a query missing k edges matches at |q|-k."""
        q = graph_from_spec(
            {i: "C" for i in range(5)},
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        )
        g = graph_from_spec(
            {i: "C" for i in range(4)}, [(0, 1), (1, 2), (2, 3)]
        )
        assert mccs_size(q, g) == 3  # the longest path piece of the 5-cycle

    def test_lower_bound_early_exit(self):
        q = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        g = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        # true mccs is 1; with lower_bound 2 the search reports "below bound"
        assert mccs_size(q, g, lower_bound=2) == 0
        assert mccs_size(q, g) == 1

    @given(st.integers(0, 50_000))
    @settings(max_examples=50, deadline=None)
    def test_subgraph_gives_full_size(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 7)
        g = random_connected_graph(rng, n, rng.randint(n - 1, n + 2), "AB")
        sub = random_connected_subgraph(rng, g, rng.randint(1, g.num_edges))
        assert mccs_size(sub, g) == sub.num_edges


class TestMeasures:
    def test_similarity_degree_definition(self):
        q = graph_from_spec(
            {0: "A", 1: "A", 2: "A", 3: "B"}, [(0, 1), (1, 2), (2, 3)]
        )
        g = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        assert subgraph_similarity_degree(g, q) == pytest.approx(2 / 3)

    def test_distance_definition(self):
        q = graph_from_spec(
            {0: "A", 1: "A", 2: "A", 3: "B"}, [(0, 1), (1, 2), (2, 3)]
        )
        g = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        assert subgraph_distance(q, g) == 1

    def test_distance_zero_means_contained(self):
        q = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        assert subgraph_distance(q, g) == 0

    def test_degree_needs_nonempty_query(self):
        with pytest.raises(ValueError):
            subgraph_similarity_degree(Graph(), Graph())

    @given(st.integers(0, 50_000), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_is_similar_consistent_with_distance(self, seed, sigma):
        q, g = _pair(seed)
        assert is_similar(q, g, sigma) == (subgraph_distance(q, g) <= sigma)

    @given(st.integers(0, 50_000), st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_mccs_at_least_consistent(self, seed, k):
        q, g = _pair(seed)
        assert mccs_at_least(q, g, k) == (mccs_size(q, g) >= k)

    def test_mccs_at_least_trivial(self):
        q = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        g = graph_from_spec({0: "B", 1: "B"}, [(0, 1)])
        assert mccs_at_least(q, g, 0)


class TestLevelEnumeration:
    def test_levels_complete(self):
        """Every connected edge subset appears at its level exactly once."""
        q = graph_from_spec(
            {0: "A", 1: "A", 2: "A", 3: "A"},
            [(0, 1), (1, 2), (2, 0), (2, 3)],
        )
        from repro.testing import all_connected_edge_subsets

        truth = all_connected_edge_subsets(q)
        seen = set()
        for k, subsets in iter_connected_subgraph_levels(q):
            for s in subsets:
                assert len(s) == k
                seen.add(s)
        assert seen == truth

    def test_rejects_disconnected_query(self):
        g = graph_from_spec({0: "A", 1: "A", 2: "B", 3: "B"}, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            list(iter_connected_subgraph_levels(g))
