"""Random graph generators: connectivity, determinism, parameter handling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    perturb_with_new_edge,
    random_connected_graph,
    random_connected_subgraph,
)


class TestRandomConnectedGraph:
    @given(st.integers(0, 10_000), st.integers(1, 12), st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_always_connected(self, seed, n, extra):
        g = random_connected_graph(random.Random(seed), n, n - 1 + extra, "AB")
        assert g.num_nodes == n
        assert g.is_connected()

    def test_edge_count_clamped(self):
        g = random_connected_graph(random.Random(0), 4, 100, "A")
        assert g.num_edges == 6  # complete graph on 4 nodes

    def test_min_edge_count_spanning_tree(self):
        g = random_connected_graph(random.Random(0), 5, 0, "A")
        assert g.num_edges == 4

    def test_deterministic_per_seed(self):
        g1 = random_connected_graph(random.Random(42), 6, 8, "ABC")
        g2 = random_connected_graph(random.Random(42), 6, 8, "ABC")
        assert g1.same_structure(g2)

    def test_label_weights(self):
        g = random_connected_graph(
            random.Random(0), 50, 60, ["X", "Y"], label_weights=[1.0, 0.0]
        )
        assert g.node_labels() == {"X": 50}

    def test_edge_labels(self):
        g = random_connected_graph(
            random.Random(0), 4, 5, "A", edge_labels=["s"]
        )
        assert all(g.edge_label(u, v) == "s" for u, v in g.edges())

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            random_connected_graph(random.Random(0), 0, 0, "A")

    def test_single_node(self):
        g = random_connected_graph(random.Random(0), 1, 0, "A")
        assert g.num_nodes == 1
        assert g.num_edges == 0


class TestRandomConnectedSubgraph:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_connected_and_sized(self, seed):
        rng = random.Random(seed)
        g = random_connected_graph(rng, 7, 9, "AB")
        k = rng.randint(1, g.num_edges)
        sub = random_connected_subgraph(rng, g, k)
        assert sub is not None
        assert sub.num_edges == k
        assert sub.is_connected()

    def test_too_large_returns_none(self):
        g = random_connected_graph(random.Random(0), 3, 2, "A")
        assert random_connected_subgraph(random.Random(0), g, 10) is None

    def test_zero_edges_returns_none(self):
        g = random_connected_graph(random.Random(0), 3, 2, "A")
        assert random_connected_subgraph(random.Random(0), g, 0) is None


class TestPerturb:
    def test_adds_one_node_and_edge(self):
        g = random_connected_graph(random.Random(0), 4, 4, "A")
        p = perturb_with_new_edge(random.Random(1), g, "Z")
        assert p.num_nodes == g.num_nodes + 1
        assert p.num_edges == g.num_edges + 1
        assert p.is_connected()
        assert "Z" in p.node_labels()

    def test_original_untouched(self):
        g = random_connected_graph(random.Random(0), 4, 4, "A")
        before = g.num_edges
        perturb_with_new_edge(random.Random(1), g, "Z")
        assert g.num_edges == before
