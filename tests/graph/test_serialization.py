"""gSpan-format serialization round trips and error handling."""

import io

import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, GraphDatabase
from repro.graph.serialization import (
    parse_graphs,
    read_database,
    write_database,
    write_graph,
)
from repro.graph.canonical import canonical_code
from repro.testing import graph_from_spec, small_database


class TestRoundTrip:
    def test_database_roundtrip(self, tmp_path):
        db = small_database(seed=3, num_graphs=10)
        path = tmp_path / "db.lg"
        write_database(db, path)
        loaded = read_database(path)
        assert len(loaded) == len(db)
        for gid in range(len(db)):
            assert canonical_code(loaded[gid]) == canonical_code(db[gid])

    def test_edge_labels_roundtrip(self, tmp_path):
        g = Graph()
        g.add_node(0, "C")
        g.add_node(1, "O")
        g.add_edge(0, 1, "double")
        path = tmp_path / "one.lg"
        write_database(GraphDatabase([g]), path)
        loaded = read_database(path)
        (u, v), = loaded[0].edges()
        assert loaded[0].edge_label(u, v) == "double"

    def test_write_graph_format(self):
        g = graph_from_spec({0: "C", 1: "N"}, [(0, 1)])
        buf = io.StringIO()
        write_graph(g, buf, gid=7)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "t # 7"
        assert lines[1].startswith("v 0 ")
        assert lines[3] == "e 0 1"


class TestParsing:
    def test_terminator_line(self):
        graphs = parse_graphs(["t # 0", "v 0 A", "v 1 A", "e 0 1", "t # -1"])
        assert len(graphs) == 1

    def test_blank_and_comment_lines_skipped(self):
        graphs = parse_graphs(
            ["", "# header", "t # 0", "v 0 A", "v 1 A", "e 0 1"]
        )
        assert len(graphs) == 1

    def test_vertex_before_transaction(self):
        with pytest.raises(GraphError):
            parse_graphs(["v 0 A"])

    def test_edge_before_transaction(self):
        with pytest.raises(GraphError):
            parse_graphs(["e 0 1"])

    def test_malformed_vertex(self):
        with pytest.raises(GraphError):
            parse_graphs(["t # 0", "v 0"])

    def test_malformed_edge(self):
        with pytest.raises(GraphError):
            parse_graphs(["t # 0", "v 0 A", "v 1 A", "e 0"])

    def test_unknown_record(self):
        with pytest.raises(GraphError):
            parse_graphs(["x 1 2"])

    def test_edge_label_parsed(self):
        graphs = parse_graphs(["t # 0", "v 0 A", "v 1 A", "e 0 1 s"])
        (u, v), = graphs[0].edges()
        assert graphs[0].edge_label(u, v) == "s"
