"""Canonical codes: equal iff isomorphic (the cam(g) contract, Section VII)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    are_isomorphic,
    cam,
    canonical_code,
    code_to_graph,
)
from repro.exceptions import GraphError
from repro.graph.generators import random_connected_graph
from repro.testing import brute_force_isomorphic, graph_from_spec


def _random_graph(seed: int, n_lo=1, n_hi=7, labels="ABC") -> Graph:
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    return random_connected_graph(rng, n, rng.randint(n - 1, n + 3), labels)


class TestInvariance:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=120, deadline=None)
    def test_code_invariant_under_relabeling(self, seed, perm_seed):
        g = _random_graph(seed)
        rng = random.Random(perm_seed)
        nodes = list(g.nodes())
        rng.shuffle(nodes)
        g2 = g.relabel_nodes({old: 1000 + i for i, old in enumerate(nodes)})
        assert canonical_code(g) == canonical_code(g2)

    def test_cam_alias(self):
        g = graph_from_spec({0: "C", 1: "O"}, [(0, 1)])
        assert cam(g) == canonical_code(g)

    def test_single_edge_orientation(self):
        a = graph_from_spec({0: "C", 1: "O"}, [(0, 1)])
        b = graph_from_spec({0: "O", 1: "C"}, [(0, 1)])
        assert canonical_code(a) == canonical_code(b)

    def test_edge_labels_distinguish(self):
        a = Graph()
        a.add_node(0, "C"); a.add_node(1, "C"); a.add_edge(0, 1, "s")
        b = Graph()
        b.add_node(0, "C"); b.add_node(1, "C"); b.add_edge(0, 1, "d")
        assert canonical_code(a) != canonical_code(b)


class TestCompleteness:
    def test_iff_over_all_3node_graphs(self):
        """Exhaustive: same code <=> isomorphic, over every connected labeled
        graph with 3 nodes and 2 labels."""
        graphs = []
        pairs = list(itertools.combinations(range(3), 2))
        for labeling in itertools.product("AB", repeat=3):
            for r in range(2, len(pairs) + 1):
                for es in itertools.combinations(pairs, r):
                    g = Graph()
                    for i, lab in enumerate(labeling):
                        g.add_node(i, lab)
                    for u, v in es:
                        g.add_edge(u, v)
                    if g.is_connected():
                        graphs.append(g)
        for g1, g2 in itertools.combinations(graphs, 2):
            same_code = canonical_code(g1) == canonical_code(g2)
            assert same_code == brute_force_isomorphic(g1, g2)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_different_graphs_random(self, seed1, seed2):
        g1 = _random_graph(seed1, n_hi=5)
        g2 = _random_graph(seed2, n_hi=5)
        same_code = canonical_code(g1) == canonical_code(g2)
        assert same_code == brute_force_isomorphic(g1, g2)


class TestSpecialForms:
    def test_empty_graph(self):
        assert canonical_code(Graph()) == ()

    def test_single_node(self):
        g = Graph()
        g.add_node("x", "C")
        code = canonical_code(g)
        assert len(code) == 1
        assert code[0][2] == "C"

    def test_single_nodes_differ_by_label(self):
        g1 = Graph(); g1.add_node(0, "C")
        g2 = Graph(); g2.add_node(0, "O")
        assert canonical_code(g1) != canonical_code(g2)

    def test_disconnected_codes(self):
        g = graph_from_spec(
            {0: "A", 1: "A", 2: "B", 3: "B"}, [(0, 1), (2, 3)]
        )
        h = graph_from_spec(
            {0: "B", 1: "B", 2: "A", 3: "A"}, [(0, 1), (2, 3)]
        )
        assert canonical_code(g) == canonical_code(h)

    def test_disconnected_vs_connected_differ(self):
        g = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2)])
        h = graph_from_spec(
            {0: "A", 1: "A", 2: "A", 3: "A"}, [(0, 1), (2, 3)]
        )
        assert canonical_code(g) != canonical_code(h)


class TestRoundTrip:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_code_to_graph_roundtrip(self, seed):
        g = _random_graph(seed)
        rebuilt = code_to_graph(canonical_code(g))
        assert canonical_code(rebuilt) == canonical_code(g)
        assert are_isomorphic(g, rebuilt)

    def test_code_to_graph_single_node(self):
        g = Graph()
        g.add_node(9, "Hg")
        rebuilt = code_to_graph(canonical_code(g))
        assert rebuilt.num_nodes == 1
        assert rebuilt.label(0) == "Hg"

    def test_code_to_graph_rejects_disconnected(self):
        g = graph_from_spec({0: "A", 1: "A", 2: "B", 3: "B"}, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            code_to_graph(canonical_code(g))

    def test_code_to_graph_empty(self):
        assert code_to_graph(()).num_nodes == 0


class TestAreIsomorphic:
    def test_fast_rejects(self):
        g1 = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        g2 = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        assert not are_isomorphic(g1, g2)

    def test_triangle_vs_path(self):
        tri = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2), (0, 2)])
        path = graph_from_spec(
            {0: "A", 1: "A", 2: "A", 3: "A"}, [(0, 1), (1, 2), (2, 3)]
        )
        assert not are_isomorphic(tri, path)

    def test_self(self):
        g = _random_graph(42)
        assert are_isomorphic(g, g.copy())
