"""GraphDatabase container semantics (Section III constraints)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, GraphDatabase
from repro.testing import graph_from_spec


def _g(*edges, labels=None):
    nodes = {n for e in edges for n in e}
    return graph_from_spec({n: (labels or {}).get(n, "A") for n in nodes}, edges)


class TestConstruction:
    def test_ids_are_positional(self):
        db = GraphDatabase([_g((0, 1)), _g((0, 1), (1, 2))])
        assert len(db) == 2
        assert db[0].num_edges == 1
        assert db.ids() == {0, 1}

    def test_add_returns_id(self):
        db = GraphDatabase()
        assert db.add(_g((0, 1))) == 0
        assert db.add(_g((0, 1))) == 1

    def test_rejects_edgeless_graph(self):
        g = Graph()
        g.add_node(0, "A")
        with pytest.raises(GraphError):
            GraphDatabase([g])

    def test_rejects_disconnected_graph(self):
        g = graph_from_spec({0: "A", 1: "A", 2: "B", 3: "B"}, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            GraphDatabase([g])

    def test_add_rejects_invalid(self):
        db = GraphDatabase()
        g = Graph()
        g.add_node(0, "A")
        with pytest.raises(GraphError):
            db.add(g)


class TestVocabulary:
    def test_node_label_universe_sorted(self):
        db = GraphDatabase(
            [_g((0, 1), labels={0: "O", 1: "C"}), _g((0, 1), labels={0: "N", 1: "C"})]
        )
        assert db.node_label_universe() == ["C", "N", "O"]

    def test_edge_label_universe(self):
        g = Graph()
        g.add_node(0, "A"); g.add_node(1, "A"); g.add_edge(0, 1, "s")
        h = Graph()
        h.add_node(0, "A"); h.add_node(1, "A"); h.add_edge(0, 1)
        db = GraphDatabase([g, h])
        assert db.edge_label_universe() == [None, "s"]

    def test_stats(self):
        db = GraphDatabase([_g((0, 1)), _g((0, 1), (1, 2), (2, 0))])
        stats = db.stats()
        assert stats["graphs"] == 2
        assert stats["avg_edges"] == 2.0
        assert stats["max_nodes"] == 3

    def test_stats_empty(self):
        assert GraphDatabase().stats()["graphs"] == 0

    def test_items_iteration(self):
        db = GraphDatabase([_g((0, 1))])
        items = list(db.items())
        assert items[0][0] == 0
        assert items[0][1].num_edges == 1
