"""Unit tests for the labeled-graph data model."""

import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, edge_key
from repro.testing import graph_from_spec


@pytest.fixture
def triangle():
    return graph_from_spec({0: "C", 1: "C", 2: "O"}, [(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert len(g) == 0

    def test_add_node_and_label(self):
        g = Graph()
        g.add_node(0, "C")
        assert g.has_node(0)
        assert g.label(0) == "C"

    def test_add_node_idempotent_same_label(self):
        g = Graph()
        g.add_node(0, "C")
        g.add_node(0, "C")  # no error
        assert g.num_nodes == 1

    def test_add_node_relabel_rejected(self):
        g = Graph()
        g.add_node(0, "C")
        with pytest.raises(GraphError):
            g.add_node(0, "O")

    def test_add_edge_requires_nodes(self):
        g = Graph()
        g.add_node(0, "C")
        with pytest.raises(GraphError):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        g.add_node(0, "C")
        with pytest.raises(GraphError):
            g.add_edge(0, 0)

    def test_duplicate_edge_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_edge(0, 1)
        with pytest.raises(GraphError):
            triangle.add_edge(1, 0)  # same undirected edge

    def test_size_is_edge_count(self, triangle):
        # The paper defines |G| = |E|.
        assert len(triangle) == 3
        assert triangle.num_edges == 3

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)], {0: "A", 1: "B", 2: "C"})
        assert g.num_edges == 2
        assert g.label(1) == "B"

    def test_from_edges_with_edge_labels(self):
        g = Graph.from_edges(
            [(0, 1)], {0: "A", 1: "B"}, edge_labels={(0, 1): "double"}
        )
        assert g.edge_label(0, 1) == "double"

    def test_edge_labels_default_none(self, triangle):
        assert triangle.edge_label(0, 1) is None


class TestAccessors:
    def test_label_missing_node(self):
        with pytest.raises(GraphError):
            Graph().label(0)

    def test_edge_label_missing_edge(self, triangle):
        triangle2 = triangle.copy()
        with pytest.raises(GraphError):
            triangle2.edge_label(0, 99)

    def test_neighbors(self, triangle):
        assert set(triangle.neighbors(0)) == {1, 2}

    def test_neighbors_missing_node(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(99)

    def test_degree(self, triangle):
        assert triangle.degree(1) == 2

    def test_edges_yield_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3

    def test_node_labels_multiset(self, triangle):
        assert triangle.node_labels() == {"C": 2, "O": 1}

    def test_edge_label_triples_sorted_ends(self, triangle):
        triples = triangle.edge_label_triples()
        assert triples[("C", None, "C")] == 1
        assert triples[("C", None, "O")] == 2


class TestRemoval:
    def test_remove_edge(self, triangle):
        g = triangle.copy()
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 2
        assert g.has_node(0)  # endpoints stay

    def test_remove_missing_edge(self, triangle):
        with pytest.raises(GraphError):
            triangle.copy().remove_edge(0, 99)

    def test_remove_node_drops_incident_edges(self, triangle):
        g = triangle.copy()
        g.remove_node(0)
        assert g.num_nodes == 2
        assert g.num_edges == 1

    def test_remove_missing_node(self):
        with pytest.raises(GraphError):
            Graph().remove_node(0)


class TestStructure:
    def test_empty_graph_not_connected(self):
        assert not Graph().is_connected()

    def test_single_node_connected(self):
        g = Graph()
        g.add_node(0, "C")
        assert g.is_connected()

    def test_disconnected(self):
        g = graph_from_spec({0: "A", 1: "A", 2: "B", 3: "B"}, [(0, 1), (2, 3)])
        assert not g.is_connected()
        comps = g.connected_components()
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]

    def test_connected_components_singleton(self):
        g = Graph()
        g.add_node(5, "X")
        assert g.connected_components() == [frozenset({5})]

    def test_subgraph_induced(self, triangle):
        sub = triangle.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.has_edge(0, 1)
        assert sub.num_edges == 1

    def test_edge_subgraph(self, triangle):
        sub = triangle.edge_subgraph([(0, 1), (1, 2)])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert not sub.has_edge(0, 2)

    def test_edge_subgraph_missing_edge(self, triangle):
        with pytest.raises(GraphError):
            triangle.edge_subgraph([(0, 99)])

    def test_copy_is_independent(self, triangle):
        g = triangle.copy()
        g.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)

    def test_relabel_nodes(self, triangle):
        g = triangle.relabel_nodes({0: "x", 1: "y", 2: "z"})
        assert g.has_edge("x", "y")
        assert g.label("z") == "O"

    def test_relabel_must_be_injective(self, triangle):
        with pytest.raises(GraphError):
            triangle.relabel_nodes({0: "x", 1: "x"})

    def test_same_structure(self, triangle):
        assert triangle.same_structure(triangle.copy())
        other = triangle.copy()
        other.remove_edge(0, 1)
        assert not triangle.same_structure(other)


class TestEdgeKey:
    def test_orders_ints(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_orders_strings(self):
        assert edge_key("b", "a") == ("a", "b")

    def test_mixed_types_stable(self):
        assert edge_key(1, "a") == edge_key("a", 1)
