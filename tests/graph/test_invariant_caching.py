"""Cached graph invariants and memoized canonical codes stay correct under
interleaved mutation (the contract documented in docs/PERFORMANCE.md)."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import canonical
from repro.graph.canonical import canonical_code
from repro.graph.generators import random_connected_graph
from repro.graph.labeled_graph import Graph

LABELS = "ABC"
EDGE_LABELS = (None, "s", "d")


# ----------------------------------------------------------------------
# fresh (uncached) recomputation of every invariant, for comparison
# ----------------------------------------------------------------------
def _fresh_node_labels(g: Graph) -> Counter:
    return Counter(g.label(n) for n in g.nodes())


def _fresh_triples(g: Graph) -> Counter:
    out: Counter = Counter()
    for u, v in g.edges():
        lu, lv = g.label(u), g.label(v)
        if lu > lv:
            lu, lv = lv, lu
        out[(lu, g.edge_label(u, v), lv)] += 1
    return out


def _assert_invariants_fresh(g: Graph) -> None:
    assert g.node_labels() == _fresh_node_labels(g)
    assert g.edge_label_triples() == _fresh_triples(g)
    assert g.degree_map() == {n: g.degree(n) for n in g.nodes()}
    by_label = {}
    for n in g.nodes():
        by_label.setdefault(g.label(n), set()).add(n)
    assert {l: set(ns) for l, ns in g.nodes_by_label().items()} == by_label
    # A structural copy starts with cold caches; equal structure must give an
    # equal fingerprint and an equal canonical code.
    cold = g.copy()
    assert g.fingerprint() == cold.fingerprint()
    assert canonical_code(g) == canonical._compute_canonical_code(cold)


def _mutate_once(rng: random.Random, g: Graph, next_id: list) -> None:
    ops = ["add_node"]
    nodes = list(g.nodes())
    if len(nodes) >= 2:
        ops.append("add_edge")
    if g.num_edges:
        ops.append("remove_edge")
    if nodes:
        ops.append("remove_node")
    op = rng.choice(ops)
    if op == "add_node":
        g.add_node(next_id[0], rng.choice(LABELS))
        next_id[0] += 1
    elif op == "add_edge":
        for _ in range(10):  # may be complete; a no-op attempt is fine
            u, v = rng.sample(nodes, 2)
            if not g.has_edge(u, v):
                g.add_edge(u, v, rng.choice(EDGE_LABELS))
                break
    elif op == "remove_edge":
        u, v = rng.choice(sorted(g.edges()))
        g.remove_edge(u, v)
    else:
        g.remove_node(rng.choice(nodes))


class TestVersionGuardedInvariants:
    @given(seed=st.integers(0, 10**9), steps=st.integers(1, 25))
    @settings(max_examples=40, deadline=None)
    def test_invariants_track_interleaved_mutation(self, seed, steps):
        """Read invariants, mutate, re-read: caches never go stale."""
        rng = random.Random(seed)
        g = Graph()
        next_id = [0]
        _assert_invariants_fresh(g)  # empty graph
        for _ in range(steps):
            _mutate_once(rng, g, next_id)
            if rng.random() < 0.5:
                g.node_labels()  # warm some caches between mutations
                g.degree_map()
            _assert_invariants_fresh(g)

    def test_mutators_bump_version_and_invalidate(self):
        g = Graph()
        g.add_node(0, "A")
        g.add_node(1, "B")
        v0 = g.version
        labels_before = g.node_labels()
        assert g.node_labels() is labels_before  # cache hit: shared object

        g.add_edge(0, 1, "s")
        assert g.version > v0
        assert g.edge_label_triples() == Counter({("A", "s", "B"): 1})
        g.remove_edge(0, 1)
        assert g.edge_label_triples() == Counter()
        g.remove_node(1)
        assert g.node_labels() == Counter({"A": 1})
        # re-adding an existing node is a no-op and must not bump the version
        v = g.version
        g.add_node(0, "A")
        assert g.version == v


class TestCanonicalMemoization:
    @given(seed=st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_memoized_code_tracks_mutation(self, seed):
        """canonical_code == the direct computation, before and after edits."""
        rng = random.Random(seed)
        n = rng.randint(2, 7)
        m = rng.randint(n - 1, min(n * (n - 1) // 2, n + 2))
        g = random_connected_graph(rng, n, m, LABELS)
        assert canonical_code(g) == canonical._compute_canonical_code(g)
        # Grow: a fresh leaf keeps the graph connected.
        new = max(g.nodes()) + 1
        g.add_node(new, rng.choice(LABELS))
        g.add_edge(new, rng.choice([n for n in g.nodes() if n != new]),
                   rng.choice(EDGE_LABELS))
        assert canonical_code(g) == canonical._compute_canonical_code(g)
        # Shrink back.
        g.remove_node(new)
        assert canonical_code(g) == canonical._compute_canonical_code(g)

    @given(seed=st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_code_invariant_under_node_renaming(self, seed):
        """The LRU key includes node ids, so a renamed copy misses the cache;
        its code must still equal the original's (isomorphism invariance)."""
        rng = random.Random(seed)
        n = rng.randint(2, 6)
        m = rng.randint(n - 1, min(n * (n - 1) // 2, n + 2))
        g = random_connected_graph(rng, n, m, LABELS)
        nodes = sorted(g.nodes())
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        renamed = g.relabel_nodes(
            {n: 1000 + s for n, s in zip(nodes, shuffled)}
        )
        assert g.fingerprint() == renamed.fingerprint()
        assert canonical_code(g) == canonical_code(renamed)

    def test_lru_keyed_by_exact_structure(self):
        """Equal label multisets and edge counts must not collide in the LRU:
        non-isomorphic graphs get distinct codes, renamed copies get a fresh
        entry but the same code."""
        canonical.clear_cache()
        labels = {0: "A", 1: "A", 2: "A", 3: "A"}
        path = Graph.from_edges([(0, 1), (1, 2), (2, 3)], labels)
        star = Graph.from_edges([(0, 1), (0, 2), (0, 3)], labels)
        assert canonical_code(path) != canonical_code(star)
        renamed = star.relabel_nodes({0: 3, 3: 0})
        assert canonical_code(renamed) == canonical_code(star)
        stats = canonical.cache_stats()
        assert stats["misses"] >= 3  # path, star, renamed: three distinct keys

    def test_cache_disabled_still_correct(self, monkeypatch):
        monkeypatch.setenv("REPRO_CANONICAL_CACHE", "0")
        g = Graph.from_edges([(0, 1), (1, 2)], {0: "A", 1: "B", 2: "C"})
        assert canonical_code(g) == canonical._compute_canonical_code(g)
        assert canonical_code(g) == canonical._compute_canonical_code(g)
