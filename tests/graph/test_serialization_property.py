"""Property-based round-trip testing of the gSpan serialization."""

import io
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphDatabase, canonical_code
from repro.graph.generators import random_connected_graph
from repro.graph.serialization import parse_graphs, write_graph

_LABEL = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1, max_size=6,
)


@given(
    seed=st.integers(0, 100_000),
    labels=st.lists(_LABEL, min_size=1, max_size=5, unique=True),
    edge_labels=st.one_of(
        st.none(), st.lists(_LABEL, min_size=1, max_size=3, unique=True)
    ),
)
@settings(max_examples=80, deadline=None)
def test_write_parse_roundtrip(seed, labels, edge_labels):
    rng = random.Random(seed)
    n = rng.randint(1, 7)
    g = random_connected_graph(
        rng, n, rng.randint(max(n - 1, 1), n + 3), labels,
        edge_labels=edge_labels,
    )
    buf = io.StringIO()
    write_graph(g, buf, gid=0)
    (parsed,) = parse_graphs(buf.getvalue().splitlines())
    assert parsed.num_nodes == g.num_nodes
    assert parsed.num_edges == g.num_edges
    assert canonical_code(parsed) == canonical_code(g)


@given(seed=st.integers(0, 100_000), count=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_multi_graph_file_roundtrip(seed, count, tmp_path_factory):
    from repro.graph.serialization import read_database, write_database

    rng = random.Random(seed)
    graphs = [
        random_connected_graph(rng, rng.randint(2, 6), rng.randint(2, 8), "AB")
        for _ in range(count)
    ]
    db = GraphDatabase(graphs)
    path = tmp_path_factory.mktemp("ser") / "db.lg"
    write_database(db, path)
    loaded = read_database(path)
    assert len(loaded) == count
    for i in range(count):
        assert canonical_code(loaded[i]) == canonical_code(db[i])
