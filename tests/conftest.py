"""Shared fixtures: small mined databases, reused across the whole suite."""

from __future__ import annotations

import pytest

from repro.config import MiningParams
from repro.index import build_indexes
from repro.testing import small_database


@pytest.fixture(scope="session")
def small_db():
    """30 small random graphs over labels A/B/C."""
    return small_database(seed=0, num_graphs=30)


@pytest.fixture(scope="session")
def small_params():
    return MiningParams(min_support=0.2, size_threshold=3, max_fragment_edges=6)


@pytest.fixture(scope="session")
def small_indexes(small_db, small_params):
    return build_indexes(small_db, small_params)


@pytest.fixture(scope="session")
def medium_db():
    """A slightly larger corpus for integration tests."""
    return small_database(seed=7, num_graphs=60, labels="ABCD", max_nodes=8)


@pytest.fixture(scope="session")
def medium_params():
    return MiningParams(min_support=0.15, size_threshold=3, max_fragment_edges=7)


@pytest.fixture(scope="session")
def medium_indexes(medium_db, medium_params):
    return build_indexes(medium_db, medium_params)
