"""Exact verification and SimVerify."""

import random

from repro.core.verification import (
    exact_verification,
    level_fragments_to_verify,
    sim_verify,
)
from repro.graph.generators import random_connected_subgraph
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import connected_order, graph_from_spec


class TestExactVerification:
    def test_verification_free_passthrough(self, small_db):
        q = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        # verification_free trusts the candidate list outright
        out = exact_verification(q, frozenset({3, 1}), small_db, True)
        assert out == [1, 3]

    def test_verifying_filters_false_positives(self, small_db):
        q = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        out = exact_verification(q, frozenset(small_db.ids()), small_db, False)
        assert out == []

    def test_verifying_keeps_true_matches(self, small_db):
        rng = random.Random(0)
        q = random_connected_subgraph(rng, small_db[0], 2)
        out = exact_verification(q, frozenset(small_db.ids()), small_db, False)
        assert 0 in out


class TestSimVerify:
    def _manager(self, indexes, g):
        query = VisualQuery()
        for node in g.nodes():
            query.add_node(node, g.label(node))
        manager = SpigManager(indexes)
        for u, v in connected_order(g):
            eid = query.add_edge(u, v, g.edge_label(u, v))
            manager.on_new_edge(query, eid)
        return query, manager

    def test_level_fragments_are_nifs_only(self, small_db, small_indexes):
        rng = random.Random(2)
        q = random_connected_subgraph(rng, small_db[0], 4)
        query, manager = self._manager(small_indexes, q)
        for level in range(1, query.num_edges + 1):
            for v in level_fragments_to_verify(manager, level):
                assert not v.fragment_list.is_indexed

    def test_sim_verify_positive(self, small_db, small_indexes):
        rng = random.Random(3)
        q = random_connected_subgraph(rng, small_db[0], 3)
        query, manager = self._manager(small_indexes, q)
        vertices = list(manager.vertices_at_level(query.num_edges))
        assert sim_verify(vertices, small_db[0])

    def test_sim_verify_empty_iterable(self, small_db):
        assert not sim_verify([], small_db[0])
