"""Undo/redo snapshots over formulation sessions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_containment_search
from repro.core import PragueEngine
from repro.core.undo import UndoableEngine, restore_snapshot, take_snapshot
from repro.exceptions import QueryError, SessionError
from repro.testing import connected_order, graph_from_spec, sample_subgraph


def _session(db, indexes):
    return UndoableEngine(PragueEngine(db, indexes))


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        engine.add_node(0, "A")
        engine.add_node(1, "B")
        engine.add_edge(0, 1)
        snap = take_snapshot(engine)
        engine.add_node(2, "A")
        engine.add_edge(1, 2)
        restore_snapshot(engine, snap)
        assert engine.query.num_edges == 1
        assert len(engine.manager.spigs) == 1
        assert len(engine.history) == 1

    def test_snapshot_shares_indexes(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        snap = take_snapshot(engine)
        assert snap.manager.indexes is small_indexes  # not deep-copied

    def test_restored_engine_answers_correctly(self, small_db, small_indexes):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 3, 4)
        engine = PragueEngine(small_db, small_indexes)
        for n in q.nodes():
            engine.add_node(n, q.label(n))
        order = connected_order(q)
        for u, v in order[:-1]:
            engine.add_edge(u, v)
        snap = take_snapshot(engine)
        engine.add_edge(*order[-1])
        restore_snapshot(engine, snap)
        # re-play the last edge on the restored state
        engine.add_edge(*order[-1])
        res = engine.run()
        assert res.results.exact_ids == naive_containment_search(q, small_db)


class TestUndoRedo:
    def test_undo_edge_addition(self, small_db, small_indexes):
        session = _session(small_db, small_indexes)
        session.add_node(0, "A")
        session.add_node(1, "B")
        session.add_edge(0, 1)
        assert session.query.num_edges == 1
        session.undo()
        assert session.query.num_edges == 0
        assert session.manager.num_vertices() == 0

    def test_redo(self, small_db, small_indexes):
        session = _session(small_db, small_indexes)
        session.add_node(0, "A")
        session.add_node(1, "B")
        session.add_edge(0, 1)
        rq_before = session.rq
        session.undo()
        session.redo()
        assert session.query.num_edges == 1
        assert session.rq == rq_before

    def test_new_action_clears_redo(self, small_db, small_indexes):
        session = _session(small_db, small_indexes)
        for node, label in ((0, "A"), (1, "B"), (2, "A")):
            session.add_node(node, label)
        session.add_edge(0, 1)
        session.undo()
        session.add_edge(1, 2)  # diverge
        assert not session.can_redo
        with pytest.raises(SessionError):
            session.redo()

    def test_undo_deletion_restores_spigs(self, small_db, small_indexes):
        session = _session(small_db, small_indexes)
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        for n in g.nodes():
            session.add_node(n, g.label(n))
        for u, v in connected_order(g):
            session.add_edge(u, v)
        vertices_before = session.manager.num_vertices()
        session.delete_edge(2)
        session.undo()
        assert session.query.num_edges == 2
        assert session.manager.num_vertices() == vertices_before
        res = session.run()
        assert res.results.exact_ids == naive_containment_search(
            session.query.graph(), small_db
        )

    def test_empty_undo_raises(self, small_db, small_indexes):
        with pytest.raises(SessionError):
            _session(small_db, small_indexes).undo()

    def test_failed_action_pushes_nothing(self, small_db, small_indexes):
        session = _session(small_db, small_indexes)
        session.add_node(0, "A")
        with pytest.raises(QueryError):
            session.add_edge(0, 0)  # self loop refused
        assert not session.can_undo

    def test_limit_bounds_stack(self, small_db, small_indexes):
        session = UndoableEngine(
            PragueEngine(small_db, small_indexes), limit=2
        )
        for node in range(4):
            session.add_node(node, "A")
        session.add_edge(0, 1)
        session.add_edge(1, 2)
        session.add_edge(2, 3)
        assert len(session._undo) == 2

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=10, deadline=None)
    def test_undo_everything_returns_to_empty(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 2, 4)
        session = _session(small_db, small_indexes)
        for n in q.nodes():
            session.add_node(n, q.label(n))
        steps = 0
        for u, v in connected_order(q):
            session.add_edge(u, v)
            steps += 1
        for _ in range(steps):
            session.undo()
        assert session.query.num_edges == 0
        assert session.manager.num_vertices() == 0
        assert not session.can_undo
