"""The paper's "trivial" modification extensions: multi-edge deletion and
node relabeling (footnote 5) — the invariant is always state-equals-fresh."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PragueEngine
from repro.exceptions import QueryError
from repro.testing import drive_engine, graph_from_spec, sample_subgraph


def _fresh_run(db, indexes, graph):
    engine = PragueEngine(db, indexes)
    drive_engine(engine, graph)
    return engine.run()


class TestMultiDeletion:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_state_equals_fresh_formulation(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 4, 6)
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, q)
        # pick a deletable pair: remaining edges must stay connected
        ids = sorted(engine.query.edge_id_set())
        import itertools

        pair = None
        for a, b in itertools.combinations(ids, 2):
            rest = engine.query.edge_id_set() - {a, b}
            if not rest:
                continue
            if engine.query.edge_subgraph_by_ids(rest).is_connected():
                pair = (a, b)
                break
        if pair is None:
            return
        engine.delete_edges(pair)
        res = engine.run()
        fres = _fresh_run(small_db, small_indexes, engine.query.graph())
        assert res.results.exact_ids == fres.results.exact_ids
        assert [(m.graph_id, m.distance) for m in res.results.similar] == [
            (m.graph_id, m.distance) for m in fres.results.similar
        ]

    def test_disconnecting_pair_rejected_atomically(self, small_db, small_indexes):
        # path of 4 edges: deleting the two middle edges disconnects
        g = graph_from_spec(
            {i: "A" for i in range(5)}, [(i, i + 1) for i in range(4)]
        )
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        before = engine.query.edge_id_set()
        with pytest.raises(QueryError):
            engine.delete_edges([2, 3])
        assert engine.query.edge_id_set() == before  # nothing was applied

    def test_delete_everything(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "A", 2: "B"}, [(0, 1), (1, 2)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        engine.delete_edges(engine.query.edge_id_set())
        assert engine.query.num_edges == 0
        assert engine.manager.num_vertices() == 0

    def test_unknown_edge_rejected(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        with pytest.raises(QueryError):
            engine.delete_edges([1, 99])

    def test_non_adjacent_deletions_need_valid_order(self, small_db, small_indexes):
        """A pair whose naive order would transiently disconnect still works
        when some order keeps every intermediate connected."""
        # cycle 0-1-2-3-0: delete edges (0,1) and (2,3); remaining two edges
        # (1,2), (3,0) are disconnected -> must be rejected
        g = graph_from_spec(
            {i: "A" for i in range(4)},
            [(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        ids = sorted(engine.query.edge_id_set())
        id_of = {}
        for eid in ids:
            u, v, _ = engine.query.edge(eid)
            id_of[frozenset((u, v))] = eid
        with pytest.raises(QueryError):
            engine.delete_edges(
                [id_of[frozenset((0, 1))], id_of[frozenset((2, 3))]]
            )
        # adjacent pair is fine: remaining path stays connected
        engine.delete_edges(
            [id_of[frozenset((0, 1))], id_of[frozenset((1, 2))]]
        )
        assert engine.query.num_edges == 2


class TestRelabelNode:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_state_equals_fresh_formulation(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 3, 5)
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, q)
        nodes = list(engine.query.graph().nodes())
        victim = nodes[rng.randrange(len(nodes))]
        labels = small_db.node_label_universe()
        new_label = labels[rng.randrange(len(labels))]
        try:
            engine.relabel_node(victim, new_label)
        except QueryError:
            return  # interior node whose removal splits the survivors
        res = engine.run()
        reduced = engine.query.graph()
        assert new_label in reduced.node_labels()
        fres = _fresh_run(small_db, small_indexes, reduced)
        assert res.results.exact_ids == fres.results.exact_ids
        assert [(m.graph_id, m.distance) for m in res.results.similar] == [
            (m.graph_id, m.distance) for m in fres.results.similar
        ]

    def test_relabel_changes_the_query_graph(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        engine.relabel_node(1, "C")
        labels = engine.query.graph().node_labels()
        assert labels["C"] == 1
        assert "B" not in labels

    def test_relabel_leaf_node(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        report = engine.relabel_node(2, "C")
        assert engine.query.num_edges == 2
        assert report.edge_id is not None

    def test_relabel_isolated_node_rejected(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        engine.add_node(9, "C")  # dropped on the canvas, never connected
        with pytest.raises(QueryError):
            engine.relabel_node(9, "A")

    def test_edge_ids_are_fresh(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        before = max(engine.query.edge_id_set())
        engine.relabel_node(1, "C")
        assert min(engine.query.edge_id_set()) > 0
        assert max(engine.query.edge_id_set()) > before
