"""QuerySpec and the SRT timeline model."""

import pytest

from repro.core import PragueEngine, QuerySpec, formulate
from repro.core.session import traditional_srt
from repro.testing import graph_from_spec


@pytest.fixture
def spec():
    return QuerySpec(
        name="demo",
        nodes={0: "A", 1: "B", 2: "A"},
        edges=((0, 1), (1, 2)),
    )


class TestQuerySpec:
    def test_size(self, spec):
        assert spec.size == 2

    def test_graph_materialisation(self, spec):
        g = spec.graph()
        assert g.num_edges == 2
        assert g.label(0) == "A"

    def test_graph_keeps_isolated_declared_nodes(self):
        # Regression: declared-but-unwired nodes used to be silently dropped,
        # which gave the oracle and traditional_srt the wrong ground truth.
        s = QuerySpec(name="x", nodes={0: "A", 1: "B", 9: "C"}, edges=((0, 1),))
        g = s.graph()
        assert g.num_nodes == 3
        assert g.label(9) == "C"
        assert g.num_edges == 1

    def test_edge_labels(self):
        s = QuerySpec(
            name="x",
            nodes={0: "A", 1: "B"},
            edges=((0, 1),),
            edge_labels={(0, 1): "s"},
        )
        assert s.graph().edge_label(0, 1) == "s"

    def test_reordered(self, spec):
        alt = spec.reordered([2, 1])
        assert alt.edges == ((1, 2), (0, 1))
        assert alt.name == "demo-alt"
        # same final graph
        from repro.graph import are_isomorphic

        assert are_isomorphic(alt.graph(), spec.graph())

    def test_reordered_validates_permutation(self, spec):
        with pytest.raises(ValueError):
            spec.reordered([1, 1])


class TestFormulate:
    def test_trace_fields(self, small_db, small_indexes, spec):
        engine = PragueEngine(small_db, small_indexes)
        trace = formulate(engine, spec, edge_latency=2.0)
        assert trace.spec_name == "demo"
        assert len(trace.step_reports) == 2
        assert trace.formulation_seconds == 4.0
        assert trace.srt_seconds >= 0
        assert trace.results is trace.run_report.results

    def test_backlog_zero_with_large_latency(self, small_db, small_indexes, spec):
        engine = PragueEngine(small_db, small_indexes)
        trace = formulate(engine, spec, edge_latency=100.0)
        assert trace.backlog_before_run == 0.0
        assert trace.srt_seconds == trace.run_report.processing_seconds

    def test_backlog_accumulates_with_zero_latency(
        self, small_db, small_indexes, spec
    ):
        engine = PragueEngine(small_db, small_indexes)
        trace = formulate(engine, spec, edge_latency=0.0)
        assert trace.backlog_before_run == pytest.approx(
            trace.total_step_processing
        )
        assert trace.srt_seconds == pytest.approx(
            trace.total_step_processing + trace.run_report.processing_seconds
        )

    def test_spig_seconds_exposed(self, small_db, small_indexes, spec):
        engine = PragueEngine(small_db, small_indexes)
        trace = formulate(engine, spec, edge_latency=2.0)
        assert len(trace.spig_seconds_per_step) == 2


class TestTraditionalSrt:
    def test_measures_search_call(self, small_db):
        q = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        calls = []

        def search(query):
            calls.append(query)
            return [1, 2, 3]

        results, srt = traditional_srt(search, q)
        assert results == [1, 2, 3]
        assert calls == [q]
        assert srt >= 0.0
