"""Bitset candidate algebra agrees with the frozenset reference everywhere:
primitive ops, Algorithm 3's Φ/Υ intersection, Algorithm 4's Rfree/Rver
buckets and Algorithm 6's deletion suggestion (REPRO_BITSET on vs off)."""

import os
import random
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import candidates as cand
from repro.core.exact import (
    exact_sub_candidates,
    exact_sub_candidates_bits,
    exact_sub_candidates_sets,
)
from repro.core.similar import similar_sub_candidates
from repro.graph.generators import perturb_with_new_edge
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import connected_order, sample_subgraph

id_sets = st.sets(st.integers(0, 200), max_size=60)


@contextmanager
def _bitset_mode(toggle: str):
    """Flip REPRO_BITSET inside a hypothesis example (monkeypatch is
    function-scoped and thus off-limits under @given)."""
    old = os.environ.get("REPRO_BITSET")
    os.environ["REPRO_BITSET"] = toggle
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_BITSET", None)
        else:
            os.environ["REPRO_BITSET"] = old


class TestPrimitives:
    @given(ids=id_sets)
    def test_bits_roundtrip(self, ids):
        mask = cand.bits_of(ids)
        assert cand.ids_of(mask) == frozenset(ids)
        assert list(cand.iter_ids(mask)) == sorted(ids)
        assert cand.count(mask) == len(ids)

    @given(a=id_sets, b=id_sets)
    def test_union_intersection_difference(self, a, b):
        ba, bb = cand.bits_of(a), cand.bits_of(b)
        assert cand.ids_of(ba | bb) == frozenset(a | b)
        assert cand.ids_of(ba & bb) == frozenset(a & b)
        assert cand.ids_of(ba & ~bb) == frozenset(a - b)

    @given(sets=st.lists(id_sets, min_size=1, max_size=6))
    def test_intersect_all_matches_set_fold(self, sets):
        expected = frozenset.intersection(*map(frozenset, sets))
        got = cand.intersect_all([cand.bits_of(s) for s in sets])
        assert cand.ids_of(got) == expected

    @given(n=st.integers(0, 300))
    def test_full_mask(self, n):
        assert cand.ids_of(cand.full_mask(n)) == frozenset(range(n))
        assert cand.count(cand.full_mask(n)) == n


# ----------------------------------------------------------------------
# randomized SPIG/A2F fixtures: every vertex of every level
# ----------------------------------------------------------------------
def _spig_state(indexes, g):
    query = VisualQuery()
    for node in g.nodes():
        query.add_node(node, g.label(node))
    manager = SpigManager(indexes)
    for u, v in connected_order(g):
        eid = query.add_edge(u, v, g.edge_label(u, v))
        manager.on_new_edge(query, eid)
    return query, manager


def _sample_query(seed, db):
    rng = random.Random(seed)
    q = sample_subgraph(rng, db, 2, 5)
    if rng.random() < 0.5:
        q = perturb_with_new_edge(rng, q, db.node_label_universe())
    return q, rng.randint(1, 3)


class TestAlgorithm3Equivalence:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=30, deadline=None)
    def test_bits_agree_with_sets_on_every_vertex(
        self, seed, small_db, small_indexes
    ):
        q, _ = _sample_query(seed, small_db)
        query, manager = _spig_state(small_indexes, q)
        db_ids = frozenset(small_db.ids())
        db_bits = cand.bits_of(db_ids)
        for level in range(1, query.num_edges + 1):
            for vertex in manager.vertices_at_level(level):
                via_sets = exact_sub_candidates_sets(
                    vertex, small_indexes, db_ids
                )
                via_bits = cand.ids_of(
                    exact_sub_candidates_bits(vertex, small_indexes, db_bits)
                )
                assert via_bits == via_sets

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=20, deadline=None)
    def test_public_api_identical_under_toggle(
        self, seed, small_db, small_indexes
    ):
        """exact_sub_candidates returns the same Rq with REPRO_BITSET on/off."""
        q, _ = _sample_query(seed, small_db)
        query, manager = _spig_state(small_indexes, q)
        db_ids = frozenset(small_db.ids())
        vertex = manager.target_vertex(query)
        with _bitset_mode("1"):
            rq_bits = exact_sub_candidates(vertex, small_indexes, db_ids)
        with _bitset_mode("0"):
            rq_sets = exact_sub_candidates(vertex, small_indexes, db_ids)
        assert rq_bits == rq_sets


class TestAlgorithm4Equivalence:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=20, deadline=None)
    def test_rfree_rver_identical_under_toggle(
        self, seed, small_db, small_indexes
    ):
        q, sigma = _sample_query(seed, small_db)
        query, manager = _spig_state(small_indexes, q)
        db_ids = frozenset(small_db.ids())
        buckets = {}
        for toggle in ("1", "0"):
            with _bitset_mode(toggle):
                cands = similar_sub_candidates(
                    query, sigma, manager, small_indexes, db_ids
                )
            buckets[toggle] = (
                {lvl: set(cands.free_at(lvl)) for lvl in cands.levels()},
                {lvl: set(cands.ver_at(lvl)) for lvl in cands.levels()},
            )
        assert buckets["1"] == buckets["0"]


class TestAlgorithm6Equivalence:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_deletion_suggestion_identical_under_toggle(
        self, seed, small_db, small_indexes
    ):
        from repro.core.modify import suggest_deletion

        q, _ = _sample_query(seed, small_db)
        query, manager = _spig_state(small_indexes, q)
        suggestions = {}
        for toggle in ("1", "0"):
            with _bitset_mode(toggle):
                suggestions[toggle] = suggest_deletion(
                    query, manager, small_indexes, frozenset(small_db.ids())
                )
        assert suggestions["1"] == suggestions["0"]
